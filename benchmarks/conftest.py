"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table/figure/claim) on the
simulated platforms.  The *virtual* latencies are deterministic; what
pytest-benchmark times is the wall-clock cost of regenerating the artifact.
The reproduced quantities are attached to each benchmark's ``extra_info``
so ``--benchmark-only`` output doubles as the reproduction record.

The protocol here is the shared :data:`repro.experiments.BENCH_PROTOCOL`
(1 run x 5 iterations — virtual results are identical to the full 10x100
protocol modulo the seeded jitter term, which is disabled).  The same
protocol drives ``python -m repro bench``, so both harnesses describe the
same workload.  EXPERIMENTS.md records the full-protocol numbers.
"""

import pytest

from repro.experiments import BENCH_PROTOCOL


@pytest.fixture
def protocol():
    return BENCH_PROTOCOL
