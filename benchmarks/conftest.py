"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table/figure/claim) on the
simulated platforms.  The *virtual* latencies are deterministic; what
pytest-benchmark times is the wall-clock cost of regenerating the artifact.
The reproduced quantities are attached to each benchmark's ``extra_info``
so ``--benchmark-only`` output doubles as the reproduction record.

The protocol here is reduced (1 run x 5 iterations — virtual results are
identical to the full 10x100 protocol modulo the seeded jitter term, which
is disabled).  EXPERIMENTS.md records the full-protocol numbers.
"""

import pytest

from repro.experiments import Protocol

BENCH_PROTOCOL = Protocol(runs=1, iterations=5, jitter_sigma=0.0)


@pytest.fixture
def protocol():
    return BENCH_PROTOCOL
