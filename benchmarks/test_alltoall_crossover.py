"""Bench: all-to-all algorithm crossover vs message size.

§3.1's premise — each vendor tuned its own ``MPI_All_to_All`` — only makes
sense because no single algorithm wins everywhere.  This bench sweeps the
per-block payload on the CSPI fabric and locates the crossover: Bruck
(fewer, bundled messages) wins when per-message overhead dominates tiny
payloads; pairwise exchange (minimal volume) wins once bandwidth dominates.
"""

import numpy as np

from repro.machine import Environment, SimCluster, cspi
from repro.mpi import MpiWorld

NODES = 8
SIZES = [1, 16, 256, 4 << 10, 64 << 10]  # payload elements (float32) per block


def alltoall_time(algorithm, elems):
    env = Environment()
    world = MpiWorld(SimCluster.from_platform(env, cspi(), NODES))

    def prog(comm):
        blocks = [np.zeros(elems, dtype=np.float32) for _ in range(comm.size)]
        yield from comm.alltoall(blocks, algorithm=algorithm)

    world.spawn(prog)
    world.run()
    return env.now


def test_bruck_pairwise_crossover(benchmark):
    def sweep():
        return {
            elems: {
                algo: alltoall_time(algo, elems)
                for algo in ("pairwise", "recursive_doubling", "direct", "ring")
            }
            for elems in SIZES
        }

    table = benchmark(sweep)
    benchmark.extra_info["alltoall_seconds"] = {
        str(elems): {a: round(t * 1e6, 1) for a, t in per.items()}
        for elems, per in table.items()
    }
    # Tiny payloads: Bruck's log(p) rounds beat pairwise's p-1 rounds.
    assert table[1]["recursive_doubling"] < table[1]["pairwise"]
    # Large payloads: pairwise's minimal volume wins.
    assert table[64 << 10]["pairwise"] < table[64 << 10]["recursive_doubling"]
    # There is a crossover somewhere inside the sweep.
    winners = [
        min(per, key=per.get) in ("recursive_doubling",) for elems, per in table.items()
    ]
    assert winners[0] and not winners[-1]
    # Cost is monotone in payload for every algorithm.
    for algo in ("pairwise", "direct", "ring", "recursive_doubling"):
        times = [table[e][algo] for e in SIZES]
        assert all(a <= b for a, b in zip(times, times[1:]))
