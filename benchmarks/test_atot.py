"""Bench A1: AToT GA mapping quality (§1.1 claims).

GA mapping vs round-robin vs random placement of a synthetic radar chain,
scored by the analytic objective and by simulated execution.
"""


from repro.experiments import run_atot_study


def test_atot_mapping_quality(benchmark):
    rows = benchmark(run_atot_study, 4, 128, 15)
    by = {r.strategy: r for r in rows}
    benchmark.extra_info["fitness"] = {s: round(r.fitness, 4) for s, r in by.items()}
    benchmark.extra_info["sim_latency_ms"] = {
        s: round(r.simulated_latency_ms, 3) for s, r in by.items()
    }
    benchmark.extra_info["load_imbalance"] = {
        s: round(r.load_imbalance, 2) for s, r in by.items()
    }
    # GA never loses to its own seed or to random placement.
    assert by["atot_ga"].fitness <= by["round_robin"].fitness + 1e-9
    assert by["atot_ga"].fitness <= by["random"].fitness + 1e-9
    # The analytic objective predicts the simulator: random placement is
    # slower in actual (simulated) execution too.
    assert by["random"].simulated_latency_ms > by["atot_ga"].simulated_latency_ms
    # Load balancing claim: GA keeps imbalance near 1.
    assert by["atot_ga"].load_imbalance < by["random"].load_imbalance + 1e-9
