"""Bench F1: the MITRE cross-vendor comparison (§3.1, reference [2]).

Hand-coded 2D FFT and corner-turn latency vs node count on the four named
platforms (Mercury, CSPI, SKY, SIGI), each with its vendor-tuned all-to-all.
Expected shape: every curve falls with node count; the communication-bound
corner turn separates the fabrics (SIGI slowest) while the compute-bound
FFT barely does.
"""


from repro.experiments import run_crossvendor


def test_crossvendor_comparison(benchmark, protocol):
    result = benchmark(run_crossvendor, protocol, 1024, ("mercury", "cspi", "sky", "sigi"), (2, 4, 8))
    table = result.latency_ms
    benchmark.extra_info["latency_ms"] = {
        app: {v: {n: round(ms, 2) for n, ms in per.items()} for v, per in series.items()}
        for app, series in table.items()
    }
    # Scaling: latency falls with node count for every vendor and app.
    for app, series in table.items():
        for vendor, per_nodes in series.items():
            assert per_nodes[2] > per_nodes[4] > per_nodes[8], f"{app}/{vendor}"
    # Fabric ordering on the corner turn: SIGI (slow shared bus) is worst.
    ct = table["corner_turn"]
    for n in (4, 8):
        assert ct["sigi"][n] == max(ct[v][n] for v in ct)
    # The FFT's vendor spread is narrower than the corner turn's.
    def spread(app, n):
        vals = [table[app][v][n] for v in table[app]]
        return max(vals) / min(vals)

    assert spread("fft2d", 8) < spread("corner_turn", 8)
