"""Bench: the R1 fault-tolerance experiment at quick protocol.

The headline contrasts must hold at any scale: fail_fast dies under
sustained loss and under a node crash, while retry and checkpoint_restart
complete every seeded run — at a bounded, reported overhead.
"""

from repro.experiments import format_fault_tolerance, run_fault_tolerance


def test_fault_tolerance_quick(benchmark):
    points = benchmark.pedantic(
        lambda: run_fault_tolerance(
            nodes=4, size=32, iterations=3, seeds=(11, 12),
            loss_rates=(0.05,),
        ),
        iterations=1, rounds=1,
    )
    by = {(p.app, p.scenario, p.policy): p for p in points}
    apps = ("corner_turn", "fft2d")
    # 2 apps x (baseline + 2x loss + 2x crash + degraded) rows.
    assert len(points) == len(apps) * 6

    for app in apps:
        base = by[(app, "fault-free", "fail_fast")]
        assert base.completion_rate == 1.0
        assert base.overhead_pct == 0.0

        lossy_ff = by[(app, "loss 5%", "fail_fast")]
        lossy_rt = by[(app, "loss 5%", "retry")]
        assert lossy_ff.completion_rate < 1.0
        assert lossy_rt.completion_rate == 1.0
        assert lossy_rt.retries > 0
        assert lossy_rt.makespan_ms > base.makespan_ms

        crash_ff = by[(app, "node crash", "fail_fast")]
        crash_cr = by[(app, "node crash", "checkpoint_restart")]
        assert crash_ff.completion_rate == 0.0
        assert crash_cr.completion_rate == 1.0
        assert crash_cr.restores > 0

        degraded = by[(app, "link 0-1 @ 25%", "retry")]
        assert degraded.completion_rate == 1.0
        assert degraded.throughput < base.throughput

    text = format_fault_tolerance(points)
    assert "R1: fault tolerance" in text
    assert "checkpoint_restart" in text
    benchmark.extra_info["rows"] = len(points)
