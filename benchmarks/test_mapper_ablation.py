"""Bench: mapping-search ablation — GA (the paper's choice, §1.1) vs
simulated annealing vs baselines on the same objective.

DESIGN.md calls the GA out as a design choice; this bench quantifies it.
"""


from repro.core.atot import (
    AnnealConfig,
    GaConfig,
    MappingProblem,
    genetic_algorithm,
    random_mapping,
    simulated_annealing,
)
from repro.core.model import round_robin_mapping
from repro.experiments.atot_study import radar_chain_model
from repro.machine import cspi


def test_ga_vs_annealing(benchmark):
    def study():
        app = radar_chain_model(n=128, threads=4)
        problem = MappingProblem(app, cspi(), 4)
        seed = problem.encode(round_robin_mapping(app, 4))
        rnd = problem.encode(random_mapping(app, 4, seed=11))
        ga = genetic_algorithm(
            len(problem.slots), 4, problem.fitness,
            GaConfig(population=30, generations=20, seed=1), seeds=[rnd],
        )
        sa = simulated_annealing(
            len(problem.slots), 4, problem.fitness,
            AnnealConfig(steps=1500, seed=1), start=rnd,
        )
        return {
            "random": problem.fitness(rnd),
            "round_robin": problem.fitness(seed),
            "ga": ga.best_fitness,
            "ga_evals": ga.evaluations,
            "sa": sa.best_fitness,
            "sa_evals": sa.proposed + 1,
        }

    scores = benchmark(study)
    benchmark.extra_info["fitness"] = {
        k: round(v, 4) for k, v in scores.items() if not k.endswith("_evals")
    }
    benchmark.extra_info["evaluations"] = {
        "ga": scores["ga_evals"], "sa": scores["sa_evals"]
    }
    # Both searchers improve a random start dramatically; the best of the
    # two lands at (or very near) the round-robin optimum.  At this budget
    # the annealer's local moves typically edge out the GA on this regular
    # chain — the GA's production advantage is its seeded population (see
    # optimize_mapping, which never starts from random).
    assert scores["ga"] < scores["random"] * 0.5
    assert scores["sa"] < scores["random"] * 0.5
    assert min(scores["ga"], scores["sa"]) <= scores["round_robin"] * 1.1
