"""Bench C2: the §4 optimised glue generator.

Paper: "Work is currently underway to improve the performance of the glue
code generation component that will reach levels of 90% of hand coded
performance."  The optimised generator lets the data source DMA directly
into its downstream logical buffer instead of depositing through a unique
source buffer.
"""

import statistics

from repro.experiments import optimized_glue_study


def test_optimized_glue_reaches_90_percent(benchmark, protocol):
    rows = benchmark(optimized_glue_study, protocol, (4, 8), (512, 1024))
    avg_default = statistics.fmean(r["default_pct"] for r in rows)
    avg_opt = statistics.fmean(r["optimized_pct"] for r in rows)
    benchmark.extra_info["default_avg_pct"] = round(avg_default, 1)
    benchmark.extra_info["optimized_avg_pct"] = round(avg_opt, 1)
    benchmark.extra_info["paper_target_pct"] = 90.0
    assert avg_opt > avg_default
    # "levels of 90%" — accept 85-100.
    assert 85.0 < avg_opt <= 100.0
    # Optimised glue still never beats hand code on any cell.
    assert all(r["optimized_pct"] <= 100.0 for r in rows)
