"""Bench A2: the §3.3 period/latency definitions.

"a period is defined to be the time between input data sets while latency
is the time required to process a single data set" — pipelined execution
pushes period below latency; a throttled source sets the period directly.
"""


from repro.experiments import run_period_latency


def test_period_vs_latency(benchmark):
    points = benchmark(run_period_latency, 4, 512, 12)
    by = {p.mode: p for p in points}
    benchmark.extra_info["latency_ms"] = {m: round(p.latency_ms, 3) for m, p in by.items()}
    benchmark.extra_info["period_ms"] = {m: round(p.period_ms, 3) for m, p in by.items()}
    # Pipelined: period < latency (the pipeline hides stage time).
    assert by["pipelined-depth2"].period_ms < by["pipelined-depth2"].latency_ms
    assert by["pipelined-unbounded"].period_ms < by["pipelined-unbounded"].latency_ms
    # Serial admission: period ~ latency.
    assert by["serial"].period_ms >= by["serial"].latency_ms * 0.99
    # Throttled: period tracks the source interval (2x the serial latency).
    assert abs(by["throttled-source"].period_ms - 2 * by["serial"].latency_ms) < (
        0.05 * by["serial"].latency_ms * 2
    )
