"""Bench: node-count scaling (§3.1: MITRE measured "several node
configurations" per platform).

Expected shape: the compute-bound 2D FFT speeds up near-linearly with node
count; the communication-bound corner turn scales sub-linearly; SAGE and
hand-coded scale alike (the run-time overhead is roughly a constant
fraction, Table 1.0's premise).
"""


from repro.experiments import measure_hand, measure_sage
from repro.machine import cspi


def test_scaling_with_node_count(benchmark, protocol):
    def sweep():
        platform = cspi()
        out = {}
        for app in ("fft2d", "corner_turn"):
            out[app] = {}
            for variant, fn in (("hand", measure_hand), ("sage", measure_sage)):
                lat = {n: fn(app, platform, n, 1024, protocol).latency for n in (1, 2, 4, 8)}
                out[app][variant] = {n: lat[1] / lat[n] for n in lat}  # speedups
        return out

    speedups = benchmark(sweep)
    benchmark.extra_info["speedup_vs_1node"] = {
        app: {v: {n: round(s, 2) for n, s in per.items()} for v, per in d.items()}
        for app, d in speedups.items()
    }
    fft_hand = speedups["fft2d"]["hand"]
    ct_hand = speedups["corner_turn"]["hand"]
    # FFT: near-linear (>= 75% parallel efficiency at 8 nodes).
    assert fft_hand[8] > 6.0
    # Corner turn: all-to-all limited, clearly sub-linear vs the FFT.
    assert ct_hand[8] < fft_hand[8]
    # SAGE scales like hand code (within 20% relative at every point).
    for app in speedups:
        for n in (2, 4, 8):
            h, s = speedups[app]["hand"][n], speedups[app]["sage"][n]
            assert abs(h - s) / h < 0.2, (app, n, h, s)
