"""Bench T1 (+S34b): regenerate Table 1.0 — hand-coded vs SAGE on CSPI.

Paper values: SAGE averaged 77.5-86 % of hand-coded across the table; the
2D FFT showed ~17-20 % overhead, the corner turn ~20-25 %.
"""

import statistics

import pytest

from repro.experiments import run_table1
from repro.experiments.table1 import averages


@pytest.mark.parametrize("app_label,app", [("2D FFT", "fft2d"), ("Corner Turn", "corner_turn")])
def test_table1_benchmark_rows(benchmark, protocol, app_label, app):
    """One Table 1.0 panel (all node counts and sizes for one application)."""

    def regenerate():
        rows = run_table1(protocol)
        return [r for r in rows if r.app == app]

    rows = benchmark(regenerate)
    pcts = [r.pct_of_hand for r in rows]
    benchmark.extra_info["cells"] = {
        f"{r.nodes}n/{r.size}": {
            "hand_ms": round(r.hand_ms, 3),
            "sage_ms": round(r.sage_ms, 3),
            "pct_of_hand": round(r.pct_of_hand, 1),
        }
        for r in rows
    }
    benchmark.extra_info["avg_pct_of_hand"] = round(statistics.fmean(pcts), 1)
    benchmark.extra_info["paper_band_pct"] = "80-87" if app == "fft2d" else "75-83"
    # Shape assertions: SAGE is slower but in the paper's band.
    assert all(60 < p < 95 for p in pcts)
    if app == "fft2d":
        assert 78 < statistics.fmean(pcts) < 90
    else:
        assert 65 < statistics.fmean(pcts) < 85


def test_table1_overall_average(benchmark, protocol):
    """§4: 'delivered and executed the two benchmark applications at 77.5%
    of hand code versions.'"""

    def regenerate():
        return averages(run_table1(protocol))

    avg = benchmark(regenerate)
    benchmark.extra_info["overall_pct_of_hand"] = round(avg["overall"], 1)
    benchmark.extra_info["paper_overall_pct"] = 77.5
    assert 70 < avg["overall"] < 87
    # FFT more efficient than corner turn (both §3.4 statements).
    assert avg["2D FFT"] > avg["Corner Turn"]
