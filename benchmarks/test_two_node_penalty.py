"""Bench S34a: the §3.4 two-node buffer-management penalty.

Paper: "A performance hit was taken on a two-node configuration. Here, the
SAGE run-time buffer management scheme assigns unique logical buffers to
the data per function which can cause extra data access times compared to
the CSPI implementation."  The unique-buffer copy scales with the per-node
buffer size (n^2/p), so its absolute cost is largest at 2 nodes.
"""


from repro.experiments import two_node_study


def test_two_node_penalty(benchmark, protocol):
    rows = benchmark(two_node_study, protocol, 1024)
    by_nodes = {r["nodes"]: r for r in rows}
    benchmark.extra_info["extra_ms_per_iteration"] = {
        n: round(by_nodes[n]["extra_ms"], 3) for n in (2, 4, 8)
    }
    benchmark.extra_info["pct_of_hand"] = {
        n: round(by_nodes[n]["pct_of_hand"], 1) for n in (2, 4, 8)
    }
    # The absolute unique-buffer overhead shrinks as nodes increase.
    assert by_nodes[2]["extra_ms"] > by_nodes[4]["extra_ms"] > by_nodes[8]["extra_ms"]
    # SAGE never beats hand code (§3: "tools which can auto generate code
    # that can surpass hand coded ... is still work to be done").
    assert all(r["pct_of_hand"] < 100 for r in rows)
