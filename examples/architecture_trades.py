#!/usr/bin/env python
"""AToT architecture trade study: which machine should run this application?

Captures performance requirements (a latency budget, a cost ceiling), sweeps
the (vendor platform x node count) trade space for the 2D FFT application,
and prints the evaluated candidates with the Pareto front and AToT's
recommendation — the §1.1 "architecture trades process [that] determine[s] a
target hardware architecture".

Run: ``python examples/architecture_trades.py``
"""

from repro.apps import fft2d_model
from repro.core.atot import GaConfig, Requirements, architecture_trade_study, format_trade_study

N = 512


def main():
    requirements = Requirements(
        max_latency=0.120,   # process a 512x512 data set in 120 ms
        max_cost=150.0,      # k$
        max_power=400.0,     # watts
    )
    print(f"requirements: latency <= {requirements.max_latency * 1e3:.0f} ms, "
          f"cost <= {requirements.max_cost:.0f} k$, "
          f"power <= {requirements.max_power:.0f} W\n")

    result = architecture_trade_study(
        fft2d_model(N, 4),
        requirements,
        node_counts=(2, 4, 8, 16),
        ga_config=GaConfig(population=24, generations=10, seed=1),
        app_builder=lambda nodes: fft2d_model(N, nodes),
    )
    print(format_trade_study(result))

    print(f"\n{len(result.feasible)}/{len(result.candidates)} candidates meet "
          f"the requirements; {len(result.pareto)} are Pareto-optimal "
          "(latency/cost/power).")
    infeasible = [c for c in result.candidates if not c.meets_requirements]
    if infeasible:
        c = infeasible[0]
        print(f"example rejection: {c.platform} x {c.nodes}: {'; '.join(c.violations)}")


if __name__ == "__main__":
    main()
