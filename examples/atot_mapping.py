#!/usr/bin/env python
"""AToT: genetic-algorithm mapping of a radar chain onto a CSPI machine.

Builds the radar front-end model (window -> range FFT -> corner turn ->
doppler FFT -> detection), optimises the thread-to-processor mapping with
the AToT GA, compares it against round-robin and random placement, and
prints the CPU/bus list schedule for the winner.

Run: ``python examples/atot_mapping.py``
"""

from repro.core.atot import GaConfig, list_schedule, optimize_mapping, random_mapping
from repro.core.model import round_robin_mapping
from repro.experiments import format_atot_study, run_atot_study
from repro.experiments.atot_study import radar_chain_model
from repro.machine import get_platform

NODES = 4
N = 256


def main():
    print(format_atot_study(run_atot_study(nodes=NODES, n=N, generations=30)))
    print()

    platform = get_platform("cspi")
    app = radar_chain_model(n=N, threads=NODES)
    result = optimize_mapping(
        app, platform, NODES, config=GaConfig(population=40, generations=30, seed=1)
    )
    print(f"GA: {result.ga.evaluations} fitness evaluations, "
          f"improvement over round-robin: {result.improvement * 100:.1f}%")
    print(f"objective breakdown: imbalance={result.breakdown.load_imbalance:.2f}, "
          f"comm={result.breakdown.comm_bytes / 1e6:.2f} MB, "
          f"est latency={result.breakdown.est_latency * 1e3:.2f} ms")

    print("\nlist schedule of one iteration under the GA mapping:")
    sched = list_schedule(app, result.mapping, platform, NODES)
    for p in range(NODES):
        tasks = sched.tasks_on(p)
        line = "  ".join(
            f"{t.function}[{t.thread}]@{t.start * 1e3:.2f}ms" for t in tasks
        )
        print(f"  P{p}: {line}")
    print(f"schedule makespan: {sched.makespan * 1e3:.2f} ms; "
          f"utilization: {['%.0f%%' % (u * 100) for u in sched.processor_utilization(NODES)]}")


if __name__ == "__main__":
    main()
