#!/usr/bin/env python
"""Distributed corner turn across vendor all-to-all algorithms and fabrics.

§3.1: each vendor shipped an ``MPI_All_to_All`` tuned to its hardware.
This example runs the hand-coded corner turn with every algorithm on every
simulated platform and shows which pairing wins — and validates the
exchanged data against a plain transpose first.

Run: ``python examples/corner_turn_vendors.py``
"""

import numpy as np

from repro.apps import MatrixProvider, corner_turn_rank
from repro.experiments import Protocol, measure_hand
from repro.machine import Environment, PLATFORMS, SimCluster, get_platform
from repro.mpi import MpiWorld

N = 512
NODES = 8
ALGORITHMS = ("direct", "pairwise", "ring", "recursive_doubling")


def validate_correctness():
    """Small real-data run: the distributed turn must equal the transpose."""
    n, nodes = 32, 4
    provider = MatrixProvider(n, seed=5)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes)
    world = MpiWorld(cluster)
    world.spawn(corner_turn_rank, n, iterations=1, provider=provider,
                execute_data=True, keep_result=True)
    timings = world.run()
    assembled = np.vstack([t.final_block for t in sorted(timings, key=lambda t: t.rank)])
    np.testing.assert_array_equal(assembled, provider(0).T)
    print(f"correctness: {n}x{n} over {nodes} ranks == transpose  [ok]\n")


def main():
    validate_correctness()
    protocol = Protocol(runs=2, iterations=10, jitter_sigma=0.0)
    print(f"Corner turn latency (ms), {N}x{N} complex64, {NODES} nodes")
    header = f"{'platform':<10s}" + "".join(f"{a:>20s}" for a in ALGORITHMS)
    print(header)
    for vendor in PLATFORMS:
        platform = get_platform(vendor)
        cells = []
        for algorithm in ALGORITHMS:
            m = measure_hand("corner_turn", platform, NODES, N, protocol,
                             alltoall_algorithm=algorithm)
            cells.append(m.latency_ms)
        best = min(cells)
        row = f"{vendor:<10s}"
        for val in cells:
            marker = " *" if val == best else "  "
            row += f"{val:>18.3f}{marker}"
        print(row)
    print("\n(* = fastest algorithm for that platform; the vendor presets in")
    print(" repro.machine.platforms pick per-fabric defaults)")


if __name__ == "__main__":
    main()
