# Parallel 2D FFT, captured in the textual Designer format.
# Try:  python -m repro run examples/designs/fft2d.sage --nodes 4
#       python -m repro generate examples/designs/fft2d.sage --nodes 4

application fft2d_design

datatype cm complex64 256x256

block src kernel=matrix_source threads=4
  out out cm striped(0)

block rowfft kernel=fft_rows threads=4
  in in cm striped(0)
  out out cm striped(0)

# the striping change on this arc IS the distributed corner turn
block colfft kernel=fft_cols threads=4
  in in cm striped(1)
  out out cm striped(1)

block sink kernel=matrix_sink threads=4
  in in cm striped(1)

connect src.out -> rowfft.in
connect rowfft.out -> colfft.in
connect colfft.out -> sink.in
