# Pulse-Doppler radar front-end in the textual Designer format.
# Try:  python -m repro run examples/designs/radar_chain.sage --nodes 4

application radar_chain_design

datatype cpi complex64 128x128
datatype det float32 128x128

block adc kernel=matrix_source threads=4
  out out cpi striped(0)

block pulse_comp kernel=pulse_compress threads=4 param.bandwidth_frac=0.5
  in in cpi striped(0)
  out out cpi striped(0)

block doppler kernel=doppler threads=4 param.window=hanning
  in in cpi striped(1)
  out out cpi striped(1)

block cfar kernel=cfar threads=4 param.guard=2 param.train=8 param.scale=12.0
  in in cpi striped(0)
  out out det striped(0)

block sink kernel=matrix_sink threads=4
  in in det striped(0)

connect adc.out -> pulse_comp.in
connect pulse_comp.out -> doppler.in
connect doppler.out -> cfar.in
connect cfar.out -> sink.in
