#!/usr/bin/env python
"""Hand-coded vs SAGE auto-generated parallel 2D FFT (a Table 1.0 panel).

Runs the §3.3 protocol (reduced) for the 2D FFT on the simulated CSPI
machine at several node counts and matrix sizes, printing latency and the
SAGE-as-%-of-hand figure the paper reports.

Run: ``python examples/fft2d_benchmark.py``
"""

from repro.experiments import Protocol, measure_hand, measure_sage
from repro.machine import cspi


def main():
    protocol = Protocol(runs=3, iterations=20)
    platform = cspi()
    print("Parallel 2D FFT on simulated CSPI (PowerPC 603e / Myrinet)")
    print(f"{'nodes':>6s}{'size':>6s}{'hand (ms)':>12s}{'SAGE (ms)':>12s}"
          f"{'% of hand':>11s}{'stdev (ms)':>12s}")
    for nodes in (2, 4, 8):
        for n in (256, 512, 1024):
            hand = measure_hand("fft2d", platform, nodes, n, protocol)
            sage = measure_sage("fft2d", platform, nodes, n, protocol)
            pct = 100.0 * hand.latency / sage.latency
            print(f"{nodes:>6d}{n:>6d}{hand.latency_ms:>12.3f}"
                  f"{sage.latency_ms:>12.3f}{pct:>10.1f}%"
                  f"{sage.latency_stdev * 1e3:>12.4f}")
    print("\npaper: SAGE ran the 2D FFT at ~80-87% of hand-coded (17-20% overhead)")


if __name__ == "__main__":
    main()
