#!/usr/bin/env python
"""Distributed frequency-domain image filtering on SAGE.

The §1 "image processing" application class: a Gaussian blur implemented as
a distributed FFT convolution — forward 2D FFT (with its embedded corner
turn), spectrum multiply by the filter, inverse 2D FFT (second corner turn)
— modeled as a SAGE dataflow graph, executed on a simulated 4-node machine,
and validated against the library's single-node `conv2d_fft`.

Run: ``python examples/image_filter.py``
"""

import numpy as np

from repro.apps import benchmark_mapping
from repro.core.codegen import generate_glue
from repro.core.model import ApplicationModel, DataType, FunctionBlock, striped
from repro.core.runtime import SageRuntime
from repro.kernels import conv2d_fft
from repro.machine import Environment, SimCluster, get_platform

N = 64
NODES = 4
FILTER = {"filter": "gaussian", "size": 5, "sigma": 1.2, "shape": [N, N]}


def make_image(seed: int = 0) -> np.ndarray:
    """A synthetic 'scene': smooth background + bright blobs + noise."""
    rng = np.random.default_rng(seed)
    y, x = np.mgrid[0:N, 0:N]
    image = np.sin(x / 9.0) + np.cos(y / 7.0)
    for cx, cy in ((20, 12), (48, 40)):
        image += 3.0 * np.exp(-((x - cx) ** 2 + (y - cy) ** 2) / 8.0)
    image += 0.1 * rng.standard_normal((N, N))
    return image.astype(np.complex64)


def image_filter_model() -> ApplicationModel:
    t = DataType("img", "complex64", (N, N))
    app = ApplicationModel("freq_domain_filter")

    def block(name, kernel, in_stripe, out_stripe, **params):
        b = app.add_block(FunctionBlock(name, kernel=kernel, threads=NODES, params=params))
        if in_stripe is not None:
            b.add_in("in", t, in_stripe)
        b.add_out("out", t, out_stripe)
        return b

    src = block("camera", "matrix_source", None, striped(0))
    f1 = block("rowfft", "fft_rows", striped(0), striped(0))
    f2 = block("colfft", "fft_cols", striped(1), striped(1))       # corner turn
    flt = block("filter", "spectrum_multiply", striped(1), striped(1), **FILTER)
    i1 = block("icolfft", "ifft_cols", striped(1), striped(1))
    i2 = block("irowfft", "ifft_rows", striped(0), striped(0))     # corner turn back
    sink = app.add_block(FunctionBlock("display", kernel="matrix_sink", threads=NODES))
    sink.add_in("in", t, striped(0))

    app.connect(src.port("out"), f1.port("in"))
    app.connect(f1.port("out"), f2.port("in"))
    app.connect(f2.port("out"), flt.port("in"))
    app.connect(flt.port("out"), i1.port("in"))
    app.connect(i1.port("out"), i2.port("in"))
    app.connect(i2.port("out"), sink.port("in"))
    return app


def main():
    app = image_filter_model()
    glue = generate_glue(app, benchmark_mapping(app, NODES), num_processors=NODES)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), NODES)
    runtime = SageRuntime(glue, cluster)
    image = make_image()
    result = runtime.run(iterations=1, input_provider=lambda k: image)
    got = result.full_result(0)

    # Reference: single-node FFT convolution with the same Gaussian kernel.
    from repro.core.runtime.kernels import _build_filter_kernel

    kern = _build_filter_kernel("gaussian", FILTER["size"], FILTER["sigma"])
    expected = conv2d_fft(np.asarray(image, dtype=complex), kern)
    err = np.max(np.abs(got - expected))
    print(f"{N}x{N} Gaussian blur over {NODES} nodes")
    print(f"max |distributed - reference| = {err:.3e}")
    assert err < 1e-3, "distributed filter does not match single-node reference"

    smoothing = 1 - np.var(got.real) / np.var(np.asarray(image).real)
    print(f"variance reduced by {smoothing * 100:.1f}% (blur works)")
    print(f"latency {result.mean_latency * 1e3:.2f} ms "
          f"({len(glue.logical_buffers)} logical buffers, "
          f"2 corner turns in the pipeline)")


if __name__ == "__main__":
    main()
