#!/usr/bin/env python
"""The integrated lifecycle through the SageProject facade.

One object carries a design through every §1.1 phase: capture (here from
the textual Designer format) -> validate -> AToT optimisation -> Alter glue
generation -> execution on the simulated machine -> Visualizer report ->
persistence and reload.

Run: ``python examples/project_workflow.py``
"""

import os
import tempfile

import numpy as np

from repro import SageProject
from repro.apps import MatrixProvider
from repro.core.atot import GaConfig
from repro.core.model import parse_application

N, NODES = 64, 4

DESIGN_TEXT = f"""
application workflow_demo
datatype cm complex64 {N}x{N}

block src kernel=matrix_source threads={NODES}
  out out cm striped(0)

block rowfft kernel=fft_rows threads={NODES}
  in in cm striped(0)
  out out cm striped(0)

block colfft kernel=fft_cols threads={NODES}
  in in cm striped(1)
  out out cm striped(1)

block sink kernel=matrix_sink threads={NODES}
  in in cm striped(1)

connect src.out -> rowfft.in
connect rowfft.out -> colfft.in
connect colfft.out -> sink.in
"""


def main():
    # Phase 1: capture (textual Designer format) + validation.
    app = parse_application(DESIGN_TEXT)
    project = SageProject(app, platform="cspi", nodes=NODES)
    issues = project.validate()
    print(f"captured {app.name!r}: "
          f"{len(app.function_instances())} functions, "
          f"{len(issues)} validation notes")

    # Phase 2: AToT.
    atot = project.optimize(ga_config=GaConfig(population=30, generations=12, seed=2))
    print(f"AToT mapping: fitness {atot.fitness:.4f}, "
          f"load imbalance {atot.breakdown.load_imbalance:.2f}")

    # Phase 3: glue generation.
    glue = project.generate()
    print(f"generated glue: {len(glue.source.splitlines())} lines, "
          f"{len(glue.logical_buffers)} logical buffers")

    # Phase 4: execution with real data, checked against numpy.
    provider = MatrixProvider(N, seed=8)
    result = project.execute(iterations=3, input_provider=provider)
    err = np.max(np.abs(result.full_result(0) - np.fft.fft2(provider(0))))
    print(f"executed: latency {result.mean_latency * 1e3:.3f} ms, "
          f"max error vs numpy {err:.2e}")

    # Phase 5: visualize.
    summary = project.summary()
    print(f"utilization: {['%.0f%%' % (u * 100) for u in summary['utilization']]}")

    # Persistence: save, reload, regenerate identically.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "design.json")
        project.save(path)
        restored = SageProject.load(path)
        assert restored.generate().source == glue.source
        print(f"design round-tripped through {os.path.basename(path)}: "
              "regenerated glue is byte-identical")


if __name__ == "__main__":
    main()
