#!/usr/bin/env python
"""Quickstart: model -> Alter glue generation -> simulated execution.

Builds a small 2D-FFT dataflow application the way a SAGE Designer user
would, generates the run-time glue source with the Alter scripts, executes
it on a simulated 4-node CSPI machine, and checks the numerics against
numpy.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro.apps import MatrixProvider, benchmark_mapping, fft2d_model
from repro.core.codegen import generate_glue
from repro.core.runtime import SageRuntime
from repro.core.visualizer import run_report
from repro.machine import Environment, SimCluster, cspi

N = 64        # matrix size (power of two)
NODES = 4     # processors of the target machine


def main():
    # 1. Application model (what the Designer's application editor captures).
    app = fft2d_model(N, NODES)
    print(f"model: {app.name}")
    for inst in app.function_instances():
        print(f"  function #{inst.function_id}: {inst.path} "
              f"(kernel={inst.kernel}, threads={inst.threads})")

    # 2. Mapping (here the benchmark layout; see atot_mapping.py for the GA).
    mapping = benchmark_mapping(app, NODES)

    # 3. Glue-code generation: Alter traverses the model and emits Python
    #    source for the run-time (function table, logical buffers, ...).
    glue = generate_glue(app, mapping, num_processors=NODES)
    print("\n--- first lines of the generated glue source ---")
    print("\n".join(glue.source.splitlines()[:12]))
    print(f"... ({len(glue.source.splitlines())} lines total)\n")

    # 4. Execute on the simulated CSPI machine (§3.2: quad-PPC 603e boards
    #    over 160 MB/s Myrinet).
    env = Environment()
    cluster = SimCluster.from_platform(env, cspi(), NODES)
    runtime = SageRuntime(glue, cluster)
    provider = MatrixProvider(N, seed=42)
    result = runtime.run(iterations=3, input_provider=provider)

    # 5. Validate the distributed result against numpy.
    got = result.full_result(0)
    expected = np.fft.fft2(provider(0))
    err = np.max(np.abs(got - expected))
    print(f"max |error| vs numpy.fft.fft2: {err:.3e}")
    assert err < 1e-1, "distributed FFT does not match numpy"

    # 6. The Visualizer report (probes placed by the generated code).
    print()
    print(run_report(result, processors=NODES, gantt_width=60))


if __name__ == "__main__":
    main()
