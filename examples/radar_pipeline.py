#!/usr/bin/env python
"""End-to-end radar front-end on SAGE: the §1 application class.

Models a pulse-Doppler radar chain — pulse compression (matched filter) →
corner turn → Doppler filter bank → CFAR detection — as a SAGE dataflow
application, maps it with AToT's GA, generates the glue, executes on a
simulated 4-node CSPI machine, and verifies the chain finds the planted
targets.  Finishes with the Visualizer report and a saved design document.

Run: ``python examples/radar_pipeline.py``
"""

import numpy as np

from repro.core.atot import GaConfig, optimize_mapping
from repro.core.codegen import generate_glue
from repro.core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    save_design,
    striped,
)
from repro.core.runtime import SageRuntime
from repro.core.visualizer import run_report, run_summary
from repro.kernels import chirp_waveform
from repro.machine import Environment, SimCluster, get_platform

PULSES = 64     # pulses per CPI (power of two for the Doppler FFT)
RANGES = 64     # range gates (power of two for pulse compression)
NODES = 4
TARGETS = [  # (range gate, doppler bin)
    (17, 10),
    (45, 50),
]


def make_cpi(seed: int = 0) -> np.ndarray:
    """A coherent processing interval with two planted moving targets."""
    rng = np.random.default_rng(seed)
    wf = chirp_waveform(RANGES)
    cpi = 0.02 * (rng.standard_normal((PULSES, RANGES))
                  + 1j * rng.standard_normal((PULSES, RANGES)))
    for rng_gate, dop_bin in TARGETS:
        doppler = np.exp(2j * np.pi * dop_bin * np.arange(PULSES) / PULSES)
        echo = np.roll(wf, rng_gate)  # circular range model
        cpi += 0.5 * doppler[:, None] * echo[None, :]
    return cpi.astype(np.complex64)


def radar_model() -> ApplicationModel:
    t_c = DataType("cpi", "complex64", (PULSES, RANGES))
    t_f = DataType("det", "float32", (PULSES, RANGES))
    app = ApplicationModel("pulse_doppler_radar")
    src = app.add_block(FunctionBlock("adc", kernel="matrix_source", threads=NODES))
    src.add_out("out", t_c, striped(0))
    pc = app.add_block(FunctionBlock("pulse_comp", kernel="pulse_compress",
                                     threads=NODES, params={"bandwidth_frac": 0.5}))
    pc.add_in("in", t_c, striped(0))     # each node compresses its pulses
    pc.add_out("out", t_c, striped(0))
    dop = app.add_block(FunctionBlock("doppler", kernel="doppler", threads=NODES,
                                      params={"window": "none"}))
    dop.add_in("in", t_c, striped(1))    # corner turn: needs all pulses per range
    dop.add_out("out", t_c, striped(1))
    det = app.add_block(FunctionBlock("cfar", kernel="cfar", threads=NODES,
                                      params={"guard": 2, "train": 8, "scale": 16.0}))
    det.add_in("in", t_c, striped(0))    # second corner turn: CFAR along range
    det.add_out("out", t_f, striped(0))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=NODES))
    sink.add_in("in", t_f, striped(0))
    app.connect(src.port("out"), pc.port("in"))
    app.connect(pc.port("out"), dop.port("in"))
    app.connect(dop.port("out"), det.port("in"))
    app.connect(det.port("out"), sink.port("in"))
    return app


def main():
    platform = get_platform("cspi")
    app = radar_model()

    # AToT GA mapping.
    atot = optimize_mapping(app, platform, NODES,
                            config=GaConfig(population=40, generations=20, seed=7))
    print(f"AToT: fitness {atot.fitness:.4f} "
          f"(round-robin baseline {atot.baseline_fitness:.4f}), "
          f"imbalance {atot.breakdown.load_imbalance:.2f}, "
          f"comm {atot.breakdown.comm_bytes / 1e3:.0f} kB/iteration")

    glue = generate_glue(app, atot.mapping, num_processors=NODES)
    env = Environment()
    cluster = SimCluster.from_platform(env, platform, NODES)
    runtime = SageRuntime(glue, cluster)
    result = runtime.run(iterations=2, input_provider=lambda k: make_cpi(k))

    # Verify detections: the detection map is doppler x range.
    det_map = result.full_result(0) > 0.5
    hits = {tuple(idx) for idx in np.argwhere(det_map)}
    print(f"\ndetections (doppler bin, range gate): {sorted(hits)}")
    for rng_gate, dop_bin in TARGETS:
        assert (dop_bin, rng_gate) in hits, f"missed target at ({dop_bin}, {rng_gate})"
    extras = len(hits) - len(TARGETS)
    assert extras <= 6, f"too many false alarms ({extras})"
    print(f"all {len(TARGETS)} planted targets detected "
          f"({extras} extra cells: target sidelobes / residual false alarms)")

    print(f"\nCPI latency {result.mean_latency * 1e3:.2f} ms, "
          f"period {result.period * 1e3:.2f} ms")
    summary = run_summary(result, NODES)
    print(f"busy time by function: "
          f"{ {k: round(v * 1e3, 2) for k, v in summary['function_busy_s'].items()} } ms")

    print()
    print(run_report(result, processors=NODES, gantt_width=60))

    save_design("radar_design.json", app, mapping=atot.mapping)
    print("\nsaved design document to radar_design.json")


if __name__ == "__main__":
    main()
