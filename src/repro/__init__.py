"""repro: reproduction of "Auto Source Code Generation and Run-Time
Infrastructure and Environment for High Performance, Distributed Computing
Systems" (Patel, Jordan, Clark, Bhatt -- Honeywell SAGE, IPPS 2000).

Subpackages
-----------
``repro.machine``
    Discrete-event simulated hardware: nodes, fabrics, vendor platforms.
``repro.mpi``
    Message-passing library over the simulator (point-to-point, collectives,
    vendor all-to-all algorithms).
``repro.kernels``
    ISSPL-style math library (radix-2 FFTs, corner turns, signal primitives).
``repro.core.model``
    The SAGE Designer: application/data-type/hardware editors, shelves,
    mappings, validation.
``repro.core.alter``
    The Alter language (Lisp-like) the glue-code generator is written in.
``repro.core.codegen``
    Glue-code generation: Alter scripts emitting run-time source files.
``repro.core.runtime``
    The SAGE run-time kernel: function sequencing, data striping, logical
    buffer management, instrumentation probes.
``repro.core.atot``
    AToT: GA partitioning/mapping, objectives, CPU/bus list scheduling.
``repro.core.visualizer``
    Trace analysis, timelines, bottleneck/latency-threshold reports.
``repro.apps``
    The Table 1.0 benchmarks: SAGE models + hand-coded baselines.
``repro.experiments``
    The section-3.3 protocol and every table/figure regeneration.
"""

__version__ = "1.0.0"

from . import apps, experiments, kernels, machine, mpi
from .core import alter, atot, codegen, model, runtime, visualizer
from .project import SageProject

__all__ = [
    "SageProject",
    "apps",
    "experiments",
    "kernels",
    "machine",
    "mpi",
    "alter",
    "atot",
    "codegen",
    "model",
    "runtime",
    "visualizer",
    "__version__",
]
