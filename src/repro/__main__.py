"""Command-line interface: ``python -m repro <command>``.

Commands
--------
info         version + subsystem overview
platforms    the vendor platform presets and their key figures
kernels      the software-shelf contents (ISSPL + structural + radar)
generate     load a design document, run the Alter glue generator, save glue
analyze      run the SAGE Verifier (lint + schedules + buffers), no execution
run          load a design document and execute it on a simulated platform
bench        wall-clock benchmark of the pipeline, writes BENCH_simcore.json
chaos        randomized chaos soak: seeded fault schedules x fault policies
serve        multi-job service over a shared cluster; --soak runs the harness
submit       append one job spec to a batch file for `serve --batch`
table1 / crossvendor / ablations / atot-study / period-latency
fault-tolerance / reconfiguration / elasticity / gray-failure / service-soak
             the paper-artifact experiments (see repro.experiments)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — SAGE reproduction (IPPS 2000)")
    print(__doc__.split("Commands")[0].strip())
    print()
    for line in repro.__doc__.splitlines():
        if line.startswith("``"):
            print(" ", line.strip("`"))
    return 0


def cmd_platforms(_args) -> int:
    from .machine import PLATFORMS, get_platform

    print(f"{'name':<10s}{'CPU':<16s}{'MHz':>6s}{'MFLOPS':>8s}"
          f"{'fabric':<14s}{'BW MB/s':>9s}{'lat us':>8s}{'a2a algo':>20s}")
    for name in sorted(PLATFORMS):
        p = get_platform(name)
        print(
            f"{p.name:<10s}{p.cpu.name:<16s}{p.cpu.clock_mhz:>6.0f}"
            f"{p.cpu.mflops:>8.0f}  {p.fabric.name:<12s}"
            f"{p.fabric.inter_board.bandwidth / 1e6:>9.0f}"
            f"{p.fabric.inter_board.latency * 1e6:>8.1f}"
            f"{p.alltoall_algorithm:>20s}"
        )
    return 0


def cmd_kernels(_args) -> int:
    from .core.model import software_shelf

    shelf = software_shelf()
    for item in shelf.items():
        print(f"{item:<20s}[{shelf.category_of(item)}]")
    return 0


def _load_any_design(path: str):
    """Load a design: JSON documents or the textual .sage format."""
    if path.endswith((".sage", ".txt")):
        from .core.model import parse_application

        with open(path) as fh:
            return parse_application(fh.read()), None, None
    from .core.model import load_design

    return load_design(path)


def cmd_generate(args) -> int:
    from .core.codegen import generate_glue
    from .core.model import round_robin_mapping

    app, hardware, mapping = _load_any_design(args.design)
    nodes = args.nodes or (hardware.processor_count if hardware else None)
    if nodes is None:
        print("error: design has no hardware model; pass --nodes", file=sys.stderr)
        return 2
    if mapping is None:
        mapping = round_robin_mapping(app, nodes)
    if args.c:
        from .core.codegen import generate_c_glue

        source = generate_c_glue(app, mapping, num_processors=nodes)
    else:
        glue = generate_glue(app, mapping, num_processors=nodes,
                             optimize_buffers=args.optimized)
        source = glue.source
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(source)
        print(f"wrote {args.output} ({len(source.splitlines())} lines)")
    else:
        print(source)
    return 0


def _analysis_model(args):
    """Resolve the analyze target: a builtin app name or a design document."""
    name = args.app
    if name in ("fft2d", "cornerturn", "corner-turn"):
        from .apps.models import corner_turn_model, fft2d_model

        nodes = args.nodes or 4
        build = fft2d_model if name == "fft2d" else corner_turn_model
        return build(args.n, nodes=nodes), None, None
    return _load_any_design(name)


def _plan_recon(app, mapping, directive: str):
    """Parse one ``--recon`` directive into a planned transition.

    ``shrink=S0,S1,...`` plans the node-loss restripe onto the survivors;
    ``grow=S0,S1,...`` plans the round trip (shrink to the survivors, then
    re-grow to the original placement when the lost nodes rejoin);
    ``migrate=FID:THREAD:PROC[,...]`` plans a live migration.
    """
    from .analysis import (
        plan_grow_transition,
        plan_migration_transition,
        plan_shrink_transition,
    )

    kind, _, rest = directive.partition("=")
    if kind == "shrink" or kind == "grow":
        survivors = [int(x) for x in rest.split(",") if x.strip()]
        if not survivors:
            raise ValueError(f"--recon {kind}= needs a survivor list")
        if kind == "shrink":
            return plan_shrink_transition(app, mapping, survivors)
        shrunk = plan_shrink_transition(app, mapping, survivors)
        lost = sorted(set(mapping.processors_used()) - set(survivors))
        return plan_grow_transition(
            app, shrunk.after, mapping, {p: p for p in lost}
        )
    if kind == "migrate":
        moves = {}
        for item in rest.split(","):
            fid, t, proc = (int(x) for x in item.split(":"))
            moves[(fid, t)] = proc
        return plan_migration_transition(app, mapping, moves)
    raise ValueError(
        f"bad --recon directive {directive!r}: expected shrink=..., "
        "grow=..., or migrate=fid:thread:proc[,...]"
    )


def _write_analysis(args, report, extra=None) -> int:
    """Persist + print one analysis report; shared by every analyze mode."""
    import json
    import os

    doc = report.to_dict()
    if extra:
        doc.update(extra)
    out_path = args.output
    if out_path is None:
        os.makedirs("reports", exist_ok=True)
        safe = report.model_name.replace("/", "_").replace(":", "_")
        out_path = os.path.join("reports", f"analysis_{safe}.json")
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")

    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        print(report.render_text())
        print(f"report written to {out_path}")
    if args.strict and not report.ok:
        return 1
    return 0


def _analyze_jobspec(args) -> int:
    """``analyze --job``: admission-lint a spec built from the CLI args."""
    import sys

    from .analysis import lint_job_spec
    from .machine import get_platform
    from .service.errors import ServiceError
    from .service.jobs import JobSpec

    app_name = {"cornerturn": "corner_turn", "corner-turn": "corner_turn"}
    spec = JobSpec(
        app=app_name.get(args.app, args.app),
        size=args.n,
        nodes=args.nodes or 4,
        iterations=args.iterations,
        time_budget=args.budget if args.budget is not None else 5.0,
    )
    try:
        spec.validate()
    except ServiceError as exc:
        print(f"invalid job spec: {exc}", file=sys.stderr)
        return 2
    report = lint_job_spec(spec, get_platform(args.platform or "cspi"))
    return _write_analysis(args, report)


def cmd_analyze(args) -> int:
    from .analysis import analyze_application
    from .core.model import round_robin_mapping
    from .machine import get_platform

    if args.job:
        return _analyze_jobspec(args)

    app, hardware, mapping = _analysis_model(args)
    nodes = args.nodes or (hardware.processor_count if hardware else 4)
    if mapping is None:
        mapping = round_robin_mapping(app, nodes)
    memory_bytes = None
    if args.platform:
        memory_bytes = get_platform(args.platform).cpu.memory_bytes
    suppress = [r.strip() for r in (args.suppress or "").split(",") if r.strip()]
    report = analyze_application(
        app, mapping, nodes, memory_bytes=memory_bytes, suppress=suppress
    )

    extra = {}
    if args.cost:
        from .analysis import check_cost, predict_makespan

        platform = get_platform(args.platform or "cspi")
        cost = predict_makespan(
            app, mapping, nodes, platform, iterations=args.iterations
        )
        report.record_pass("cost-predict")
        report.extend(check_cost(cost, budget=args.budget))
        extra["cost"] = cost.to_dict()
    if args.recon:
        from .analysis import check_transition

        report.record_pass("recon-safety")
        transitions = []
        for directive in args.recon:
            transition = _plan_recon(app, mapping, directive)
            report.extend(check_transition(app, transition, nodes))
            transitions.append(transition.describe())
        extra["transitions"] = transitions
    if suppress:
        report = report.suppress(suppress)

    return _write_analysis(args, report, extra)


def cmd_run(args) -> int:
    from .core.codegen import generate_glue
    from .core.model import round_robin_mapping
    from .core.runtime import DEFAULT_CONFIG, SageRuntime
    from .core.visualizer import run_report
    from .machine import Environment, SimCluster, get_platform

    app, hardware, mapping = _load_any_design(args.design)
    env = Environment()
    if hardware is not None and not args.platform:
        cluster = hardware.build_cluster(env)
    else:
        platform = get_platform(args.platform or "cspi")
        nodes = args.nodes or (hardware.processor_count if hardware else 4)
        cluster = SimCluster.from_platform(env, platform, nodes)
    nodes = len(cluster)
    if mapping is None:
        mapping = round_robin_mapping(app, nodes)
    glue = generate_glue(app, mapping, num_processors=nodes,
                         optimize_buffers=args.optimized)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    result = runtime.run(iterations=args.iterations)
    print(run_report(result, processors=nodes))
    return 0


_EXPERIMENTS = {
    "table1": "table1",
    "crossvendor": "crossvendor",
    "ablations": "ablations",
    "atot-study": "atot_study",
    "period-latency": "period_latency",
    "code-size": "code_size",
    "fault-tolerance": "fault_tolerance",
    "reconfiguration": "reconfiguration",
    "elasticity": "elasticity",
    "gray-failure": "gray_failure",
    "service-soak": "service_soak",
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Experiment subcommands forward their whole tail to the experiment's own
    # argparse (argparse.REMAINDER would swallow leading options otherwise).
    if argv and argv[0] in _EXPERIMENTS:
        import importlib

        module = importlib.import_module(f"repro.experiments.{_EXPERIMENTS[argv[0]]}")
        return module.main(argv[1:])
    if argv and argv[0] == "bench":
        from .perf import bench

        return bench.main(argv[1:])
    if argv and argv[0] == "chaos":
        from .chaos.soak import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "serve":
        from .service.cli import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        from .service.cli import submit_main

        return submit_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version + subsystem overview").set_defaults(fn=cmd_info)
    sub.add_parser("platforms", help="vendor platform presets").set_defaults(fn=cmd_platforms)
    sub.add_parser("kernels", help="software shelf contents").set_defaults(fn=cmd_kernels)

    gen = sub.add_parser("generate", help="generate glue source from a design document")
    gen.add_argument("design", help="path to a design .json (see save_design)")
    gen.add_argument("-o", "--output", help="write glue source here (default stdout)")
    gen.add_argument("--nodes", type=int, help="processor count override")
    gen.add_argument("--optimized", action="store_true", help="§4 optimised glue")
    gen.add_argument("--c", action="store_true",
                     help="emit the C glue (the VxWorks-era export format)")
    gen.set_defaults(fn=cmd_generate)

    ana = sub.add_parser(
        "analyze",
        help="run the SAGE Verifier over a design without executing it",
    )
    ana.add_argument(
        "app",
        help="design document path, or a builtin app: fft2d | cornerturn",
    )
    ana.add_argument("--nodes", type=int, help="processor count (default 4)")
    ana.add_argument("--n", type=int, default=256,
                     help="matrix size for builtin apps (default 256)")
    ana.add_argument("--platform", choices=["cspi", "mercury", "sky", "sigi"],
                     help="enable DRAM-capacity rules for this platform")
    ana.add_argument("--strict", action=argparse.BooleanOptionalAction,
                     default=True,
                     help="exit 1 on error findings (default; --no-strict to disable)")
    ana.add_argument("--format", choices=["text", "json"], default="text",
                     help="stdout format (a JSON report file is always written)")
    ana.add_argument("-o", "--output",
                     help="report file path (default reports/analysis_<model>.json)")
    ana.add_argument("--suppress",
                     help="comma-separated rule ids to filter out, e.g. MDL004,BUF207")
    ana.add_argument("--cost", action="store_true",
                     help="add the static cost/critical-path prediction "
                          "(PERF rules + a cost section in the report)")
    ana.add_argument("--recon", action="append", metavar="DIRECTIVE",
                     help="check a mapping transition (RECON rules): "
                          "shrink=0,1,2 | grow=0,1,2 | "
                          "migrate=fid:thread:proc[,...]; repeatable")
    ana.add_argument("--job", action="store_true",
                     help="admission-lint a job spec (JOB rules) built from "
                          "app/--n/--nodes/--iterations/--budget")
    ana.add_argument("--iterations", type=int, default=3,
                     help="iteration count for --cost / --job (default 3)")
    ana.add_argument("--budget", type=float, default=None,
                     help="virtual-time budget for PERF003 / --job linting")
    ana.set_defaults(fn=cmd_analyze)

    run = sub.add_parser("run", help="execute a design on a simulated platform")
    run.add_argument("design")
    run.add_argument("--platform", choices=["cspi", "mercury", "sky", "sigi"])
    run.add_argument("--nodes", type=int)
    run.add_argument("--iterations", type=int, default=10)
    run.add_argument("--optimized", action="store_true")
    run.set_defaults(fn=cmd_run)

    sub.add_parser("bench", help="wall-clock pipeline benchmark (repro.perf.bench)")
    sub.add_parser("chaos", help="randomized chaos soak (repro.chaos.soak)")
    sub.add_parser("serve", help="multi-job service / soak harness (repro.service)")
    sub.add_parser("submit", help="append a job spec to a service batch file")
    for name, module in _EXPERIMENTS.items():
        sub.add_parser(name, help=f"experiment: repro.experiments.{module}")

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `python -m repro kernels | head`
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
