"""The SAGE Verifier: static analysis before any cycle is simulated.

Verifier v1 passes — Alter script linting, communication-schedule analysis,
and buffer-hazard detection — plus Designer model validation, unified
behind :func:`analyze_application` and one :class:`AnalysisReport`.

Verifier v2 adds three engines on the same report machinery:

* :mod:`repro.analysis.recon` — reconfiguration-safety model checking of
  mapping transitions (``RECON0xx``),
* :mod:`repro.analysis.cost` — static cost / critical-path prediction
  against the machine model (``PERF0xx``),
* :mod:`repro.analysis.admission` — admission-time job-spec linting for
  the service (``JOB0xx``).

Rule-id families: ``ALT0xx`` (lint), ``COMM0xx`` (schedules), ``BUF2xx``
(buffers), ``MDL0xx`` (model validation), ``RECON0xx`` (reconfiguration),
``PERF0xx`` (cost), ``JOB0xx`` (admission), ``ANA000`` (a pass crashed).
"""

from .report import AnalysisReport, Finding, SCHEMA_VERSION, SEVERITIES
from .alter_lint import builtin_signatures, lint_script, script_defines
from .comm import (
    CommOp,
    CommSchedule,
    check_comm_schedule,
    derive_comm_schedule,
)
from .buffers import check_buffer_hazards, logical_buffer_specs
from .verifier import analyze_application, lint_glue_scripts
from .cost import CostReport, buffer_views, check_cost, predict_makespan
from .recon import (
    MappingTransition,
    check_transition,
    plan_grow_transition,
    plan_migration_transition,
    plan_shrink_transition,
)
from .admission import lint_job_spec, predicted_footprint

__all__ = [
    "AnalysisReport",
    "Finding",
    "SCHEMA_VERSION",
    "SEVERITIES",
    "builtin_signatures",
    "lint_script",
    "script_defines",
    "CommOp",
    "CommSchedule",
    "check_comm_schedule",
    "derive_comm_schedule",
    "check_buffer_hazards",
    "logical_buffer_specs",
    "analyze_application",
    "lint_glue_scripts",
    "CostReport",
    "buffer_views",
    "check_cost",
    "predict_makespan",
    "MappingTransition",
    "check_transition",
    "plan_grow_transition",
    "plan_migration_transition",
    "plan_shrink_transition",
    "lint_job_spec",
    "predicted_footprint",
]
