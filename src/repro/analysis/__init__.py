"""The SAGE Verifier: static analysis before any cycle is simulated.

Three passes — Alter script linting, communication-schedule analysis, and
buffer-hazard detection — plus Designer model validation, unified behind
:func:`analyze_application` and one :class:`AnalysisReport`.  Rule-id
families: ``ALT0xx`` (lint), ``COMM0xx`` (schedules), ``BUF2xx`` (buffers),
``MDL0xx`` (model validation), ``ANA000`` (a pass crashed).
"""

from .report import AnalysisReport, Finding, SEVERITIES
from .alter_lint import builtin_signatures, lint_script, script_defines
from .comm import (
    CommOp,
    CommSchedule,
    check_comm_schedule,
    derive_comm_schedule,
)
from .buffers import check_buffer_hazards, logical_buffer_specs
from .verifier import analyze_application, lint_glue_scripts

__all__ = [
    "AnalysisReport",
    "Finding",
    "SEVERITIES",
    "builtin_signatures",
    "lint_script",
    "script_defines",
    "CommOp",
    "CommSchedule",
    "check_comm_schedule",
    "derive_comm_schedule",
    "check_buffer_hazards",
    "logical_buffer_specs",
    "analyze_application",
    "lint_glue_scripts",
]
