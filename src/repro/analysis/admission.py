"""Admission-time job lint (Verifier v2, ``JOB0xx``).

The service (PR 8) admits jobs on surface checks only: the spec parses,
the cluster is big enough, the tenant has quota headroom.  Whether the job
can actually *run* — mapping inside the leased node set, per-node buffers
inside DRAM, design passing strict analysis, budget consistent with the
predicted makespan — was discovered after a lease was granted and nodes
were burned.  This pass front-loads all of it to submit time, before any
scheduler state changes.

The spec argument is duck-typed (``app``/``size``/``nodes``/``iterations``/
``time_budget``/``tenant`` attributes plus ``build_model()``) so this
module never imports the service package — the service imports *us*.

Rules (:func:`lint_job_spec`):

* **JOB001** — infeasible placement: the benchmark mapping uses processors
  outside the requested node set, or the request exceeds the cluster,
* **JOB002** — the per-node physical-buffer footprint exceeds the
  platform's DRAM (the run-time would refuse the load),
* **JOB003** — the request exceeds the tenant's node quota, so no lease
  can ever satisfy it,
* **JOB004** — the design fails strict static analysis (one finding per
  underlying error, rule id embedded),
* **JOB005** — warning: the statically predicted makespan exceeds the
  declared time budget, so the lease would be killed at the boundary
  (warning, not error: deliberately tight budgets are a legitimate way to
  cap a job's cluster time).
"""

from __future__ import annotations

from typing import Optional

from ..core.model.mapping import round_robin_mapping
from ..machine.platforms import PlatformSpec
from .cost import buffer_views, predict_makespan
from .report import AnalysisReport, Finding
from .verifier import analyze_application

__all__ = ["lint_job_spec", "predicted_footprint"]

_SRC = "admission-lint"


def predicted_footprint(app, mapping) -> dict:
    """Per-processor physical-buffer bytes a mapped model would allocate
    (one region per buffer endpoint thread, the run-time's formula)."""
    footprint: dict = {}
    for view in buffer_views(app):
        for t in range(view.src_threads):
            p = mapping.processor_of(view.src_function, t)
            footprint[p] = footprint.get(p, 0) + view.src_region_bytes(t)
        for t in range(view.dst_threads):
            p = mapping.processor_of(view.dst_function, t)
            footprint[p] = footprint.get(p, 0) + view.dst_region_bytes(t)
    return footprint


def lint_job_spec(
    spec,
    platform: PlatformSpec,
    cluster_nodes: Optional[int] = None,
    quota=None,
) -> AnalysisReport:
    """Statically lint one job spec before any lease is granted.

    ``cluster_nodes`` enables the cluster-capacity half of JOB001; ``quota``
    (anything with a ``max_nodes`` attribute) enables JOB003.  Error
    findings mean the job can never complete as specified and should be
    rejected at submit time.
    """
    where = f"{spec.tenant}:{spec.app}/{spec.size}/{spec.nodes}n"
    report = AnalysisReport(model_name=f"jobspec:{where}")
    report.record_pass(_SRC)

    if cluster_nodes is not None and spec.nodes > cluster_nodes:
        report.add(Finding(
            "error", "JOB001", where,
            f"the job requests {spec.nodes} nodes but the cluster has only "
            f"{cluster_nodes}: no lease can ever satisfy it",
            "request at most the cluster size", _SRC,
        ))
        return report

    quota_cap = getattr(quota, "max_nodes", None) if quota is not None else None
    if quota_cap is not None and spec.nodes > quota_cap:
        report.add(Finding(
            "error", "JOB003", where,
            f"the job requests {spec.nodes} nodes but tenant "
            f"{spec.tenant!r} is capped at {quota_cap}: the request "
            f"is infeasible under quota",
            "request at most the tenant's node quota", _SRC,
        ))
        return report

    try:
        app = spec.build_model()
    except Exception as exc:
        report.add(Finding(
            "error", "JOB004", where,
            f"the design cannot be built: {exc}",
            "fix the spec's app/size/nodes combination", _SRC,
        ))
        return report
    mapping = round_robin_mapping(app, spec.nodes)

    # JOB001 — every mapped thread must land inside the leased node set.
    bad = sorted(p for p in mapping.processors_used()
                 if not (0 <= p < spec.nodes))
    if bad:
        report.add(Finding(
            "error", "JOB001", where,
            f"the mapping places threads on processor(s) {bad}, outside "
            f"the requested node set [0, {spec.nodes})",
            "fix the mapping's processor range", _SRC,
        ))

    # JOB002 — the run-time enforces DRAM at load; reject at submit instead.
    memory_bytes = platform.cpu.memory_bytes
    for proc, nbytes in sorted(predicted_footprint(app, mapping).items()):
        if nbytes > memory_bytes:
            report.add(Finding(
                "error", "JOB002", f"{where}:proc{proc}",
                f"physical buffers need {nbytes} bytes on processor {proc} "
                f"but a {platform.name} node has {memory_bytes} bytes DRAM",
                "use more nodes or a smaller size", _SRC,
            ))

    # JOB004 — the design must pass strict analysis (DRAM rules excluded:
    # JOB002 owns capacity with the platform's numbers).
    try:
        analysis = analyze_application(app, mapping, spec.nodes)
    except Exception as exc:
        report.add(Finding(
            "error", "JOB004", where,
            f"static analysis crashed on the design: {exc}",
            "fix the design so the Verifier can run", _SRC,
        ))
    else:
        for f in analysis.errors:
            report.add(Finding(
                "error", "JOB004", f.where,
                f"the design fails strict analysis ({f.rule}): {f.message}",
                f.hint, _SRC,
            ))

    # JOB005 — budget vs statically predicted makespan (warning only: the
    # soak deliberately submits tight budgets to exercise the kill path).
    if report.ok:
        try:
            predicted = predict_makespan(
                app, mapping, spec.nodes, platform,
                iterations=spec.iterations,
            ).makespan
        except Exception as exc:
            report.add(Finding(
                "warning", "JOB005", where,
                f"makespan prediction failed: {exc}",
                "file the model so the predictor can cost it", _SRC,
            ))
        else:
            if predicted > spec.time_budget:
                report.add(Finding(
                    "warning", "JOB005", where,
                    f"predicted makespan {predicted:.6f}s exceeds the "
                    f"{spec.time_budget:.6f}s budget: the lease would be "
                    f"terminated at the budget boundary",
                    "raise the budget or reduce iterations", _SRC,
                ))
    return report
