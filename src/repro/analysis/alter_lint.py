"""Static linter for Alter glue scripts (the SAGE Verifier's first pass).

Runs over the parsed AST — before any script executes — and catches the
codegen-script bug classes that otherwise surface mid-traversal deep inside
glue generation:

* **ALT000** — syntax errors (unclosed parens, bad literals),
* **ALT001** — unbound symbols (typos, missing defines),
* **ALT002** — arity mismatches against the :mod:`~repro.core.alter.builtins`
  standard library and against user-defined procedures,
* **ALT003** — ``define``\\ s that are never referenced,
* **ALT004** — bindings that shadow a builtin or an outer binding,
* **ALT005** — unreachable branches (literal-constant tests),
* **ALT006** — malformed special forms (wrong shape for ``define``/``let``/...).

Scoping mirrors the interpreter exactly: lexical scope chains, ``define``
hoisting within a body sequence, named ``let``, rest parameters, and the
special forms of :class:`~repro.core.alter.interpreter.Interpreter`.
"""

from __future__ import annotations

import difflib
import inspect
from functools import lru_cache
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..core.alter.errors import AlterSyntaxError
from ..core.alter.interpreter import Interpreter
from ..core.alter.parser import Symbol, parse, parse_with_locations, to_source
from .report import Finding

__all__ = ["lint_script", "script_defines", "builtin_signatures"]

#: Names the glue-code generator injects into the global environment.
GLUE_GLOBALS = ("model", "mapping", "nprocs", "options")

_SPECIAL_FORMS = frozenset(
    ["quote", "if", "cond", "define", "set!", "lambda", "let", "let*",
     "begin", "while", "and", "or", "when", "unless", "else"]
)

#: (min_args, max_args or None) per callable builtin; None entry = constant.
Arity = Optional[Tuple[int, Optional[int]]]


@lru_cache(maxsize=1)
def builtin_signatures() -> Dict[str, Arity]:
    """Arity table of the standard library, introspected from the builtins."""
    interp = Interpreter()
    table: Dict[str, Arity] = {}
    for name, value in interp.globals.vars.items():
        if not callable(value):
            table[name] = None  # constant (nil/true/false)
            continue
        try:
            sig = inspect.signature(value)
        except (TypeError, ValueError):  # pragma: no cover - all are python fns
            table[name] = (0, None)
            continue
        lo = 0
        hi: Optional[int] = 0
        for param in sig.parameters.values():
            if param.kind == inspect.Parameter.VAR_POSITIONAL:
                hi = None
            elif param.kind in (inspect.Parameter.POSITIONAL_ONLY,
                                inspect.Parameter.POSITIONAL_OR_KEYWORD):
                if param.default is inspect.Parameter.empty:
                    lo += 1
                if hi is not None:
                    hi += 1
        table[name] = (lo, hi)
    return table


class _Binding:
    __slots__ = ("name", "kind", "where", "arity", "used", "assigned")

    def __init__(self, name: str, kind: str, where: str, arity: Arity = None):
        self.name = name
        self.kind = kind  # "builtin" | "const" | "global" | "define" | "param" | "let"
        self.where = where
        self.arity = arity
        self.used = False
        self.assigned = False


class _Scope:
    __slots__ = ("vars", "parent", "hoisted")

    def __init__(self, parent: Optional["_Scope"] = None):
        self.vars: Dict[str, _Binding] = {}
        self.parent = parent
        self.hoisted: set = set()  # id() of define forms pre-registered here

    def lookup(self, name: str) -> Optional[_Binding]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def visible_names(self) -> List[str]:
        names: set = set()
        scope: Optional[_Scope] = self
        while scope is not None:
            names.update(scope.vars)
            scope = scope.parent
        return sorted(names)


def script_defines(source: str) -> FrozenSet[str]:
    """Names a script ``define``\\ s at top level (visible to later scripts)."""
    try:
        exprs = parse(source)
    except AlterSyntaxError:
        return frozenset()
    names = set()
    for expr in exprs:
        name = _define_name(expr)
        if name:
            names.add(name)
    return frozenset(names)


def _define_name(expr: Any) -> Optional[str]:
    if (isinstance(expr, list) and len(expr) >= 3
            and isinstance(expr[0], Symbol) and str(expr[0]) == "define"):
        target = expr[1]
        if isinstance(target, Symbol):
            return str(target)
        if isinstance(target, list) and target and isinstance(target[0], Symbol):
            return str(target[0])
    return None


@lru_cache(maxsize=256)
def _lint_cached(source: str, name: str, extra_globals: FrozenSet[str]) -> Tuple[Finding, ...]:
    return tuple(_Linter(source, name, extra_globals).run())


def lint_script(source: str, name: str = "<script>",
                extra_globals: Tuple[str, ...] = GLUE_GLOBALS) -> List[Finding]:
    """Lint one Alter script; returns findings (never raises on bad scripts).

    ``extra_globals`` are names assumed bound in the interpreter's global
    environment before the script runs (the generator injects
    :data:`GLUE_GLOBALS`; pass the accumulated top-level defines of earlier
    scripts when linting a sequenced script set).
    """
    return list(_lint_cached(source, name, frozenset(extra_globals)))


class _Linter:
    def __init__(self, source: str, name: str, extra_globals: FrozenSet[str]):
        self.source = source
        self.name = name
        self.extra_globals = extra_globals
        self.findings: List[Finding] = []
        self.locs: Dict[int, Tuple[int, int]] = {}

    # -- plumbing -----------------------------------------------------------
    def _where(self, node: Any) -> str:
        loc = self.locs.get(id(node))
        if loc is None:
            return self.name
        return f"{self.name}:{loc[0]}:{loc[1]}"

    def _report(self, severity: str, rule: str, node: Any, message: str,
                hint: str = "") -> None:
        self.findings.append(
            Finding(severity, rule, self._where(node), message, hint, "alter-lint")
        )

    # -- entry --------------------------------------------------------------
    def run(self) -> List[Finding]:
        try:
            exprs, self.locs = parse_with_locations(self.source)
        except AlterSyntaxError as exc:
            self.findings.append(
                Finding("error", "ALT000", f"{self.name}:{exc.line}:{exc.col}",
                        str(exc), "fix the script syntax", "alter-lint")
            )
            return self.findings

        root = _Scope()
        for bname, arity in builtin_signatures().items():
            kind = "const" if arity is None else "builtin"
            root.vars[bname] = _Binding(bname, kind, "<builtin>", arity)
        globals_scope = _Scope(root)
        for gname in sorted(self.extra_globals):
            globals_scope.vars[gname] = _Binding(gname, "global", "<injected>")

        top = _Scope(globals_scope)
        self._walk_body(exprs, top)
        self._close_scope(top)
        return self.findings

    # -- scope management ---------------------------------------------------
    def _bind(self, scope: _Scope, name: str, kind: str, node: Any,
              arity: Arity = None) -> _Binding:
        outer = scope.parent.lookup(name) if scope.parent else None
        if outer is not None and outer.kind in ("builtin", "const"):
            self._report(
                "warning", "ALT004", node,
                f"'{name}' shadows the builtin of the same name",
                "rename the binding",
            )
        elif outer is not None and kind in ("param", "let") or (
            outer is not None and outer.kind in ("define", "param", "let")
            and kind == "define" and scope.parent is not None
            and scope.parent.parent is not None  # inner scopes only
        ):
            self._report(
                "warning", "ALT004", node,
                f"'{name}' shadows an outer binding",
                "rename the binding to avoid confusion",
            )
        binding = _Binding(name, kind, self._where(node), arity)
        scope.vars[name] = binding
        return binding

    def _close_scope(self, scope: _Scope) -> None:
        for binding in scope.vars.values():
            if binding.kind == "define" and not binding.used:
                self.findings.append(
                    Finding("warning", "ALT003", binding.where,
                            f"'{binding.name}' is defined but never used",
                            "remove the define or reference it", "alter-lint")
                )

    # -- body walking (define hoisting) ------------------------------------
    def _walk_body(self, exprs: List[Any], scope: _Scope) -> None:
        for expr in exprs:
            name = _define_name(expr)
            if name and name not in scope.vars:
                arity = self._define_arity(expr)
                self._bind(scope, name, "define", expr, arity)
                scope.hoisted.add(id(expr))
        for expr in exprs:
            self._walk(expr, scope)

    @staticmethod
    def _define_arity(expr: List[Any]) -> Arity:
        target = expr[1]
        if isinstance(target, list):
            params, rest, err = _parse_params(target[1:])
            if err is None:
                return (len(params), None if rest else len(params))
        return None

    # -- the walker ---------------------------------------------------------
    def _walk(self, expr: Any, scope: _Scope) -> None:
        if isinstance(expr, Symbol):
            self._use(expr, scope)
            return
        if not isinstance(expr, list) or not expr:
            return
        head = expr[0]
        if isinstance(head, Symbol) and str(head) in _SPECIAL_FORMS:
            handler = getattr(self, "_form_" + _FORM_METHODS[str(head)])
            handler(expr, scope)
            return
        self._walk_application(expr, scope)

    def _use(self, sym: Symbol, scope: _Scope) -> Optional[_Binding]:
        binding = scope.lookup(str(sym))
        if binding is None:
            close = difflib.get_close_matches(str(sym), scope.visible_names(), n=1)
            hint = f"did you mean '{close[0]}'?" if close else "define it first"
            self._report("error", "ALT001", sym,
                         f"unbound symbol '{sym}'", hint)
            return None
        binding.used = True
        return binding

    def _walk_application(self, expr: List[Any], scope: _Scope) -> None:
        head = expr[0]
        nargs = len(expr) - 1
        if isinstance(head, Symbol):
            binding = self._use(head, scope)
            if binding is not None:
                if binding.kind == "const":
                    self._report("error", "ALT002", head,
                                 f"'{head}' is a constant, not a procedure",
                                 "remove the parentheses")
                elif binding.arity is not None and not binding.assigned:
                    self._check_arity(head, str(head), binding.arity, nargs)
        elif (isinstance(head, list) and head
              and isinstance(head[0], Symbol) and str(head[0]) == "lambda"):
            # ((lambda (a b) ...) x): check the immediate application too.
            if len(head) >= 3 and isinstance(head[1], list):
                params, rest, err = _parse_params(head[1])
                if err is None:
                    arity = (len(params), None if rest else len(params))
                    self._check_arity(expr, "<lambda>", arity, nargs)
            self._walk(head, scope)
        else:
            self._walk(head, scope)
        for arg in expr[1:]:
            self._walk(arg, scope)

    def _check_arity(self, node: Any, name: str, arity: Tuple[int, Optional[int]],
                     nargs: int) -> None:
        lo, hi = arity
        if nargs < lo or (hi is not None and nargs > hi):
            if hi is None:
                want = f"at least {lo}"
            elif lo == hi:
                want = str(lo)
            else:
                want = f"{lo}..{hi}"
            self._report("error", "ALT002", node,
                         f"'{name}' expects {want} argument(s), got {nargs}",
                         "check the call site against the signature")

    # -- special forms -------------------------------------------------------
    def _form_quote(self, expr, scope):
        if len(expr) != 2:
            self._report("error", "ALT006", expr, "quote takes exactly 1 argument")
        # quoted data is literal: no name resolution inside

    def _form_if(self, expr, scope):
        if len(expr) not in (3, 4):
            self._report("error", "ALT006", expr, "if needs 2 or 3 forms")
            for sub in expr[1:]:
                self._walk(sub, scope)
            return
        test = expr[1]
        if _is_literal(test):
            if _literal_truthy(test) and len(expr) == 4:
                self._report("warning", "ALT005", expr[3],
                             "else branch is unreachable (test is always true)",
                             "remove the dead branch")
            elif not _literal_truthy(test):
                self._report("warning", "ALT005", expr[2],
                             "then branch is unreachable (test is always false)",
                             "remove the dead branch")
        for sub in expr[1:]:
            self._walk(sub, scope)

    def _form_cond(self, expr, scope):
        terminal = False
        for clause in expr[1:]:
            if not isinstance(clause, list) or not clause:
                self._report("error", "ALT006", clause if clause else expr,
                             "cond clause must be a non-empty list")
                continue
            test = clause[0]
            if terminal:
                self._report("warning", "ALT005", clause,
                             "cond clause is unreachable (an earlier clause "
                             "always matches)", "remove the dead clause")
            is_else = isinstance(test, Symbol) and str(test) == "else"
            if is_else or (_is_literal(test) and _literal_truthy(test)):
                terminal = True
            if not is_else:
                self._walk(test, scope)
            for sub in clause[1:]:
                self._walk(sub, scope)

    def _form_define(self, expr, scope):
        if len(expr) < 3:
            self._report("error", "ALT006", expr, "define needs a name and a value")
            return
        target = expr[1]
        if isinstance(target, Symbol):
            if len(expr) != 3:
                self._report("error", "ALT006", expr,
                             "define of a name takes exactly one value")
            if id(expr) not in scope.hoisted and str(target) not in scope.vars:
                self._bind(scope, str(target), "define", expr)
            for sub in expr[2:]:
                self._walk(sub, scope)
            return
        if isinstance(target, list) and target and isinstance(target[0], Symbol):
            params, rest, err = _parse_params(target[1:])
            if err is not None:
                self._report("error", "ALT006", expr, err)
                return
            fname = str(target[0])
            if id(expr) not in scope.hoisted and fname not in scope.vars:
                self._bind(scope, fname, "define", expr, self._define_arity(expr))
            inner = _Scope(scope)
            for p in params:
                self._bind(inner, p, "param", target)
            if rest:
                self._bind(inner, rest, "param", target)
            self._walk_body(expr[2:], inner)
            self._close_scope(inner)
            return
        self._report("error", "ALT006", expr, "bad define target")

    def _form_set(self, expr, scope):
        if len(expr) != 3 or not isinstance(expr[1], Symbol):
            self._report("error", "ALT006", expr, "set! needs a symbol and a value")
            for sub in expr[1:]:
                if not isinstance(sub, Symbol):
                    self._walk(sub, scope)
            return
        binding = scope.lookup(str(expr[1]))
        if binding is None:
            self._report("error", "ALT001", expr[1],
                         f"set! of unbound symbol '{expr[1]}'",
                         "define it before assigning")
        else:
            binding.assigned = True
        self._walk(expr[2], scope)

    def _form_lambda(self, expr, scope):
        if len(expr) < 3:
            self._report("error", "ALT006", expr, "lambda needs params and body")
            return
        if not isinstance(expr[1], list):
            self._report("error", "ALT006", expr, "lambda parameter list must be a list")
            return
        params, rest, err = _parse_params(expr[1])
        if err is not None:
            self._report("error", "ALT006", expr, err)
            return
        inner = _Scope(scope)
        for p in params:
            self._bind(inner, p, "param", expr)
        if rest:
            self._bind(inner, rest, "param", expr)
        self._walk_body(expr[2:], inner)
        self._close_scope(inner)

    def _form_let(self, expr, scope):
        form = str(expr[0])
        # Named let: (let loop ((v init) ...) body...)
        if form == "let" and len(expr) >= 4 and isinstance(expr[1], Symbol):
            bindings = expr[2]
            if not isinstance(bindings, list):
                self._report("error", "ALT006", expr, "named let needs a binding list")
                return
            names = []
            for b in bindings:
                bname = self._binding_name(b, expr)
                if bname is None:
                    return
                names.append(bname)
                self._walk(b[1], scope)
            loop_scope = _Scope(scope)
            loop = self._bind(loop_scope, str(expr[1]), "define", expr,
                              (len(names), len(names)))
            loop.used = True  # the initial application counts as a use
            inner = _Scope(loop_scope)
            for bname, b in zip(names, bindings):
                self._bind(inner, bname, "let", b)
            self._walk_body(expr[3:], inner)
            self._close_scope(inner)
            return
        if len(expr) < 3 or not isinstance(expr[1], list):
            self._report("error", "ALT006", expr, f"{form} needs bindings and body")
            return
        inner = _Scope(scope)
        for b in expr[1]:
            bname = self._binding_name(b, expr)
            if bname is None:
                return
            # let evaluates inits in the outer scope, let* sequentially.
            self._walk(b[1], scope if form == "let" else inner)
            self._bind(inner, bname, "let", b)
        self._walk_body(expr[2:], inner)
        self._close_scope(inner)

    def _binding_name(self, b: Any, ctx: Any) -> Optional[str]:
        if (not isinstance(b, list) or len(b) != 2
                or not isinstance(b[0], Symbol)):
            self._report("error", "ALT006", b if isinstance(b, list) else ctx,
                         "let binding must be (name value)")
            return None
        return str(b[0])

    def _form_begin(self, expr, scope):
        self._walk_body(expr[1:], scope)

    def _form_while(self, expr, scope):
        if len(expr) < 2:
            self._report("error", "ALT006", expr, "while needs a test")
            return
        if _is_literal(expr[1]) and not _literal_truthy(expr[1]):
            for sub in expr[2:]:
                self._report("warning", "ALT005", sub,
                             "while body is unreachable (test is always false)",
                             "remove the dead loop")
        self._walk(expr[1], scope)
        self._walk_body(expr[2:], scope)

    def _form_and_or(self, expr, scope):
        for sub in expr[1:]:
            self._walk(sub, scope)

    def _form_when(self, expr, scope):
        self._one_armed(expr, scope, negate=False)

    def _form_unless(self, expr, scope):
        self._one_armed(expr, scope, negate=True)

    def _one_armed(self, expr, scope, negate: bool):
        form = str(expr[0])
        if len(expr) < 2:
            self._report("error", "ALT006", expr, f"{form} needs a test")
            return
        test = expr[1]
        if _is_literal(test) and (_literal_truthy(test) == negate):
            for sub in expr[2:]:
                self._report("warning", "ALT005", sub,
                             f"{form} body is unreachable (test is constant)",
                             "remove the dead branch")
        self._walk(test, scope)
        self._walk_body(expr[2:], scope)

    def _form_else(self, expr, scope):
        # 'else' outside cond: treat like an unbound symbol application.
        self._report("error", "ALT006", expr, "'else' is only valid inside cond")


_FORM_METHODS = {
    "quote": "quote",
    "if": "if",
    "cond": "cond",
    "define": "define",
    "set!": "set",
    "lambda": "lambda",
    "let": "let",
    "let*": "let",
    "begin": "begin",
    "while": "while",
    "and": "and_or",
    "or": "and_or",
    "when": "when",
    "unless": "unless",
    "else": "else",
}


def _parse_params(param_expr: Any) -> Tuple[List[str], Optional[str], Optional[str]]:
    """Mirror of the interpreter's parameter parsing, returning an error string."""
    if not isinstance(param_expr, list):
        return [], None, "parameter list must be a list"
    params: List[str] = []
    rest: Optional[str] = None
    it = iter(param_expr)
    for p in it:
        if isinstance(p, Symbol) and str(p) == ".":
            rest_sym = next(it, None)
            if rest_sym is None:
                return params, None, "rest parameter missing after '.'"
            if not isinstance(rest_sym, Symbol):
                return params, None, "rest parameter must be a symbol"
            rest = str(rest_sym)
            break
        if not isinstance(p, Symbol):
            return params, None, f"parameters must be symbols, got {to_source(p)}"
        params.append(str(p))
    return params, rest, None


def _is_literal(expr: Any) -> bool:
    return not isinstance(expr, (Symbol, list))


def _literal_truthy(expr: Any) -> bool:
    return expr is not False and expr is not None
