"""Buffer-hazard detection (the SAGE Verifier's third pass).

Checks every logical buffer's striping tables *exactly* — element masks over
the logical shape, not heuristics — before any storage is allocated:

* **BUF201** — a spec whose striping cannot be realised (bad axis, byte
  counts inconsistent with the shape, zero threads),
* **BUF202** — write-write overlap: two writer threads own the same element,
* **BUF203** — read-before-write: a reader thread needs elements no writer
  produces,
* **BUF204** — the consumer runs before its producer in the execution
  order, so a read would observe the previous iteration's data,
* **BUF205** — a starved reader thread that owns no elements at all,
* **BUF206 / BUF207** — the per-node physical-buffer footprint exceeds (or
  crowds) the platform's DRAM, mirroring the run-time's enforcement in
  :meth:`~repro.core.runtime.kernel.memory_footprint` terms.

Specs are the glue ``LOGICAL_BUFFERS`` dict shape.  A spec may carry
explicit ``src_regions`` / ``dst_regions`` overrides — per-thread lists of
``(start, stop)`` pairs per axis — which replace the striping-derived
regions; irregular AToT partitions use this hook, and it is how the
seeded-defect corpus plants overlap and coverage hazards.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.model.application import ApplicationModel
from ..core.model.datatypes import Striping
from ..core.model.mapping import Mapping
from ..core.runtime.striping import (
    AxisIndices,
    Region,
    region_elems,
    region_indexer,
    thread_region,
)
from .report import Finding

__all__ = ["logical_buffer_specs", "check_buffer_hazards"]

#: Fraction of node DRAM above which BUF207 warns.
NEAR_CAPACITY = 0.8


def logical_buffer_specs(app: ApplicationModel) -> List[dict]:
    """Derive ``LOGICAL_BUFFERS``-shaped specs straight from the model.

    Mirrors what the glue scripts emit, without executing any Alter code, so
    the hazard checker can run on a model that fails other passes.
    """
    instances = app.function_instances()
    by_block = {id(inst.block): inst for inst in instances}
    specs: List[dict] = []
    for buffer_id, (src, dst) in enumerate(app.flattened_arcs()):
        src_inst = by_block.get(id(src.block))
        dst_inst = by_block.get(id(dst.block))
        if src_inst is None or dst_inst is None:
            continue  # dangling arc: model validation reports it
        dt = src.datatype
        specs.append(
            {
                "id": buffer_id,
                "name": f"{src_inst.path}.{src.name}->{dst_inst.path}.{dst.name}",
                "shape": tuple(dt.shape),
                "dtype": dt.dtype,
                "elem_bytes": dt.elem_bytes,
                "total_bytes": dt.total_bytes,
                "src_function": src_inst.function_id,
                "dst_function": dst_inst.function_id,
                "src_port": src.name,
                "dst_port": dst.name,
                "src_striping": src.striping.to_dict(),
                "dst_striping": dst.striping.to_dict(),
                "src_threads": src_inst.threads,
                "dst_threads": dst_inst.threads,
            }
        )
    return specs


def check_buffer_hazards(
    specs: Sequence[dict],
    mapping: Optional[Mapping] = None,
    nprocs: Optional[int] = None,
    execution_order: Optional[Sequence[int]] = None,
    memory_bytes: Optional[int] = None,
) -> List[Finding]:
    """Run every hazard rule over a set of logical-buffer specs.

    ``mapping`` + ``memory_bytes`` enable the capacity rules (BUF206/207);
    ``execution_order`` (function ids in firing order) enables BUF204.
    """
    findings: List[Finding] = []
    footprint: Dict[int, int] = {}
    order_pos = (
        {fid: i for i, fid in enumerate(execution_order)}
        if execution_order is not None
        else None
    )
    for spec in specs:
        findings.extend(
            _check_one(spec, mapping, order_pos, footprint)
        )
    if memory_bytes is not None and footprint:
        findings.extend(_check_capacity(footprint, memory_bytes, nprocs))
    return findings


# ---------------------------------------------------------------------------


def _check_one(spec, mapping, order_pos, footprint) -> List[Finding]:
    findings: List[Finding] = []
    where = spec.get("name", f"buffer {spec.get('id', '?')}")
    shape = tuple(spec["shape"])
    elem_bytes = int(spec["elem_bytes"])

    total = elem_bytes
    for d in shape:
        total *= d
    if total != spec["total_bytes"]:
        findings.append(
            Finding(
                "error", "BUF201", where,
                f"total_bytes {spec['total_bytes']} inconsistent with shape "
                f"{shape} x {elem_bytes} bytes/elem (= {total})",
                "recompute the buffer size from the datatype",
                "buffer-hazards",
            )
        )

    try:
        src_regions = _endpoint_regions(spec, "src", shape)
        dst_regions = _endpoint_regions(spec, "dst", shape)
    except Exception as exc:
        findings.append(
            Finding(
                "error", "BUF201", where,
                f"striping cannot be realised over shape {shape}: {exc}",
                "fix the stripe axis/threads against the datatype shape",
                "buffer-hazards",
            )
        )
        return findings

    src_kind = spec["src_striping"].get("kind", "replicated")
    explicit_src = "src_regions" in spec

    # BUF202: overlapping writers.  Replicated sources intentionally have
    # every thread write the full (identical) data, so only divided layouts
    # and explicit region tables are checked.
    write_count = np.zeros(shape, dtype=np.int32)
    for region in src_regions:
        if region is not None and region_elems(region):
            write_count[region_indexer(region)] += 1
    if (src_kind != "replicated" or explicit_src) and len(src_regions) > 1:
        overlap = write_count > 1
        if overlap.any():
            coord = tuple(int(c) for c in np.argwhere(overlap)[0])
            owners = [
                t for t, region in enumerate(src_regions)
                if region is not None and _region_contains(region, coord)
            ]
            findings.append(
                Finding(
                    "error", "BUF202", where,
                    f"write-write overlap: element {coord} is written by "
                    f"source threads {owners}",
                    "make the writer regions disjoint",
                    "buffer-hazards",
                )
            )

    # BUF203: every reader element must be covered by some writer.
    written = write_count > 0
    for t, region in enumerate(dst_regions):
        if region is None or not region_elems(region):
            findings.append(
                Finding(
                    "warning", "BUF205", where,
                    f"destination thread {t} owns no elements (starved reader)",
                    "reduce the thread count or enlarge the data",
                    "buffer-hazards",
                )
            )
            continue
        covered = written[region_indexer(region)]
        if not covered.all():
            missing = int(covered.size - np.count_nonzero(covered))
            local = np.argwhere(~covered)[0]
            coord = _local_to_global(region, local)
            findings.append(
                Finding(
                    "error", "BUF203", where,
                    f"read-before-write: destination thread {t} reads "
                    f"{missing} element(s) no source thread writes "
                    f"(first at {coord})",
                    "extend the writer regions to cover every reader",
                    "buffer-hazards",
                )
            )

    # BUF204: consumer scheduled before producer.
    if order_pos is not None:
        sp = order_pos.get(spec["src_function"])
        dp = order_pos.get(spec["dst_function"])
        if sp is not None and dp is not None and dp < sp:
            findings.append(
                Finding(
                    "error", "BUF204", where,
                    f"function {spec['dst_function']} reads this buffer at "
                    f"position {dp} of the execution order, before its "
                    f"producer {spec['src_function']} writes it at {sp}",
                    "reorder execution so the producer fires first",
                    "buffer-hazards",
                )
            )

    # Footprint accumulation for the capacity rules.
    if mapping is not None:
        try:
            for t, region in enumerate(src_regions):
                proc = mapping.processor_of(spec["src_function"], t)
                nbytes = region_elems(region) * elem_bytes if region else 0
                footprint[proc] = footprint.get(proc, 0) + nbytes
            for t, region in enumerate(dst_regions):
                proc = mapping.processor_of(spec["dst_function"], t)
                nbytes = region_elems(region) * elem_bytes if region else 0
                footprint[proc] = footprint.get(proc, 0) + nbytes
        except Exception as exc:
            findings.append(
                Finding(
                    "error", "BUF201", where,
                    f"buffer endpoints are not fully mapped: {exc}",
                    "map every thread of both endpoint functions",
                    "buffer-hazards",
                )
            )
    return findings


def _check_capacity(footprint, memory_bytes, nprocs) -> List[Finding]:
    findings: List[Finding] = []
    for proc in sorted(footprint):
        nbytes = footprint[proc]
        where = f"processor {proc}"
        if nprocs is not None and proc >= nprocs:
            findings.append(
                Finding(
                    "error", "BUF201", where,
                    f"buffers are mapped to processor {proc} but the machine "
                    f"has only {nprocs}",
                    "fix the mapping's processor range",
                    "buffer-hazards",
                )
            )
            continue
        if nbytes > memory_bytes:
            findings.append(
                Finding(
                    "error", "BUF206", where,
                    f"physical buffers need {nbytes} bytes but the node has "
                    f"{memory_bytes} bytes DRAM",
                    "use more nodes or smaller data sets",
                    "buffer-hazards",
                )
            )
        elif nbytes > NEAR_CAPACITY * memory_bytes:
            pct = 100.0 * nbytes / memory_bytes
            findings.append(
                Finding(
                    "warning", "BUF207", where,
                    f"physical buffers use {pct:.0f}% of node DRAM "
                    f"({nbytes} of {memory_bytes} bytes)",
                    "leave headroom for staging copies and kernel state",
                    "buffer-hazards",
                )
            )
    return findings


# -- region plumbing ---------------------------------------------------------


def _endpoint_regions(spec, side: str, shape) -> List[Optional[Region]]:
    """Per-thread regions of one endpoint: explicit table or striping-derived."""
    threads = int(spec[f"{side}_threads"])
    if threads < 1:
        raise ValueError(f"{side}_threads must be >= 1, got {threads}")
    explicit = spec.get(f"{side}_regions")
    if explicit is not None:
        if len(explicit) != threads:
            raise ValueError(
                f"{side}_regions lists {len(explicit)} threads, spec says {threads}"
            )
        return [_parse_region(r, shape) for r in explicit]
    striping = Striping.from_dict(spec[f"{side}_striping"])
    return [thread_region(shape, striping, threads, t) for t in range(threads)]


def _parse_region(bounds, shape) -> Optional[Region]:
    """``[(start, stop), ...]`` per axis -> Region; None for an empty region."""
    if bounds is None:
        return None
    if len(bounds) != len(shape):
        raise ValueError(
            f"region rank {len(bounds)} does not match shape rank {len(shape)}"
        )
    axes = []
    for (start, stop), extent in zip(bounds, shape):
        if not (0 <= start <= stop <= extent):
            raise ValueError(
                f"region bounds ({start}, {stop}) outside axis extent {extent}"
            )
        axes.append(AxisIndices.of_range(start, stop))
    return tuple(axes)


def _region_contains(region: Region, coord: Tuple[int, ...]) -> bool:
    for ax, c in zip(region, coord):
        arr = ax.as_array()
        if c not in arr:
            return False
    return True


def _local_to_global(region: Region, local) -> Tuple[int, ...]:
    return tuple(int(ax.as_array()[i]) for ax, i in zip(region, local))
