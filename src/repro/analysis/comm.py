"""Communication-schedule analysis (the SAGE Verifier's second pass).

From the mapped model and its striping tables, this pass derives every
rank's ordered sequence of sends, receives, and collectives — the exact
message traffic the run-time would issue — and then *symbolically executes*
the schedule with MPI semantics (buffered non-blocking sends, blocking
tag-matched receives, barrier-style collectives) without simulating a
single application cycle.

Rules:

* **COMM001** — deadlock: a cycle in the wait-for graph of stalled ranks,
* **COMM002** — a receive that can never be matched (peer finished without
  sending),
* **COMM003** — a collective whose participant sets disagree across ranks,
  or that some declared participant never posts,
* **COMM004** — a send no one receives (warning: leaked message),
* **COMM005** — a receive whose peer sent only messages with other tags.

The derivation posts an arc's receives at the consumer's phase and its
sends at the producer's phase, walking functions in dataflow order; an
axis-changing redistribution whose endpoints share one processor set
becomes a single all-to-all collective (the distributed corner turn),
any other cross-processor hop becomes tagged point-to-point traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.model.application import ApplicationModel, ModelError
from ..core.model.mapping import Mapping
from ..core.runtime.striping import message_plan
from .report import Finding

__all__ = ["CommOp", "CommSchedule", "derive_comm_schedule", "check_comm_schedule"]


@dataclass(frozen=True)
class CommOp:
    """One communication operation in a rank's schedule."""

    kind: str                          # "send" | "recv" | "coll"
    peer: int = -1                     # partner rank (p2p only)
    tag: int = -1                      # buffer id (p2p) or collective id
    participants: Tuple[int, ...] = () # ranks in the collective (coll only)
    where: str = ""                    # the arc this op implements

    def describe(self) -> str:
        if self.kind == "send":
            return f"send(to={self.peer}, tag={self.tag})"
        if self.kind == "recv":
            return f"recv(from={self.peer}, tag={self.tag})"
        return f"collective(tag={self.tag}, ranks={list(self.participants)})"


@dataclass
class CommSchedule:
    """Per-rank ordered communication programs derived from a mapped model."""

    nprocs: int
    ops: Dict[int, List[CommOp]] = field(default_factory=dict)
    model_name: str = ""

    def rank_ops(self, rank: int) -> List[CommOp]:
        return self.ops.get(rank, [])

    def total_ops(self) -> int:
        return sum(len(v) for v in self.ops.values())


def derive_comm_schedule(
    app: ApplicationModel, mapping: Mapping, nprocs: int
) -> CommSchedule:
    """Derive each rank's send/recv/collective sequence for one iteration.

    Walks functions in dataflow order; for each function, posts the receives
    of its inbound arcs, then the sends of its outbound arcs.  When the
    model has a cycle the declaration order is used instead, so the
    schedule checker surfaces the resulting deadlock rather than the
    derivation crashing.
    """
    schedule = CommSchedule(nprocs=nprocs, model_name=app.name)
    ops = schedule.ops
    for rank in range(nprocs):
        ops[rank] = []

    instances = app.function_instances()
    by_block = {id(inst.block): inst for inst in instances}
    try:
        order = app.topological_order()
    except ModelError:
        order = instances

    # Group arcs by producer / consumer function id.
    arcs = app.flattened_arcs()
    inbound: Dict[int, List[int]] = {}
    outbound: Dict[int, List[int]] = {}
    infos = []
    for buffer_id, (src, dst) in enumerate(arcs):
        src_inst = by_block.get(id(src.block))
        dst_inst = by_block.get(id(dst.block))
        if src_inst is None or dst_inst is None:  # dangling arc: model checks it
            infos.append(None)
            continue
        infos.append((src, dst, src_inst, dst_inst))
        inbound.setdefault(dst_inst.function_id, []).append(buffer_id)
        outbound.setdefault(src_inst.function_id, []).append(buffer_id)

    def proc(fid: int, thread: int) -> int:
        return mapping.processor_of(fid, thread)

    def arc_hops(buffer_id: int):
        """Cross-processor (src_rank, dst_rank) hops of one arc's plan."""
        src, dst, src_inst, dst_inst = infos[buffer_id]
        plan = message_plan(
            src.datatype.shape,
            src.datatype.elem_bytes,
            src.striping,
            src_inst.threads,
            dst.striping,
            dst_inst.threads,
        )
        hops = []
        for msg in plan:
            sp = proc(src_inst.function_id, msg.src_thread)
            dp = proc(dst_inst.function_id, msg.dst_thread)
            if sp != dp:
                hops.append((sp, dp))
        return hops

    def is_collective(buffer_id: int) -> Optional[Tuple[int, ...]]:
        """Participant ranks when the arc runs as one all-to-all collective."""
        src, dst, src_inst, dst_inst = infos[buffer_id]
        if not (src.striping.is_striped and dst.striping.is_striped):
            return None
        if src.striping.axis == dst.striping.axis:
            return None
        src_procs = {proc(src_inst.function_id, t) for t in range(src_inst.threads)}
        dst_procs = {proc(dst_inst.function_id, t) for t in range(dst_inst.threads)}
        # Only when both sides live on the same ranks is a symmetric
        # collective legal; otherwise fall back to point-to-point.
        if src_procs != dst_procs or len(src_procs) < 2:
            return None
        return tuple(sorted(src_procs))

    collective_cache: Dict[int, Optional[Tuple[int, ...]]] = {}

    for inst in order:
        fid = inst.function_id
        # Receive phase: inbound arcs deliver before the function fires.
        for buffer_id in inbound.get(fid, []):
            where = _arc_where(infos[buffer_id])
            participants = collective_cache.setdefault(
                buffer_id, is_collective(buffer_id)
            )
            if participants is not None:
                for rank in participants:
                    ops[rank].append(
                        CommOp("coll", tag=buffer_id,
                               participants=participants, where=where)
                    )
                continue
            for sp, dp in sorted(arc_hops(buffer_id)):
                ops[dp].append(CommOp("recv", peer=sp, tag=buffer_id, where=where))
        # Send phase: outbound arcs ship once the function has produced.
        for buffer_id in outbound.get(fid, []):
            if collective_cache.setdefault(buffer_id, is_collective(buffer_id)):
                continue  # handled as a collective at the consumer's phase
            where = _arc_where(infos[buffer_id])
            for sp, dp in sorted(arc_hops(buffer_id)):
                ops[sp].append(CommOp("send", peer=dp, tag=buffer_id, where=where))
    return schedule


def _arc_where(info) -> str:
    src, dst, src_inst, dst_inst = info
    return (f"{src_inst.path}.{src.name}->{dst_inst.path}.{dst.name}")


# ---------------------------------------------------------------------------
# Schedule checking: symbolic execution + wait-for-graph analysis.
# ---------------------------------------------------------------------------

def check_comm_schedule(schedule: CommSchedule) -> List[Finding]:
    """Symbolically execute a schedule and report deadlocks and mismatches."""
    findings: List[Finding] = []
    findings.extend(_check_collective_agreement(schedule))

    ranks = sorted(set(range(schedule.nprocs)) | set(schedule.ops))
    programs = {r: schedule.rank_ops(r) for r in ranks}
    pc = {r: 0 for r in ranks}
    in_flight: Dict[Tuple[int, int], List[CommOp]] = {}

    def current(r: int) -> Optional[CommOp]:
        prog = programs[r]
        return prog[pc[r]] if pc[r] < len(prog) else None

    progress = True
    while progress:
        progress = False
        for r in ranks:
            while True:
                op = current(r)
                if op is None:
                    break
                if op.kind == "send":
                    in_flight.setdefault((r, op.peer), []).append(op)
                    pc[r] += 1
                    progress = True
                elif op.kind == "recv":
                    chan = in_flight.get((op.peer, r), [])
                    idx = next(
                        (i for i, s in enumerate(chan) if s.tag == op.tag), None
                    )
                    if idx is None:
                        break  # blocked until the matching send appears
                    chan.pop(idx)
                    pc[r] += 1
                    progress = True
                else:  # collective: advance only when every participant arrived
                    arrived = all(
                        (c := current(p)) is not None
                        and c.kind == "coll"
                        and c.tag == op.tag
                        for p in op.participants
                    )
                    if not arrived:
                        break
                    for p in op.participants:
                        pc[p] += 1
                    if r not in op.participants:
                        pc[r] += 1  # malformed op: don't let the sim spin
                    progress = True
                    break  # our own pc moved; re-enter the loop cleanly

    stalled = [r for r in ranks if current(r) is not None]
    if stalled:
        findings.extend(
            _diagnose_stall(schedule, programs, pc, in_flight, stalled)
        )

    # Leaked messages: sends that completed but were never received.
    leaked: Dict[Tuple[int, int, int, str], int] = {}
    for (src, dst), chan in in_flight.items():
        for op in chan:
            key = (src, dst, op.tag, op.where)
            leaked[key] = leaked.get(key, 0) + 1
    for (src, dst, tag, where), count in sorted(leaked.items()):
        many = f" ({count} messages)" if count > 1 else ""
        findings.append(
            Finding(
                "warning", "COMM004", where or f"rank {src}",
                f"send from rank {src} to rank {dst} with tag {tag} is never "
                f"received{many}",
                "remove the send or add the matching receive",
                "comm-schedule",
            )
        )
    return findings


def _check_collective_agreement(schedule: CommSchedule) -> List[Finding]:
    findings: List[Finding] = []
    by_tag: Dict[int, Dict[int, List[CommOp]]] = {}
    for rank, ops in schedule.ops.items():
        for op in ops:
            if op.kind == "coll":
                by_tag.setdefault(op.tag, {}).setdefault(rank, []).append(op)
    for tag, by_rank in sorted(by_tag.items()):
        sets = {op.participants for ops in by_rank.values() for op in ops}
        where = next(op.where for ops in by_rank.values() for op in ops) \
            or f"collective {tag}"
        if len(sets) > 1:
            rendered = ", ".join(str(sorted(s)) for s in sorted(sets))
            findings.append(
                Finding(
                    "error", "COMM003", where,
                    f"collective {tag} has disagreeing participant sets: "
                    f"{rendered}",
                    "every rank must list the identical participant set",
                    "comm-schedule",
                )
            )
            continue
        participants = set(next(iter(sets)))
        posted = set(by_rank)
        missing = sorted(participants - posted)
        if missing:
            findings.append(
                Finding(
                    "error", "COMM003", where,
                    f"collective {tag} declares ranks {sorted(participants)} "
                    f"but ranks {missing} never post it",
                    "post the collective on every participant or shrink the set",
                    "comm-schedule",
                )
            )
        extra = sorted(posted - participants)
        if extra:
            findings.append(
                Finding(
                    "error", "COMM003", where,
                    f"ranks {extra} post collective {tag} without being in its "
                    f"participant set {sorted(participants)}",
                    "add them to the participant set on every rank",
                    "comm-schedule",
                )
            )
    return findings


def _diagnose_stall(schedule, programs, pc, in_flight, stalled) -> List[Finding]:
    """Classify every stalled rank: deadlock cycle, dead receive, or blocked."""
    findings: List[Finding] = []
    stalled_set = set(stalled)
    finished = {
        r for r in programs if r not in stalled_set and pc[r] >= len(programs[r])
    }
    waits: Dict[int, List[int]] = {}
    for r in stalled:
        op = programs[r][pc[r]]
        if op.kind == "recv":
            waits[r] = [op.peer]
        else:  # collective: waiting on participants that have not arrived
            waits[r] = [
                p for p in op.participants
                if p != r and not (
                    pc[p] < len(programs.get(p, []))
                    and programs[p][pc[p]].kind == "coll"
                    and programs[p][pc[p]].tag == op.tag
                )
            ]

    cycles = _find_cycles({r: [p for p in ps if p in stalled_set]
                           for r, ps in waits.items()})
    in_cycle = set()
    for cycle in cycles:
        in_cycle.update(cycle)
        chain = " -> ".join(
            f"rank {r} waits on {programs[r][pc[r]].describe()}" for r in cycle
        )
        first = programs[cycle[0]][pc[cycle[0]]]
        findings.append(
            Finding(
                "error", "COMM001",
                first.where or schedule.model_name or "schedule",
                f"deadlock: ranks {sorted(cycle)} wait on each other "
                f"in a cycle ({chain})",
                "reorder the exchange so one side sends before it receives",
                "comm-schedule",
            )
        )

    for r in stalled:
        if r in in_cycle:
            continue
        op = programs[r][pc[r]]
        if op.kind == "recv" and op.peer in finished:
            chan = in_flight.get((op.peer, r), [])
            if chan:
                tags = sorted({s.tag for s in chan})
                findings.append(
                    Finding(
                        "error", "COMM005", op.where or f"rank {r}",
                        f"rank {r} expects tag {op.tag} from rank {op.peer}, "
                        f"but the in-flight messages carry tags {tags}",
                        "make the send and receive tags agree",
                        "comm-schedule",
                    )
                )
            else:
                findings.append(
                    Finding(
                        "error", "COMM002", op.where or f"rank {r}",
                        f"rank {r} receives from rank {op.peer} (tag {op.tag}) "
                        f"but rank {op.peer} finished without sending it",
                        "add the matching send or drop the receive",
                        "comm-schedule",
                    )
                )
        elif op.kind == "recv":
            findings.append(
                Finding(
                    "warning", "COMM001", op.where or f"rank {r}",
                    f"rank {r} is transitively blocked at {op.describe()} "
                    f"behind the reported stall",
                    "fix the primary deadlock first",
                    "comm-schedule",
                )
            )
        else:
            missing = sorted(waits.get(r, []))
            findings.append(
                Finding(
                    "error" if any(p in finished for p in missing) else "warning",
                    "COMM003" if any(p in finished for p in missing) else "COMM001",
                    op.where or f"rank {r}",
                    f"rank {r} waits at {op.describe()} for ranks {missing} "
                    f"that never arrive",
                    "every participant must reach the collective",
                    "comm-schedule",
                )
            )
    return findings


def _find_cycles(graph: Dict[int, Sequence[int]]) -> List[List[int]]:
    """Elementary cycles via iterative DFS; each cycle reported once."""
    cycles: List[List[int]] = []
    seen_cycles = set()
    visited = set()
    for start in sorted(graph):
        if start in visited:
            continue
        stack: List[Tuple[int, int]] = [(start, 0)]
        path: List[int] = [start]
        on_path = {start}
        while stack:
            node, edge_idx = stack[-1]
            succs = [p for p in graph.get(node, []) if p in graph]
            if edge_idx >= len(succs):
                stack.pop()
                on_path.discard(node)
                path.pop()
                visited.add(node)
                continue
            stack[-1] = (node, edge_idx + 1)
            nxt = succs[edge_idx]
            if nxt in on_path:
                cycle = path[path.index(nxt):]
                canon = tuple(sorted(cycle))
                if canon not in seen_cycles:
                    seen_cycles.add(canon)
                    cycles.append(list(cycle))
            elif nxt not in visited:
                stack.append((nxt, 0))
                path.append(nxt)
                on_path.add(nxt)
    return cycles
