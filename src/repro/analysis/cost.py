"""Static cost / critical-path prediction (Verifier v2, ``PERF0xx``).

Walks the symbolic per-rank programs — the same function table, striping
plans, and kernel cost models the run-time executes — against the machine
model (:mod:`repro.machine.node` / :mod:`repro.machine.interconnect`)
*without simulating a single event*.  The walk is an analytic critical-path
computation: per-processor CPU cursors serialise co-mapped threads, and
per-node inject/eject port cursors serialise fabric fan-out, exactly
mirroring the resources the simulator would contend on.  The result is a
:class:`CostReport` carrying the predicted makespan, per-link byte loads,
per-port busy times, and per-stage spans.

Because the run-time admits one data set at a time by default
(``max_in_flight=1``), iterations serialise and the predicted makespan is
``iterations x iteration latency``; pipelined configs are estimated as
``latency + (iterations - 1) x bottleneck period``.

Rules (:func:`check_cost`):

* **PERF001** — compute load imbalance: the busiest processor's per-
  iteration busy time exceeds ``IMBALANCE_FACTOR x`` the mean,
* **PERF002** — link oversubscription: an inject/eject port is busy for
  more than ``OVERSUBSCRIPTION`` of the iteration latency,
* **PERF003** — predicted makespan exceeds the declared time budget (only
  when a budget is supplied; the admission linter surfaces it as JOB005),
* **PERF004** — idle leased capacity: a processor in ``range(nprocs)``
  holds no work at all.

:func:`predict_makespan` is the entry point the service scheduler's exact
reservations consume (``static_reservations``) instead of trusting
submitted budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.model.application import ApplicationModel
from ..core.model.mapping import Mapping
from ..core.runtime.config import DEFAULT_CONFIG, RuntimeConfig
from ..core.runtime.kernels import ThreadContext, default_bindings
from ..core.runtime.phantom import PhantomArray
from ..core.runtime.striping import (
    message_plan,
    plan_remote_traffic,
    region_elems,
    region_shape,
    thread_region,
)
from ..machine.platforms import PlatformSpec
from .buffers import logical_buffer_specs
from .report import Finding

__all__ = [
    "CostReport",
    "predict_makespan",
    "check_cost",
    "IMBALANCE_FACTOR",
    "OVERSUBSCRIPTION",
]

#: PERF001 fires when max per-proc busy exceeds this factor times the mean.
IMBALANCE_FACTOR = 1.5

#: PERF002 fires when a NIC port is busy more than this fraction of the
#: predicted iteration latency.
OVERSUBSCRIPTION = 0.6


class _BufView:
    """A logical buffer's striping tables, derived without a runtime."""

    def __init__(self, spec: dict):
        from ..core.model.datatypes import Striping

        self.buffer_id: int = spec["id"]
        self.name: str = spec["name"]
        self.shape: Tuple[int, ...] = tuple(spec["shape"])
        self.dtype: str = spec["dtype"]
        self.elem_bytes: int = int(spec["elem_bytes"])
        self.src_function: int = spec["src_function"]
        self.dst_function: int = spec["dst_function"]
        self.src_port: str = spec["src_port"]
        self.dst_port: str = spec["dst_port"]
        self.src_striping = Striping.from_dict(spec["src_striping"])
        self.dst_striping = Striping.from_dict(spec["dst_striping"])
        self.src_threads: int = spec["src_threads"]
        self.dst_threads: int = spec["dst_threads"]
        self.plan = message_plan(
            self.shape, self.elem_bytes,
            self.src_striping, self.src_threads,
            self.dst_striping, self.dst_threads,
        )
        self._from: Dict[int, list] = {s: [] for s in range(self.src_threads)}
        for m in self.plan:
            self._from[m.src_thread].append(m)
        # The rotated send order the run-time transmits in (start past your
        # own thread id), so port contention is modeled on the same schedule.
        self._send_order = {
            s: sorted(
                msgs,
                key=lambda m: (m.dst_thread - s) % max(1, self.dst_threads),
            )
            for s, msgs in self._from.items()
        }

    def src_region(self, t: int):
        return thread_region(self.shape, self.src_striping, self.src_threads, t)

    def dst_region(self, t: int):
        return thread_region(self.shape, self.dst_striping, self.dst_threads, t)

    def src_region_bytes(self, t: int) -> int:
        return region_elems(self.src_region(t)) * self.elem_bytes

    def dst_region_bytes(self, t: int) -> int:
        return region_elems(self.dst_region(t)) * self.elem_bytes

    def send_order(self, t: int) -> list:
        return self._send_order.get(t, [])


def buffer_views(app: ApplicationModel) -> List[_BufView]:
    """Striping views for every logical buffer of a model."""
    return [_BufView(spec) for spec in logical_buffer_specs(app)]


@dataclass
class CostReport:
    """The static predictor's output for one (model, mapping, platform)."""

    model_name: str
    platform: str
    nprocs: int
    iterations: int
    #: One-iteration latency (source dispatch to last sink exit), seconds.
    iteration_latency: float
    #: Predicted end-to-end makespan for ``iterations`` data sets.
    makespan: float
    #: Steady-state bottleneck period (pipelined estimate), seconds.
    period: float
    #: Per-processor busy seconds per iteration (CPU occupancy).
    proc_busy: Dict[int, float] = field(default_factory=dict)
    #: Per-(src_proc, dst_proc) fabric bytes per iteration.
    link_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Per-processor inject/eject port busy seconds per iteration.
    inject_busy: Dict[int, float] = field(default_factory=dict)
    eject_busy: Dict[int, float] = field(default_factory=dict)
    #: Per-function (name -> (start, end)) spans within one iteration.
    stage_spans: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    #: Aggregate seconds per iteration by cost source.
    compute_s: float = 0.0
    staging_s: float = 0.0
    transfer_s: float = 0.0
    overhead_s: float = 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of one iteration's total charged time that is
        communication (staging copies + fabric transfers)."""
        total = self.compute_s + self.staging_s + self.transfer_s + self.overhead_s
        if total <= 0:
            return 0.0
        return (self.staging_s + self.transfer_s) / total

    def to_dict(self) -> dict:
        return {
            "model": self.model_name,
            "platform": self.platform,
            "nprocs": self.nprocs,
            "iterations": self.iterations,
            "iteration_latency_s": self.iteration_latency,
            "makespan_s": self.makespan,
            "period_s": self.period,
            "comm_fraction": round(self.comm_fraction, 6),
            "proc_busy_s": {str(p): t for p, t in sorted(self.proc_busy.items())},
            "link_bytes": {
                f"{s}->{d}": n for (s, d), n in sorted(self.link_bytes.items())
            },
            "inject_busy_s": {
                str(p): t for p, t in sorted(self.inject_busy.items())
            },
            "eject_busy_s": {
                str(p): t for p, t in sorted(self.eject_busy.items())
            },
            "stage_spans_s": {
                name: [a, b] for name, (a, b) in sorted(self.stage_spans.items())
            },
            "compute_s": self.compute_s,
            "staging_s": self.staging_s,
            "transfer_s": self.transfer_s,
            "overhead_s": self.overhead_s,
        }


def predict_makespan(
    app: ApplicationModel,
    mapping: Mapping,
    nprocs: int,
    platform: PlatformSpec,
    iterations: int = 1,
    config: Optional[RuntimeConfig] = None,
) -> CostReport:
    """Predict the run-time's makespan without simulating.

    The walk visits functions in dataflow order and threads in index order,
    charging exactly the sequence the run-time charges — dispatch overhead,
    receive staging, kernel flops at ``compute_efficiency``, kernel copy
    bytes, send staging, per-message striping overhead, and the fabric
    transfer — onto analytic per-resource cursors.
    """
    cfg = (config or DEFAULT_CONFIG).timing_only()
    cpu = platform.cpu
    fabric = platform.fabric
    boards = platform.board_map(max(nprocs, 1))
    bindings = default_bindings()
    views = buffer_views(app)
    in_bufs: Dict[int, List[_BufView]] = {}
    out_bufs: Dict[int, List[_BufView]] = {}
    for view in views:
        out_bufs.setdefault(view.src_function, []).append(view)
        in_bufs.setdefault(view.dst_function, []).append(view)

    # Remote-traffic tables for the "remote" staging policies.
    send_remote: Dict[Tuple[int, int], int] = {}
    recv_remote: Dict[Tuple[int, int], int] = {}
    for view in views:
        send, recv = plan_remote_traffic(
            view.plan,
            lambda t, f=view.src_function: mapping.processor_of(f, t),
            lambda t, f=view.dst_function: mapping.processor_of(f, t),
        )
        for t, nbytes in send.items():
            send_remote[(view.buffer_id, t)] = nbytes
        for t, nbytes in recv.items():
            recv_remote[(view.buffer_id, t)] = nbytes

    def staged(view: _BufView, t: int, policy: str, receive: bool) -> int:
        if policy == "none":
            return 0
        if policy == "all":
            return (
                view.dst_region_bytes(t) if receive else view.src_region_bytes(t)
            )
        table = recv_remote if receive else send_remote
        return table.get((view.buffer_id, t), 0)

    report = CostReport(
        model_name=app.name, platform=platform.name, nprocs=nprocs,
        iterations=iterations, iteration_latency=0.0, makespan=0.0,
        period=0.0,
    )
    cpu_free: Dict[int, float] = {p: 0.0 for p in range(nprocs)}
    inject_free: Dict[int, float] = dict(cpu_free)
    eject_free: Dict[int, float] = dict(cpu_free)
    shared_free: List[float] = [0.0] * max(1, fabric.shared_channels)
    arrival: Dict[Tuple[int, int], float] = {}
    sink_end = 0.0

    def link_time(src: int, dst: int, nbytes: int) -> float:
        same = boards.get(src) == boards.get(dst)
        return fabric.link_for(same).transfer_time(nbytes)

    for inst in app.topological_order():
        fid = inst.function_id
        binding = bindings.get(inst.block.kernel)
        span_start = None
        span_end = 0.0
        pending: List[Tuple[float, int, int, int, Tuple[int, int]]] = []
        for t in range(inst.threads):
            p = mapping.processor_of(fid, t)
            ready = 0.0
            for view in in_bufs.get(fid, []):
                ready = max(ready, arrival.get((view.buffer_id, t), 0.0))
            now = max(cpu_free.get(p, 0.0), ready)
            if span_start is None or now < span_start:
                span_start = now
            now += cfg.dispatch_overhead
            report.overhead_s += cfg.dispatch_overhead
            in_regions = {
                v.dst_port: v.dst_region(t) for v in in_bufs.get(fid, [])
            }
            out_regions = {
                v.src_port: v.src_region(t) for v in out_bufs.get(fid, [])
            }
            out_dtypes = {v.src_port: v.dtype for v in out_bufs.get(fid, [])}
            inputs = {
                v.dst_port: PhantomArray(
                    region_shape(v.dst_region(t)), v.dtype
                )
                for v in in_bufs.get(fid, [])
            }
            dma = binding is not None and binding.dma_endpoint
            if not dma:
                recv_bytes = sum(
                    staged(v, t, cfg.recv_staging, receive=True)
                    for v in in_bufs.get(fid, [])
                )
                if recv_bytes:
                    dt = cpu.copy_time(recv_bytes)
                    now += dt
                    report.staging_s += dt
            if binding is not None:
                ctx = ThreadContext(
                    function_id=fid, name=inst.path,
                    kernel=inst.block.kernel, thread=t,
                    threads=inst.threads, iteration=0,
                    params=dict(inst.block.params or {}),
                    in_regions=in_regions, out_regions=out_regions,
                    out_dtypes=out_dtypes, execute_data=False,
                )
                flops = float(binding.flops(ctx, inputs))
                copy_bytes = float(binding.copy_bytes(ctx, inputs))
                if flops:
                    dt = cpu.compute_time(flops / cfg.compute_efficiency)
                    now += dt
                    report.compute_s += dt
                if copy_bytes:
                    dt = cpu.copy_time(copy_bytes)
                    now += dt
                    report.compute_s += dt
            for view in out_bufs.get(fid, []):
                if dma and not cfg.stage_dma_sources:
                    pack = 0
                else:
                    pack = staged(view, t, cfg.send_staging, receive=False)
                if pack:
                    dt = cpu.copy_time(pack)
                    now += dt
                    report.staging_s += dt
            span_end = max(span_end, now)
            # Transfer fan-out: striping bookkeeping serialises on this
            # CPU; the wire time serialises on the NIC ports.  Cross-
            # processor hops are only *collected* here (with their CPU-
            # ready times) — they are list-scheduled once every sender of
            # this function has been walked, because real port contention
            # resolves in arrival order, not in thread-walk order.
            for view in out_bufs.get(fid, []):
                for msg in view.send_order(t):
                    if cfg.striping_overhead_per_message > 0:
                        now += cfg.striping_overhead_per_message
                        report.overhead_s += cfg.striping_overhead_per_message
                    dst_p = mapping.processor_of(view.dst_function, msg.dst_thread)
                    key = (view.buffer_id, msg.dst_thread)
                    if dst_p == p:
                        arrival[key] = max(arrival.get(key, 0.0), now)
                        continue
                    pending.append((now, p, dst_p, msg.nbytes, key))
            report.proc_busy[p] = report.proc_busy.get(p, 0.0) + (
                now - max(cpu_free.get(p, 0.0), ready)
            )
            cpu_free[p] = now
        # Earliest-feasible-start list scheduling of this function's
        # cross-processor transfers: ports grant in request-time order, so
        # a rotated all-to-all resolves into near-perfect permutation
        # rounds (the property pairwise exchange exploits).
        pending.sort(key=lambda m: (m[0], m[1], m[4]))
        while pending:
            best_i, best_start = 0, None
            for i, (rdy, src_p, dst_p, _nb, _key) in enumerate(pending):
                s = max(rdy, inject_free[src_p], eject_free[dst_p])
                if not fabric.crossbar and boards.get(src_p) != boards.get(dst_p):
                    s = max(s, min(shared_free))
                if best_start is None or s < best_start:
                    best_i, best_start = i, s
            rdy, src_p, dst_p, nbytes, key = pending.pop(best_i)
            duration = link_time(src_p, dst_p, nbytes)
            start = best_start
            if not fabric.crossbar and boards.get(src_p) != boards.get(dst_p):
                ch = min(range(len(shared_free)), key=lambda i: shared_free[i])
                shared_free[ch] = start + duration
            end = start + duration
            inject_free[src_p] = end
            eject_free[dst_p] = end
            report.inject_busy[src_p] = (
                report.inject_busy.get(src_p, 0.0) + duration
            )
            report.eject_busy[dst_p] = (
                report.eject_busy.get(dst_p, 0.0) + duration
            )
            report.link_bytes[(src_p, dst_p)] = (
                report.link_bytes.get((src_p, dst_p), 0) + nbytes
            )
            report.transfer_s += duration
            arrival[key] = max(arrival.get(key, 0.0), end)
        report.stage_spans[inst.path] = (span_start or 0.0, span_end)
        if not out_bufs.get(fid):
            sink_end = max(sink_end, span_end)

    latency = max(
        sink_end,
        max(cpu_free.values(), default=0.0),
        max(inject_free.values(), default=0.0),
    )
    report.iteration_latency = latency
    busiest = max(report.proc_busy.values(), default=0.0)
    port_busiest = max(
        list(report.inject_busy.values()) + list(report.eject_busy.values()),
        default=0.0,
    )
    report.period = max(busiest, port_busiest)
    if cfg.max_in_flight == 1 or iterations <= 1:
        report.makespan = iterations * latency
    else:
        report.makespan = latency + (iterations - 1) * report.period
    return report


def check_cost(
    report: CostReport,
    budget: Optional[float] = None,
) -> List[Finding]:
    """Run the PERF rules over one :class:`CostReport`."""
    findings: List[Finding] = []
    where = report.model_name
    busy = [report.proc_busy.get(p, 0.0) for p in range(report.nprocs)]
    mean = sum(busy) / len(busy) if busy else 0.0
    if report.nprocs > 1 and mean > 0:
        worst = max(range(report.nprocs), key=lambda p: busy[p])
        if busy[worst] > IMBALANCE_FACTOR * mean:
            findings.append(Finding(
                "warning", "PERF001", f"{where}:proc{worst}",
                f"compute load imbalance: processor {worst} is busy "
                f"{busy[worst] * 1e3:.3f} ms/iteration vs a "
                f"{mean * 1e3:.3f} ms mean "
                f"(> {IMBALANCE_FACTOR:.1f}x)",
                "re-balance the mapping (AToT) or add striping slack",
                "cost-predict",
            ))
    if report.iteration_latency > 0:
        ports = [("inject", p, t) for p, t in report.inject_busy.items()]
        ports += [("eject", p, t) for p, t in report.eject_busy.items()]
        for kind, p, t in sorted(ports):
            if t > OVERSUBSCRIPTION * report.iteration_latency:
                findings.append(Finding(
                    "warning", "PERF002", f"{where}:{kind}{p}",
                    f"link oversubscription: {kind} port of processor {p} "
                    f"is busy {t * 1e3:.3f} ms of a "
                    f"{report.iteration_latency * 1e3:.3f} ms iteration "
                    f"(> {OVERSUBSCRIPTION:.0%})",
                    "spread the redistribution over more endpoints or use "
                    "a mapping with less cross-processor traffic",
                    "cost-predict",
                ))
    if budget is not None and report.makespan > budget:
        findings.append(Finding(
            "warning", "PERF003", where,
            f"predicted makespan {report.makespan:.6f}s exceeds the "
            f"{budget:.6f}s time budget: the lease would be terminated "
            f"at the budget boundary",
            "raise the budget, reduce iterations, or use more nodes",
            "cost-predict",
        ))
    idle = [p for p in range(report.nprocs)
            if report.proc_busy.get(p, 0.0) <= 0.0]
    for p in idle:
        findings.append(Finding(
            "info", "PERF004", f"{where}:proc{p}",
            f"processor {p} holds no work: the mapping leaves leased "
            f"capacity idle",
            "lease fewer nodes or re-map threads onto the idle processor",
            "cost-predict",
        ))
    return findings
