"""Reconfiguration-safety model checking (Verifier v2, ``RECON0xx``).

PRs 6–8 made mappings *dynamic* — shrink after a permanent node loss, grow
back onto replacement capacity, migrate off a straggler — but the Verifier
only understood a single static mapping.  This pass symbolically checks a
mapping **transition**: the pair of placements around a reconfiguration
plus the bookkeeping the run-time derives from it (the moved-thread set
driving the O(delta) traffic-table update, and the checkpoint-region
transfer list).  Everything is proved on the striping algebra — element
masks, message plans, delta composition — without executing an iteration.

A transition is either produced by the planners here
(:func:`plan_shrink_transition` / :func:`plan_grow_transition`, which
mirror the run-time's ``_shrink_restripe`` / ``_grow_migrate`` exactly,
ring mirrors included) or hand-built/tampered — the seeded-defect corpus
does the latter to prove each rule fires.

Rules (:func:`check_transition`):

* **RECON001** — stranded thread: the post-transition placement maps a
  thread onto a processor outside the active set (its elements would never
  be computed),
* **RECON002** — orphaned send: the delta-composed staging-traffic tables
  (driven by the transition's moved set) *undercount* the true remote
  traffic of the new placement, so a cross-processor message would never
  be staged,
* **RECON003** — duplicated send: the delta-composed tables *overcount*
  (a message would be staged twice, corrupting arrival accounting),
* **RECON004** — incomplete checkpoint migration: a region whose owner
  moved has no transfer shipping its bytes to the new owner,
* **RECON005** — redundant migration: a planned transfer moves state no
  re-placed thread needs (wasted reconfiguration bandwidth),
* **RECON006** — the post-transition communication schedule is no longer
  deadlock-free (re-runs :mod:`repro.analysis.comm` on the new placement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.model.application import ApplicationModel
from ..core.model.mapping import Mapping, grow_mapping, shrink_mapping
from ..core.runtime.striping import plan_remote_traffic, plan_remote_traffic_delta
from .comm import check_comm_schedule, derive_comm_schedule
from .cost import buffer_views
from .report import Finding

__all__ = [
    "MappingTransition",
    "plan_shrink_transition",
    "plan_grow_transition",
    "plan_migration_transition",
    "check_transition",
]

#: (old_proc, new_proc, nbytes, label) — the run-time's transfer tuple shape.
Transfer = Tuple[int, int, int, str]


@dataclass
class MappingTransition:
    """One reconfiguration step: two placements plus the derived bookkeeping.

    ``moved`` is the set of ``(function_id, thread)`` keys the run-time
    feeds to :func:`~repro.core.runtime.striping.plan_remote_traffic_delta`;
    ``transfers`` is the checkpoint-region shipping list it executes.  Both
    are *claims* the checker verifies against ground truth re-derived from
    the striping algebra.
    """

    kind: str  # "shrink" | "grow" | "migrate"
    before: Mapping
    after: Mapping
    #: Processors that are alive after the transition.
    active: Set[int]
    #: (fid, thread) keys whose processor the transition claims changed.
    moved: Set[Tuple[int, int]] = field(default_factory=set)
    #: Claimed checkpoint-region transfers (old, new, nbytes, label).
    transfers: List[Transfer] = field(default_factory=list)
    #: Ring-mirror substitution for sources that are dead post-transition
    #: (shrink reads checkpoints from mirrors; grow reads live owners).
    mirrors: Dict[int, int] = field(default_factory=dict)

    def describe(self) -> str:
        return (
            f"{self.kind}: {len(self.moved)} thread(s) moved, "
            f"{len(self.transfers)} region transfer(s), "
            f"active={sorted(self.active)}"
        )


def _mapping_items(app: ApplicationModel, mapping: Mapping):
    for inst in app.function_instances():
        for t in range(inst.threads):
            yield inst.function_id, t, mapping.processor_of(inst.function_id, t)


def _moved_keys(app: ApplicationModel, before: Mapping, after: Mapping):
    return {
        (fid, t)
        for fid, t, proc in _mapping_items(app, before)
        if after.processor_of(fid, t) != proc
    }


def _mirror_table(pre_active: Iterable[int], survivors: Set[int]) -> Dict[int, int]:
    """The run-time's checkpoint ring: each dead processor's mirror is the
    next survivor after it in the pre-transition active ring."""
    ring = sorted(pre_active)
    table: Dict[int, int] = {}
    for proc in ring:
        if proc in survivors:
            table[proc] = proc
            continue
        i = ring.index(proc)
        for step in range(1, len(ring)):
            cand = ring[(i + step) % len(ring)]
            if cand in survivors:
                table[proc] = cand
                break
    return table


def _region_moves(app, before: Mapping, after: Mapping) -> List[Transfer]:
    """Ground-truth checkpoint moves: one per endpoint region whose owning
    thread changed processor (the analysis-side mirror of the run-time's
    ``moved_region_transfers``)."""
    moves: List[Transfer] = []
    for view in buffer_views(app):
        for t in range(view.src_threads):
            old = before.processor_of(view.src_function, t)
            new = after.processor_of(view.src_function, t)
            if old != new:
                moves.append(
                    (old, new, view.src_region_bytes(t), f"{view.name}.src[{t}]")
                )
        for t in range(view.dst_threads):
            old = before.processor_of(view.dst_function, t)
            new = after.processor_of(view.dst_function, t)
            if old != new:
                moves.append(
                    (old, new, view.dst_region_bytes(t), f"{view.name}.dst[{t}]")
                )
    return moves


def plan_shrink_transition(
    app: ApplicationModel,
    mapping: Mapping,
    survivors: Iterable[int],
    balanced: bool = False,
    active: Optional[Iterable[int]] = None,
) -> MappingTransition:
    """Plan the transition ``_shrink_restripe`` would execute for a node
    loss: orphans dealt onto the survivors, checkpoints shipped from the
    dead owners' ring mirrors."""
    survivor_set = set(survivors)
    pre_active = set(active) if active is not None else (
        set(mapping.processors_used()) | survivor_set
    )
    after = shrink_mapping(mapping, sorted(survivor_set), balanced=balanced)
    mirrors = _mirror_table(pre_active, survivor_set)
    transfers = [
        (mirrors.get(old, old), new, nbytes, label)
        for old, new, nbytes, label in _region_moves(app, mapping, after)
    ]
    return MappingTransition(
        kind="shrink",
        before=mapping,
        after=after,
        active=survivor_set,
        moved=_moved_keys(app, mapping, after),
        transfers=[t for t in transfers if t[0] != t[1] and t[2] > 0],
        mirrors=mirrors,
    )


def plan_grow_transition(
    app: ApplicationModel,
    current: Mapping,
    original: Mapping,
    replacements: Dict[int, int],
) -> MappingTransition:
    """Plan the transition ``_grow_migrate`` would execute when replacement
    capacity arrives: threads return to their original placement (lost
    processors substituted) and state ships from the *live* current
    owners — no mirrors involved."""
    after = grow_mapping(current, original, replacements)
    active = set(current.processors_used()) | set(after.processors_used())
    transfers = [
        t for t in _region_moves(app, current, after)
        if t[0] != t[1] and t[2] > 0
    ]
    return MappingTransition(
        kind="grow",
        before=current,
        after=after,
        active=active,
        moved=_moved_keys(app, current, after),
        transfers=transfers,
    )


def plan_migration_transition(
    app: ApplicationModel,
    mapping: Mapping,
    moves: Dict[Tuple[int, int], int],
) -> MappingTransition:
    """Plan a live migration: the named ``(fid, thread) -> processor``
    moves applied to an otherwise unchanged mapping, state shipped from
    the live current owners (the straggler-drain path)."""
    after = mapping.copy()
    for (fid, t), proc in sorted(moves.items()):
        after.assign(fid, t, proc)
    active = set(mapping.processors_used()) | set(after.processors_used())
    transfers = [
        t for t in _region_moves(app, mapping, after)
        if t[0] != t[1] and t[2] > 0
    ]
    return MappingTransition(
        kind="migrate",
        before=mapping,
        after=after,
        active=active,
        moved=_moved_keys(app, mapping, after),
        transfers=transfers,
    )


def check_transition(
    app: ApplicationModel,
    transition: MappingTransition,
    nprocs: int,
) -> List[Finding]:
    """Run every RECON rule over one transition."""
    findings: List[Finding] = []
    src = "recon-safety"
    before, after = transition.before, transition.after

    # RECON001 — every thread must land on an active processor.
    for fid, t, proc in _mapping_items(app, after):
        if proc not in transition.active or not (0 <= proc < nprocs):
            findings.append(Finding(
                "error", "RECON001", f"{transition.kind}:{fid}:{t}",
                f"thread ({fid}, {t}) is mapped onto processor {proc}, "
                f"which is not in the post-transition active set "
                f"{sorted(transition.active)}: its elements would never "
                f"be computed",
                "remap the thread onto a surviving processor",
                src,
            ))

    # RECON002/003 — the delta-composed staging-traffic tables (driven by
    # the transition's claimed moved set) must equal a full recompute at
    # the new placement.  A deficit is an orphaned send (never staged); a
    # surplus is a duplicated one.
    moved = transition.moved
    for view in buffer_views(app):
        sf, df = view.src_function, view.dst_function
        old_src = lambda t, f=sf: before.processor_of(f, t)  # noqa: E731
        old_dst = lambda t, f=df: before.processor_of(f, t)  # noqa: E731
        new_src = lambda t, f=sf: after.processor_of(f, t)  # noqa: E731
        new_dst = lambda t, f=df: after.processor_of(f, t)  # noqa: E731
        send0, recv0 = plan_remote_traffic(view.plan, old_src, old_dst)
        moved_src = {t for f, t in moved if f == sf}
        moved_dst = {t for f, t in moved if f == df}
        d_send, d_recv = plan_remote_traffic_delta(
            view.plan, send0, recv0,
            old_src, old_dst, new_src, new_dst,
            moved_src, moved_dst,
        )
        f_send, f_recv = plan_remote_traffic(view.plan, new_src, new_dst)
        for side, got, want in (("send", d_send, f_send),
                                ("recv", d_recv, f_recv)):
            for t in sorted(set(got) | set(want)):
                have, need = got.get(t, 0), want.get(t, 0)
                if have < need:
                    findings.append(Finding(
                        "error", "RECON002", f"{view.name}.{side}[{t}]",
                        f"orphaned send: the delta-composed traffic table "
                        f"stages {have} bytes for {side} thread {t} but the "
                        f"new placement requires {need} — a cross-processor "
                        f"message would never be staged",
                        "include every re-placed thread in the transition's "
                        "moved set",
                        src,
                    ))
                elif have > need:
                    findings.append(Finding(
                        "error", "RECON003", f"{view.name}.{side}[{t}]",
                        f"duplicated send: the delta-composed traffic table "
                        f"stages {have} bytes for {side} thread {t} but the "
                        f"new placement requires only {need} — a message "
                        f"would be staged twice across the boundary",
                        "recompute the moved set from the placement diff",
                        src,
                    ))

    # RECON004/005 — the claimed checkpoint transfers vs ground truth.
    mirrors = transition.mirrors
    required: Dict[Tuple[int, int, int, str], int] = {}
    for old, new, nbytes, label in _region_moves(app, before, after):
        old = mirrors.get(old, old)
        if old == new or nbytes <= 0:
            continue
        key = (old, new, nbytes, label)
        required[key] = required.get(key, 0) + 1
    claimed: Dict[Tuple[int, int, int, str], int] = {}
    for old, new, nbytes, label in transition.transfers:
        key = (old, new, nbytes, label)
        claimed[key] = claimed.get(key, 0) + 1
    for key in sorted(set(required) | set(claimed), key=lambda k: (k[3], k)):
        old, new, nbytes, label = key
        have, need = claimed.get(key, 0), required.get(key, 0)
        if have < need:
            findings.append(Finding(
                "error", "RECON004", label,
                f"incomplete checkpoint migration: region {label} "
                f"({nbytes} bytes) must move {old} -> {new} but the "
                f"transition ships it {have} of {need} time(s) — the new "
                f"owner would compute on stale or missing state",
                "ship every re-placed region from its checkpoint source",
                src,
            ))
        elif have > need:
            findings.append(Finding(
                "warning", "RECON005", label,
                f"redundant migration: transfer {old} -> {new} of {label} "
                f"({nbytes} bytes) moves state no re-placed thread needs "
                f"({have} shipped, {need} required)",
                "drop the extra transfer to shorten the recovery pause",
                src,
            ))

    # RECON006 — the post-transition schedule must stay deadlock-free.
    try:
        schedule = derive_comm_schedule(app, after, nprocs)
    except Exception as exc:
        findings.append(Finding(
            "error", "RECON006", transition.kind,
            f"post-transition communication schedule cannot be derived: {exc}",
            "fix the post-transition mapping", src,
        ))
    else:
        for f in check_comm_schedule(schedule):
            if f.severity != "error":
                continue
            findings.append(Finding(
                "error", "RECON006", f.where,
                f"post-transition schedule violates {f.rule}: {f.message}",
                f.hint, src,
            ))
    return findings
