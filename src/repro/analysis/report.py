"""Unified finding/report types for the SAGE Verifier.

Every analysis pass — Alter lint, communication-schedule analysis, buffer
hazards, and Designer model validation — reports through one value type,
:class:`Finding`, aggregated into an :class:`AnalysisReport`.  Findings
carry a stable rule id (``ALT0xx`` / ``COMM0xx`` / ``BUF2xx`` / ``MDL0xx``),
a severity, a location, and a fix hint, so reports render identically as
text and as machine-readable JSON and individual rules can be suppressed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Sequence

from ..core.model.validation import ValidationIssue

__all__ = ["Finding", "AnalysisReport", "SEVERITIES", "SCHEMA_VERSION"]

#: Recognised severities, most severe first (also the sort order).
SEVERITIES = ("error", "warning", "info")

#: Version of the JSON report schema written by :meth:`AnalysisReport.to_dict`.
#: v1 had no version field; v2 adds it (plus the RECON/PERF/JOB rule
#: families).  Findings are emitted in :attr:`Finding.sort_key` order, so a
#: report for an unchanged model diffs byte-identically across runs.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Finding:
    """One defect found by a static-analysis pass."""

    severity: str  # "error" | "warning" | "info"
    rule: str      # stable rule id, e.g. "ALT001"
    where: str     # location: "script:line:col", port path, rank, ...
    message: str
    hint: str = ""       # how to fix or suppress it
    source: str = ""     # which pass produced it, e.g. "alter-lint"

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(f"bad severity {self.severity!r}")

    @property
    def sort_key(self):
        return (SEVERITIES.index(self.severity), self.rule, self.where, self.message)

    def render(self) -> str:
        text = f"{self.severity}[{self.rule}] {self.where}: {self.message}"
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    @staticmethod
    def from_validation(issue: ValidationIssue) -> "Finding":
        """Fold a Designer :class:`ValidationIssue` into the shared type."""
        return Finding(
            severity=issue.severity,
            rule=getattr(issue, "rule", "MDL000"),
            where=issue.where,
            message=issue.message,
            source="model-validation",
        )


@dataclass
class AnalysisReport:
    """The aggregated output of the SAGE Verifier passes."""

    model_name: str = ""
    findings: List[Finding] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)

    # -- building -----------------------------------------------------------
    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding], source: str = "") -> None:
        for f in findings:
            if source and not f.source:
                f = Finding(f.severity, f.rule, f.where, f.message, f.hint, source)
            self.findings.append(f)

    def record_pass(self, name: str) -> None:
        if name not in self.passes_run:
            self.passes_run.append(name)

    def absorb_validation(self, issues: Iterable[ValidationIssue]) -> None:
        self.extend(Finding.from_validation(i) for i in issues)

    # -- queries ------------------------------------------------------------
    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.sorted() if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.sorted() if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no error-severity findings remain."""
        return not any(f.severity == "error" for f in self.findings)

    def sorted(self) -> List[Finding]:
        return sorted(self.findings, key=lambda f: f.sort_key)

    def by_rule(self) -> Dict[str, List[Finding]]:
        out: Dict[str, List[Finding]] = {}
        for f in self.sorted():
            out.setdefault(f.rule, []).append(f)
        return out

    def suppress(self, rules: Sequence[str]) -> "AnalysisReport":
        """A copy of this report with the given rule ids filtered out."""
        dropped = set(rules)
        return AnalysisReport(
            model_name=self.model_name,
            findings=[f for f in self.findings if f.rule not in dropped],
            passes_run=list(self.passes_run),
        )

    def raise_if_errors(self, exc_type=ValueError) -> None:
        errors = self.errors
        if errors:
            raise exc_type(
                f"static analysis of {self.model_name or '<model>'} found "
                f"{len(errors)} error(s):\n" + "\n".join(f.render() for f in errors)
            )

    # -- rendering ----------------------------------------------------------
    def render_text(self) -> str:
        lines = [
            f"SAGE Verifier report — {self.model_name or '<unnamed model>'}",
            f"passes: {', '.join(self.passes_run) or '(none)'}",
        ]
        ordered = self.sorted()
        if not ordered:
            lines.append("no findings: model is clean")
        for f in ordered:
            lines.append("  " + f.render())
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        lines.append(f"{n_err} error(s), {n_warn} warning(s), "
                     f"{len(ordered)} finding(s) total")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": SCHEMA_VERSION,
            "model": self.model_name,
            "passes": list(self.passes_run),
            "counts": {
                sev: sum(1 for f in self.findings if f.severity == sev)
                for sev in SEVERITIES
            },
            "ok": self.ok,
            "findings": [asdict(f) for f in self.sorted()],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
