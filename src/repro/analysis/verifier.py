"""The SAGE Verifier: run every static-analysis pass over a mapped model.

:func:`analyze_application` is the one entry point the CLI, the glue-code
generator's strict mode, and the CI ``analyze`` job all share.  It runs, in
order:

1. Designer model validation (``MDL0xx``),
2. the Alter linter over the glue scripts (``ALT0xx``),
3. the communication-schedule analyzer (``COMM0xx``),
4. the buffer-hazard detector (``BUF2xx``),

each isolated so one pass crashing (``ANA000``) never hides the others'
findings, and folds everything into a single
:class:`~repro.analysis.report.AnalysisReport`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..core.model.application import ApplicationModel, ModelError
from ..core.model.mapping import Mapping
from ..core.model.validation import validate_application
from .alter_lint import GLUE_GLOBALS, lint_script, script_defines
from .buffers import check_buffer_hazards, logical_buffer_specs
from .comm import check_comm_schedule, derive_comm_schedule
from .report import AnalysisReport, Finding

__all__ = ["analyze_application", "lint_glue_scripts"]


def lint_glue_scripts(
    extra_scripts: Optional[Sequence[Tuple[str, str]]] = None,
) -> List[Finding]:
    """Lint the standard glue scripts plus any user extensions, in sequence.

    Each script is linted with the generator-injected globals *and* the
    top-level defines of every earlier script visible, matching how the
    generator runs them in one shared interpreter.
    """
    from ..core.codegen.scripts import ALL_SCRIPTS

    findings: List[Finding] = []
    known: set = set(GLUE_GLOBALS)
    for name, source in list(ALL_SCRIPTS) + list(extra_scripts or []):
        findings.extend(lint_script(source, name, tuple(sorted(known))))
        known.update(script_defines(source))
    return findings


def analyze_application(
    app: ApplicationModel,
    mapping: Optional[Mapping] = None,
    nprocs: Optional[int] = None,
    memory_bytes: Optional[int] = None,
    extra_scripts: Optional[Sequence[Tuple[str, str]]] = None,
    suppress: Sequence[str] = (),
) -> AnalysisReport:
    """Run the full SAGE Verifier over a model; never raises on bad models.

    ``mapping`` and ``nprocs`` enable the communication-schedule pass and
    the per-processor parts of the buffer pass; ``memory_bytes`` (per-node
    DRAM, e.g. from a :mod:`~repro.machine.platforms` preset's CPU spec)
    enables the capacity rules.
    """
    report = AnalysisReport(model_name=app.name)

    def run_pass(name, fn):
        try:
            fn()
        except Exception as exc:  # isolate passes from one another
            report.add(
                Finding(
                    "error", "ANA000", f"{app.name}:{name}",
                    f"analysis pass crashed: {exc}",
                    "this is a verifier bug or a structurally broken model",
                    name,
                )
            )
        report.record_pass(name)

    def model_pass():
        report.absorb_validation(validate_application(app, strict=False))

    def lint_pass():
        report.extend(lint_glue_scripts(extra_scripts))

    def comm_pass():
        schedule = derive_comm_schedule(app, mapping, nprocs)
        report.extend(check_comm_schedule(schedule))

    def buffer_pass():
        specs = logical_buffer_specs(app)
        execution_order = None
        try:
            execution_order = [i.function_id for i in app.topological_order()]
        except ModelError:
            pass  # the model pass reports the cycle
        report.extend(
            check_buffer_hazards(
                specs,
                mapping=mapping,
                nprocs=nprocs,
                execution_order=execution_order,
                memory_bytes=memory_bytes,
            )
        )

    run_pass("model-validation", model_pass)
    run_pass("alter-lint", lint_pass)
    if mapping is not None and nprocs is not None:
        run_pass("comm-schedule", comm_pass)
    run_pass("buffer-hazards", buffer_pass)

    if suppress:
        report = report.suppress(list(suppress))
    return report
