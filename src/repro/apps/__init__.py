"""Benchmark applications: SAGE models and hand-coded baselines."""

from .workloads import MatrixProvider, matrix_workload
from .models import (
    benchmark_mapping,
    corner_turn_model,
    fft2d_model,
    fft2d_slack_model,
)
from .fft2d_hand import RankTimings, fft2d_rank
from .cornerturn_hand import corner_turn_rank

__all__ = [
    "MatrixProvider",
    "matrix_workload",
    "benchmark_mapping",
    "corner_turn_model",
    "fft2d_model",
    "fft2d_slack_model",
    "RankTimings",
    "fft2d_rank",
    "corner_turn_rank",
]
