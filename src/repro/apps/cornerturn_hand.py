"""Hand-coded distributed corner turn (the Table 1.0 baseline).

Row-block layout in, row-block layout of the transpose out: pack
pre-transposed tiles, exchange through the vendor's tuned all-to-all
(§3.1: each vendor shipped an ``MPI_All_to_All`` "tailored to their
respective hardware"), and stitch the received tiles.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.runtime.phantom import PhantomArray
from ..kernels.cornerturn import assemble_received_tiles, extract_send_tiles, row_block_bounds
from ..mpi.comm import Communicator
from .fft2d_hand import RankTimings
from .workloads import MatrixProvider

__all__ = ["corner_turn_rank"]


def corner_turn_rank(
    comm: Communicator,
    n: int,
    iterations: int = 1,
    provider: Optional[MatrixProvider] = None,
    alltoall_algorithm: str = "pairwise",
    execute_data: bool = True,
    keep_result: bool = False,
):
    """Rank program: returns a :class:`RankTimings`."""
    size, rank = comm.size, comm.rank
    if n % size:
        raise ValueError(f"matrix size {n} not divisible by {size} ranks")
    if execute_data and provider is None:
        raise ValueError("execute_data=True requires a workload provider")
    timings = RankTimings(rank=rank)
    bounds = row_block_bounds(n, size)
    my_rows = bounds[rank][1] - bounds[rank][0]
    elem_bytes = 8  # complex64

    for k in range(iterations):
        if execute_data:
            local = provider.block(k, rank, size)
        else:
            local = PhantomArray((my_rows, n), "complex64")
        timings.starts.append(comm.now)

        # Pack: pre-transposed tiles (one pass over the local block).
        yield from comm.copy(my_rows * n * elem_bytes)
        if execute_data:
            tiles = extract_send_tiles(np.asarray(local), size)
        else:
            tiles = [
                PhantomArray((b - a, my_rows), "complex64") for a, b in bounds
            ]
        received = yield from comm.alltoall(tiles, algorithm=alltoall_algorithm)

        # Unpack: concatenate tiles into this rank's block of the transpose.
        yield from comm.copy(my_rows * n * elem_bytes)
        if execute_data:
            local = assemble_received_tiles([np.asarray(t) for t in received], n)
        else:
            local = PhantomArray((my_rows, n), "complex64")

        timings.finishes.append(comm.now)
        if keep_result and k == iterations - 1:
            timings.final_block = local
    return timings
