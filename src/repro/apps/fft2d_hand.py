"""Hand-coded parallel 2D FFT (the Table 1.0 baseline).

This is the rank program a CSPI engineer would write directly against the
vendor MPI + ISSPL libraries: row-block layout, local row FFTs, a packed
all-to-all corner turn through the vendor's tuned algorithm, local column
FFTs.  No function-table dispatch, no logical-buffer staging — the overheads
the SAGE run-time pays are exactly what this program avoids.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.runtime.phantom import PhantomArray
from ..kernels.cornerturn import row_block_bounds
from ..kernels.fft import fft_rows
from ..machine.perfmodel import fft_flops
from ..mpi.comm import Communicator
from .workloads import MatrixProvider

__all__ = ["fft2d_rank", "RankTimings"]


@dataclass
class RankTimings:
    """Per-rank start/finish instants per iteration, plus final data."""

    rank: int
    starts: List[float] = field(default_factory=list)
    finishes: List[float] = field(default_factory=list)
    final_block: Optional[object] = None


def fft2d_rank(
    comm: Communicator,
    n: int,
    iterations: int = 1,
    provider: Optional[MatrixProvider] = None,
    alltoall_algorithm: str = "pairwise",
    fft_backend: str = "own",
    execute_data: bool = True,
    keep_result: bool = False,
):
    """Rank program: returns a :class:`RankTimings` (use with ``MpiWorld.spawn``)."""
    size, rank = comm.size, comm.rank
    if n % size:
        raise ValueError(f"matrix size {n} not divisible by {size} ranks")
    if execute_data and provider is None:
        raise ValueError("execute_data=True requires a workload provider")
    timings = RankTimings(rank=rank)
    bounds = row_block_bounds(n, size)
    my_rows = bounds[rank][1] - bounds[rank][0]
    elem_bytes = 8  # complex64

    for k in range(iterations):
        # --- data set arrives in local memory (DMA-in) -----------------------
        if execute_data:
            local = provider.block(k, rank, size)
        else:
            local = PhantomArray((my_rows, n), "complex64")
        timings.starts.append(comm.now)

        # --- local row FFTs ----------------------------------------------------
        yield from comm.compute(my_rows * fft_flops(n))
        if execute_data:
            local = fft_rows(np.asarray(local), backend=fft_backend).astype("complex64")

        # --- corner turn: pack column tiles, vendor all-to-all, unpack --------
        # Pack: one pass over the local block to build contiguous send tiles.
        yield from comm.copy(my_rows * n * elem_bytes)
        if execute_data:
            tiles = [
                np.ascontiguousarray(local[:, a:b]) for a, b in bounds
            ]
        else:
            tiles = [
                PhantomArray((my_rows, b - a), "complex64") for a, b in bounds
            ]
        received = yield from comm.alltoall(tiles, algorithm=alltoall_algorithm)
        # Unpack: stack received row strips into this rank's column block.
        yield from comm.copy(n * my_rows * elem_bytes)
        if execute_data:
            local = np.ascontiguousarray(np.vstack([np.asarray(t) for t in received]))
        else:
            local = PhantomArray((n, my_rows), "complex64")

        # --- local column FFTs -------------------------------------------------
        yield from comm.compute(my_rows * fft_flops(n))
        if execute_data:
            local = (
                fft_rows(np.ascontiguousarray(np.asarray(local).T), backend=fft_backend)
                .T.astype("complex64")
            )
            local = np.ascontiguousarray(local)

        timings.finishes.append(comm.now)
        if keep_result and k == iterations - 1:
            timings.final_block = local
    return timings
