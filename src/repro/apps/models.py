"""SAGE application models for the two Table 1.0 benchmarks.

Both models use the distributed-source / distributed-sink structure of the
MITRE benchmark kit: each compute node's memory already holds its row block
(sensor DMA-in), and each node emits its block of the result (DMA-out), so
the measured latency is dominated by the kernels and the corner-turn
exchange rather than by a host-node scatter/gather.

The corner turn appears purely as a *striping relationship*: an arc whose
source port is striped on axis 0 and whose destination port is striped on
axis 1 forces the run-time to perform the all-to-all tile exchange.
"""

from __future__ import annotations


from ..core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    Mapping,
    round_robin_mapping,
    striped,
)

__all__ = [
    "fft2d_model",
    "fft2d_slack_model",
    "corner_turn_model",
    "benchmark_mapping",
]


def _matrix_type(n: int) -> DataType:
    return DataType(f"cfloat_matrix_{n}", "complex64", (n, n))


def fft2d_model(n: int, nodes: int, seed: int = 1234) -> ApplicationModel:
    """Parallel 2D FFT: row FFTs -> corner turn -> column FFTs.

    ``src(out striped0) -> rowfft(striped0 -> striped0)
    -> colfft(striped1 -> striped1) -> sink(striped1)``

    The rowfft->colfft arc changes stripe axis: that is the distributed
    corner turn embedded in the 2D FFT.
    """
    _check(n, nodes)
    t = _matrix_type(n)
    app = ApplicationModel(f"fft2d_{n}x{n}_{nodes}n")
    src = app.add_block(
        FunctionBlock("src", kernel="matrix_source", threads=nodes,
                      params={"n": n, "seed": seed})
    )
    src.add_out("out", t, striped(0))
    rowfft = app.add_block(FunctionBlock("rowfft", kernel="fft_rows", threads=nodes))
    rowfft.add_in("in", t, striped(0))
    rowfft.add_out("out", t, striped(0))
    colfft = app.add_block(FunctionBlock("colfft", kernel="fft_cols", threads=nodes))
    colfft.add_in("in", t, striped(1))
    colfft.add_out("out", t, striped(1))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=nodes))
    sink.add_in("in", t, striped(1))
    app.connect(src.port("out"), rowfft.port("in"))
    app.connect(rowfft.port("out"), colfft.port("in"))
    app.connect(colfft.port("out"), sink.port("in"))
    return app


def fft2d_slack_model(n: int = 56, threads: int = 28,
                      seed: int = 1234) -> ApplicationModel:
    """The fft2d pipeline with striping *slack*: more threads than nodes.

    Same four-block structure as :func:`fft2d_model`, but the thread count
    is decoupled from the node count and the matrix size need not be a
    power of two (the analytic FFT cost model is size-generic; only the
    Table 1.0 benchmarks pin power-of-two sizes for fidelity to the kit).

    The point of the slack is gray-failure recovery quality: with exactly
    one thread per node, draining a straggler forces some survivor to run
    two full stripes (a 2x stage-time penalty), whereas e.g. 28 threads on
    8 nodes stripe as 4,4,4,4,3,3,3,3 — a balanced drain of a 4-thread
    node re-deals its orphans onto the 3-thread nodes and steady-state
    throughput is unchanged.  This is the R4 gray-failure workload.
    """
    if n <= 0 or threads <= 0:
        raise ValueError("matrix size and thread count must be positive")
    if n % threads:
        raise ValueError(
            f"matrix size {n} must divide evenly over {threads} threads"
        )
    t = _matrix_type(n)
    app = ApplicationModel(f"gray_fft2d_{n}x{n}_{threads}t")
    src = app.add_block(
        FunctionBlock("src", kernel="matrix_source", threads=threads,
                      params={"n": n, "seed": seed})
    )
    src.add_out("out", t, striped(0))
    rowfft = app.add_block(FunctionBlock("rowfft", kernel="fft_rows", threads=threads))
    rowfft.add_in("in", t, striped(0))
    rowfft.add_out("out", t, striped(0))
    colfft = app.add_block(FunctionBlock("colfft", kernel="fft_cols", threads=threads))
    colfft.add_in("in", t, striped(1))
    colfft.add_out("out", t, striped(1))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=threads))
    sink.add_in("in", t, striped(1))
    app.connect(src.port("out"), rowfft.port("in"))
    app.connect(rowfft.port("out"), colfft.port("in"))
    app.connect(colfft.port("out"), sink.port("in"))
    return app


def corner_turn_model(n: int, nodes: int, seed: int = 1234) -> ApplicationModel:
    """Distributed corner turn: row-block matrix -> row-block transpose.

    ``src(out striped0) -> turn(in striped1, out striped0) -> sink(striped0)``

    The src->turn arc is the all-to-all; ``block_transpose`` locally
    transposes each received column block into the corresponding row block
    of the transposed matrix.
    """
    _check(n, nodes)
    t = _matrix_type(n)
    app = ApplicationModel(f"cornerturn_{n}x{n}_{nodes}n")
    src = app.add_block(
        FunctionBlock("src", kernel="matrix_source", threads=nodes,
                      params={"n": n, "seed": seed})
    )
    src.add_out("out", t, striped(0))
    turn = app.add_block(FunctionBlock("turn", kernel="block_transpose", threads=nodes))
    turn.add_in("in", t, striped(1))
    turn.add_out("out", t, striped(0))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=nodes))
    sink.add_in("in", t, striped(0))
    app.connect(src.port("out"), turn.port("in"))
    app.connect(turn.port("out"), sink.port("in"))
    return app


def benchmark_mapping(app: ApplicationModel, nodes: int) -> Mapping:
    """The benchmark layout: thread t of every function on processor t."""
    return round_robin_mapping(app, nodes)


def _check(n: int, nodes: int) -> None:
    if n <= 0 or n & (n - 1):
        raise ValueError(f"matrix size must be a power of two, got {n}")
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    if n % nodes:
        raise ValueError(f"matrix size {n} must divide evenly over {nodes} nodes")
