"""Benchmark workload generators.

§3.1: the benchmarks run on a 1024x1024 data matrix (with 256 and 512 sweeps
in Table 1.0), complex single-precision as in the MITRE/Rome Laboratories
kit.  Generation is deterministic per (seed, iteration) so hand-coded and
SAGE runs consume bit-identical inputs.
"""

from __future__ import annotations


import numpy as np

from ..core.runtime.phantom import PhantomArray
from ..kernels.cornerturn import row_block_bounds

__all__ = ["matrix_workload", "MatrixProvider"]


def matrix_workload(n: int, iteration: int = 0, seed: int = 1234) -> np.ndarray:
    """The iteration-``k`` input matrix: deterministic complex64 noise."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(np.random.SeedSequence([seed, iteration]))
    re = rng.standard_normal((n, n), dtype=np.float32)
    im = rng.standard_normal((n, n), dtype=np.float32)
    return (re + 1j * im).astype(np.complex64)


class MatrixProvider:
    """Callable input provider with caching and per-rank block access."""

    def __init__(self, n: int, seed: int = 1234, phantom: bool = False):
        self.n = n
        self.seed = seed
        self.phantom = phantom
        self._cache: dict = {}

    def __call__(self, iteration: int) -> np.ndarray:
        """Full matrix for iteration ``iteration`` (the SAGE source hook)."""
        if self.phantom:
            return PhantomArray((self.n, self.n), "complex64")
        if iteration not in self._cache:
            self._cache[iteration] = matrix_workload(self.n, iteration, self.seed)
        return self._cache[iteration]

    def block(self, iteration: int, rank: int, size: int):
        """Rank ``rank``'s row block (what a hand-coded rank generates locally)."""
        a, b = row_block_bounds(self.n, size)[rank]
        if self.phantom:
            return PhantomArray((b - a, self.n), "complex64")
        return np.ascontiguousarray(self(iteration)[a:b])
