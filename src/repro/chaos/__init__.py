"""Randomized chaos-soak harness for the SAGE runtime.

ROADMAP north star: the runtime "handles as many scenarios as you can
imagine".  This package stops imagining scenarios one at a time and
*generates* them: a seeded random schedule generator draws faults from the
full taxonomy the machine layer can inject (crash / hang / slow / degrade /
jitter / flap / loss / corruption / join), the soak runner executes each
schedule under every fault policy, and the invariant checker verifies what
must hold regardless of what was injected:

* **result integrity** — a run that completes produces results bitwise
  identical to the fault-free run (recovery may cost time, never data);
* **sanctioned failure** — a run may abort only when the schedule contains
  a fault class the policy does not claim to survive, and only with a
  legible fault/transport error;
* **no wedged processes** — after the run, the event queue drains to empty
  (nothing spins or waits forever);
* **no leaked Resource slots** — every CPU slot acquired was released, and
  no requester is still queued;
* **probe-stream consistency** — the trace is well-formed: monotone
  timestamps, exits never outnumber enters, arrivals never outnumber
  sends, one sink record per completed iteration.

``python -m repro chaos --seed S --schedules N --policy P`` runs the soak
from the command line; see :mod:`repro.chaos.soak`.
"""

from .schedule import CHAOS_KINDS, ChaosSchedule, generate_schedule
from .invariants import (
    IDENTICAL,
    MAY_ABORT,
    Violation,
    check_probe_stream,
    check_quiescent,
    check_results,
    expected_outcome,
)
from .soak import SOAK_POLICIES, ScheduleOutcome, format_soak, run_schedule, soak, main

__all__ = [
    "CHAOS_KINDS",
    "ChaosSchedule",
    "generate_schedule",
    "IDENTICAL",
    "MAY_ABORT",
    "Violation",
    "check_probe_stream",
    "check_quiescent",
    "check_results",
    "expected_outcome",
    "SOAK_POLICIES",
    "ScheduleOutcome",
    "run_schedule",
    "soak",
    "format_soak",
    "main",
]
