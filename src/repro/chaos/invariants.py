"""Invariant checking for chaos-soak runs.

The checker answers two questions about a run that executed under a
:class:`~repro.chaos.schedule.ChaosSchedule`:

1. *Was the outcome sanctioned?*  :func:`expected_outcome` maps a schedule
   and a fault policy to :data:`IDENTICAL` (the run must complete with
   results bitwise identical to the fault-free run) or :data:`MAY_ABORT`
   (the schedule contains a fault class the policy does not claim to
   survive, so a legible :class:`~repro.machine.faults.FaultError` /
   :class:`~repro.core.runtime.policy.TransportError` abort is also
   acceptable — but a *completed* run must still be bitwise identical:
   recovery may cost time, never data).

2. *Did the machinery stay clean?*  Regardless of outcome, the simulator
   must quiesce (no wedged processes), every Resource slot must be
   released, and the probe stream must be self-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.runtime.kernel import RunResult
from ..core.runtime.policy import FaultPolicy
from ..core.runtime.probes import Trace
from ..machine.cluster import SimCluster
from ..machine.simulator import Environment
from .schedule import ChaosSchedule

__all__ = [
    "IDENTICAL",
    "MAY_ABORT",
    "Violation",
    "expected_outcome",
    "check_quiescent",
    "check_results",
    "check_probe_stream",
]

IDENTICAL = "identical"
MAY_ABORT = "may_abort"

#: Safety margin when draining stragglers out of the event queue after a
#: run: generous for any trailing hang/flap timers, small enough that a
#: genuinely wedged process (infinite self-rescheduling) is caught.
_DRAIN_STEP_LIMIT = 500_000


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which check failed and the evidence."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


def expected_outcome(schedule: ChaosSchedule, policy: FaultPolicy) -> str:
    """What the policy promises for this schedule's fault classes.

    The mapping mirrors the policy capability matrix (``docs/FAULTS.md``):
    crashes need checkpoints; *permanent* crashes (with or without a later
    replacement) additionally need shrinking recovery; message loss and
    corruption need transfer retries; a flap whose down-phase fully drops
    the link raises in-flight :class:`LinkFailure` and needs retries or
    replay.  Everything else — limps, jitter, degrades, hangs, soft flaps —
    only costs time and must be survived by *every* policy.
    """
    kinds = set(schedule.kinds)
    if "crash" in kinds or "join" in kinds:
        if not policy.checkpoints:
            return MAY_ABORT
    if (schedule.permanent_crash or "join" in kinds) and not policy.shrinks:
        return MAY_ABORT
    if kinds & {"loss", "corruption"} and not policy.retries_transfers:
        return MAY_ABORT
    if schedule.hard_flap and not (policy.retries_transfers or policy.checkpoints):
        return MAY_ABORT
    return IDENTICAL


def check_quiescent(
    env: Environment,
    cluster: SimCluster,
    strict_faults: bool = True,
) -> List[Violation]:
    """Drain the post-run event queue; report wedges and leaked slots.

    After :meth:`SageRuntime.run` returns (detector stopped), only finite
    timers may remain — trailing fault-schedule actions, hang releases,
    retry sleeps.  Stepping the simulator must therefore reach an empty
    queue in bounded work, and once quiet every node CPU must be idle with
    nobody queued: a held slot means an exception path skipped a
    ``release()``; a queued requester is a process waiting forever.

    ``strict_faults=False`` (used after a *sanctioned abort*) tolerates
    :class:`FaultError` escaping stranded processes during the drain: once
    the run has fail-stopped, sibling processes touching the dead node die
    of the same injected fault — teardown, not a wedge.  A completed run
    gets no such grace.
    """
    from ..machine.faults import FaultError

    out: List[Violation] = []
    steps = 0
    while env._imm0 or env._imm1 or env._queue:
        if steps >= _DRAIN_STEP_LIMIT:
            out.append(Violation(
                "no_wedged_processes",
                f"event queue still busy after {steps} drain steps "
                f"({len(env._queue)} heap entries pending)",
            ))
            return out
        try:
            env.step()
        except FaultError as exc:
            if strict_faults:
                out.append(Violation(
                    "no_wedged_processes",
                    f"drain step raised {type(exc).__name__}: {exc}",
                ))
                return out
        except Exception as exc:  # a stranded process died uncleanly
            out.append(Violation(
                "no_wedged_processes",
                f"drain step raised {type(exc).__name__}: {exc}",
            ))
            return out
        steps += 1
    for node in cluster.nodes:
        if node.cpu.count:
            out.append(Violation(
                "no_leaked_slots",
                f"node {node.index}: {node.cpu.count} CPU slot(s) still held "
                "after quiesce",
            ))
        if node.cpu.queue_length:
            out.append(Violation(
                "no_leaked_slots",
                f"node {node.index}: {node.cpu.queue_length} requester(s) "
                "still queued on the CPU after quiesce",
            ))
    return out


def check_results(result: RunResult, baseline: RunResult) -> List[Violation]:
    """A completed run's data must be bitwise identical to the clean run."""
    out: List[Violation] = []
    if result.iterations != baseline.iterations:
        out.append(Violation(
            "bitwise_identical",
            f"iteration count {result.iterations} != baseline "
            f"{baseline.iterations}",
        ))
        return out
    for k in range(result.iterations):
        got = result.full_result(k)
        want = baseline.full_result(k)
        if (got is None) != (want is None):
            out.append(Violation(
                "bitwise_identical",
                f"iteration {k}: result presence differs from baseline",
            ))
        elif got is not None and not (
            got.dtype == want.dtype
            and got.shape == want.shape
            and np.array_equal(got, want)
        ):
            out.append(Violation(
                "bitwise_identical",
                f"iteration {k}: result differs from fault-free run",
            ))
    return out


def check_probe_stream(
    trace: Trace,
    processors: int,
    completed_iterations: Optional[int] = None,
) -> List[Violation]:
    """Structural well-formedness of the probe stream.

    Holds for aborted runs too: timestamps never decrease (the trace is
    appended in event order), a (function, thread, iteration) never exits
    more often than it entered (replays re-enter; nothing exits twice per
    entry), arrivals never outnumber sends (losses drop arrivals, retries
    add sends), and — when the run completed — the sink fired at least once
    per iteration (a replay whose prior attempt faulted *after* the sink
    records the sink again, so duplicates are legitimate).
    """
    out: List[Violation] = []
    last = float("-inf")
    enters: dict = {}
    exits: dict = {}
    sends = 0
    arrives = 0
    sinks: dict = {}
    for e in trace:
        if e.time < last:
            out.append(Violation(
                "probe_stream",
                f"timestamp went backwards at {e.kind} "
                f"({e.time:.9f} < {last:.9f})",
            ))
        last = e.time
        key = (e.function_id, e.thread, e.iteration)
        if e.kind == "enter":
            enters[key] = enters.get(key, 0) + 1
        elif e.kind == "exit":
            exits[key] = exits.get(key, 0) + 1
        elif e.kind == "send":
            sends += 1
        elif e.kind == "arrive":
            arrives += 1
        elif e.kind == "sink":
            sinks[e.iteration] = sinks.get(e.iteration, 0) + 1
        if e.processor >= processors:
            out.append(Violation(
                "probe_stream",
                f"{e.kind} names processor {e.processor} but the cluster "
                f"has {processors}",
            ))
    for key, n_exit in exits.items():
        if n_exit > enters.get(key, 0):
            out.append(Violation(
                "probe_stream",
                f"function {key[0]} thread {key[1]} iteration {key[2]}: "
                f"{n_exit} exit(s) vs {enters.get(key, 0)} enter(s)",
            ))
    if arrives > sends:
        out.append(Violation(
            "probe_stream", f"{arrives} arrivals vs {sends} sends",
        ))
    if completed_iterations is not None:
        for k in range(completed_iterations):
            if not sinks.get(k, 0):
                out.append(Violation(
                    "probe_stream",
                    f"iteration {k}: no sink record for a completed run",
                ))
    return out
