"""Seeded random fault-schedule generation over the full taxonomy.

A :class:`ChaosSchedule` is pure data: a :class:`~repro.machine.faults.FaultPlan`
plus the taxonomy tags needed by the invariant checker to decide what a
given fault policy is *expected* to do with it.  Generation is a pure
function of ``(seed, nodes, horizon, kinds)`` — the same arguments always
produce the same schedule, so any soak failure is replayable from its seed
alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..machine.faults import FaultPlan

__all__ = ["CHAOS_KINDS", "ChaosSchedule", "generate_schedule"]

#: The full injectable taxonomy, one tag per machine-layer primitive.
#: ``join`` is the replacement lifecycle: a permanent crash followed by
#: same-slot replacement hardware powering on.
CHAOS_KINDS = (
    "crash", "hang", "slow", "degrade", "jitter", "flap",
    "loss", "corruption", "join",
)


@dataclass(frozen=True)
class ChaosSchedule:
    """One generated fault schedule plus the tags the checker needs."""

    seed: int
    nodes: int
    horizon: float
    kinds: Tuple[str, ...]          # taxonomy tags drawn, in draw order
    plan: FaultPlan
    permanent_crash: bool = False   # a permanent crash with no replacement
    hard_flap: bool = False         # a flap whose down-phase fully drops the link

    def describe(self) -> str:
        tags = ",".join(self.kinds) or "empty"
        return f"schedule(seed={self.seed}, {tags})"


def _pick_node(rng: random.Random, nodes: int) -> int:
    """A fault-target node.  Rank 0 is spared from crash-class faults: it
    hosts the detector coordinator and the source/sink thread 0, which the
    membership protocol (like the paper's host runtime) treats as the
    fixed point of the cluster."""
    return rng.randrange(1, nodes)


def _pick_link(rng: random.Random, nodes: int) -> Tuple[int, int]:
    a = rng.randrange(nodes)
    b = rng.randrange(nodes - 1)
    if b >= a:
        b += 1
    return a, b


def generate_schedule(
    seed: int,
    nodes: int,
    horizon: float,
    kinds: Optional[Sequence[str]] = None,
    min_events: int = 1,
    max_events: int = 3,
) -> ChaosSchedule:
    """Draw a random fault schedule for a run of roughly ``horizon`` seconds.

    ``kinds`` restricts the taxonomy (default: all of :data:`CHAOS_KINDS`);
    between ``min_events`` and ``max_events`` tags are drawn with
    replacement, so one schedule can, e.g., limp a node *and* flap a link
    while losing messages.  All times and magnitudes are scaled to
    ``horizon`` so the schedule lands inside the run regardless of the
    workload's absolute speed.
    """
    if nodes < 2:
        raise ValueError("chaos schedules need at least 2 nodes")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if not (1 <= min_events <= max_events):
        raise ValueError("need 1 <= min_events <= max_events")
    pool = tuple(kinds) if kinds is not None else CHAOS_KINDS
    for k in pool:
        if k not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {k!r}")
    rng = random.Random(seed)
    plan = FaultPlan(seed=seed)
    count = rng.randint(min_events, max_events)
    drawn = tuple(rng.choice(pool) for _ in range(count))
    permanent_crash = False
    hard_flap = False
    for kind in drawn:
        at = horizon * rng.uniform(0.10, 0.70)
        if kind == "crash":
            permanent = rng.random() < 0.3
            plan.crash_node(_pick_node(rng, nodes), at=at, permanent=permanent)
            permanent_crash = permanent_crash or permanent
        elif kind == "hang":
            plan.hang_node(_pick_node(rng, nodes), at=at,
                           duration=horizon * rng.uniform(0.02, 0.15))
        elif kind == "slow":
            duration = (None if rng.random() < 0.3
                        else horizon * rng.uniform(0.2, 0.6))
            plan.slow_node(_pick_node(rng, nodes), at=at,
                           factor=rng.uniform(0.15, 0.6), duration=duration)
        elif kind == "degrade":
            a, b = _pick_link(rng, nodes)
            plan.degrade_link(a, b, at=at, factor=rng.uniform(0.1, 0.8),
                              duration=horizon * rng.uniform(0.2, 0.6))
        elif kind == "jitter":
            a, b = _pick_link(rng, nodes)
            plan.jitter_link(a, b, at=at,
                             sigma=horizon * rng.uniform(5e-4, 5e-3),
                             duration=horizon * rng.uniform(0.2, 0.6))
        elif kind == "flap":
            a, b = _pick_link(rng, nodes)
            hard = rng.random() < 0.5
            plan.flap_link(a, b, at=at,
                           period=horizon * rng.uniform(0.05, 0.20),
                           factor=0.0 if hard else rng.uniform(0.2, 0.8),
                           cycles=rng.randint(2, 4))
            hard_flap = hard_flap or hard
        elif kind == "loss":
            plan.message_loss(rng.uniform(0.01, 0.08))
        elif kind == "corruption":
            plan.message_corruption(rng.uniform(0.01, 0.05))
        elif kind == "join":
            node = _pick_node(rng, nodes)
            plan.crash_node(node, at=at, permanent=True)
            plan.join_node(node, at=horizon * rng.uniform(0.75, 0.95))
    return ChaosSchedule(
        seed=seed, nodes=nodes, horizon=horizon, kinds=drawn, plan=plan,
        permanent_crash=permanent_crash, hard_flap=hard_flap,
    )
