"""The chaos-soak runner: schedules x policies, invariants checked.

One soak generates ``--schedules`` seeded schedules (seeds ``S, S+1, ...``)
and executes each under every selected fault policy against a small
numeric corner-turn workload (real data, so the bitwise-identity invariant
has bytes to compare).  The fault-free baseline run supplies both the
reference results and the horizon the schedules are scaled to.

Run: ``python -m repro chaos [--seed S] [--schedules N] [--policy P]
[--nodes K] [--size N]``; exits non-zero if any invariant is violated.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..apps import MatrixProvider, benchmark_mapping, corner_turn_model
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..core.runtime.kernel import RunResult, RuntimeError_
from ..core.runtime.policy import TransportError, FaultPolicy
from ..machine import Environment, SimCluster, get_platform
from ..machine.faults import FaultError, FaultPlan
from .invariants import (
    IDENTICAL,
    Violation,
    check_probe_stream,
    check_quiescent,
    check_results,
    expected_outcome,
)
from .schedule import CHAOS_KINDS, ChaosSchedule, generate_schedule

__all__ = [
    "SOAK_POLICIES",
    "ScheduleOutcome",
    "run_schedule",
    "soak",
    "format_soak",
    "main",
]

#: Policy factories for the soak sweep.  Retry/restart budgets are sized so
#: a schedule a policy *claims* to survive actually can (e.g. a 4-cycle
#: hard flap can burn one replay per down-phase).
SOAK_POLICIES: Dict[str, Callable[[], FaultPolicy]] = {
    "fail_fast": FaultPolicy.fail_fast,
    "retry": lambda: FaultPolicy.retry(max_retries=5),
    "checkpoint_restart": lambda: FaultPolicy.checkpoint_restart(
        max_restarts=8, max_retries=4),
    "shrink_restripe": lambda: FaultPolicy.shrink_restripe(
        max_restarts=8, max_retries=4),
    "grow_restripe": lambda: FaultPolicy.grow_restripe(
        max_restarts=8, max_retries=4),
    "migrate_stragglers": lambda: FaultPolicy.migrate_stragglers(
        max_restarts=8, max_retries=4, backoff_jitter=0.25),
}


@dataclass
class ScheduleOutcome:
    """One (schedule, policy) soak cell."""

    schedule: ChaosSchedule
    policy: str
    expectation: str            # IDENTICAL or MAY_ABORT
    completed: bool
    aborted_with: str = ""      # exception repr when not completed
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def _build_runtime(
    n: int, nodes: int, plan: Optional[FaultPlan], policy: FaultPolicy
) -> SageRuntime:
    app = corner_turn_model(n, nodes)
    glue = generate_glue(app, benchmark_mapping(app, nodes),
                         num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes,
                                       fault_plan=plan)
    return SageRuntime(glue, cluster, config=DEFAULT_CONFIG,
                       fault_policy=policy)


def run_baseline(n: int = 16, nodes: int = 2, iterations: int = 3) -> RunResult:
    """The fault-free reference run (fail_fast — no recovery machinery)."""
    runtime = _build_runtime(n, nodes, None, FaultPolicy.fail_fast())
    return runtime.run(iterations=iterations, input_provider=MatrixProvider(n))


def run_schedule(
    schedule: ChaosSchedule,
    policy_name: str,
    baseline: RunResult,
    n: int = 16,
    iterations: int = 3,
) -> ScheduleOutcome:
    """Execute one schedule under one policy and check every invariant."""
    policy = SOAK_POLICIES[policy_name]()
    expectation = expected_outcome(schedule, policy)
    runtime = _build_runtime(n, schedule.nodes, schedule.plan, policy)
    violations: List[Violation] = []
    completed = False
    aborted_with = ""
    try:
        result = runtime.run(iterations=iterations,
                             input_provider=MatrixProvider(n))
        completed = True
    except (FaultError, TransportError, RuntimeError_) as exc:
        # RuntimeError_ is the kernel's legible surrender ("cannot recover
        # iteration k: ... failed permanently" / replay budget exhausted) —
        # sanctioned exactly like a first-fault abort.
        aborted_with = f"{type(exc).__name__}: {exc}"
        if expectation == IDENTICAL:
            violations.append(Violation(
                "sanctioned_failure",
                f"policy {policy_name} should survive "
                f"{schedule.describe()} but aborted: {aborted_with}",
            ))
    except Exception as exc:  # an illegible crash is always a violation
        aborted_with = f"{type(exc).__name__}: {exc}"
        violations.append(Violation(
            "sanctioned_failure",
            f"non-fault exception escaped the runtime: {aborted_with}",
        ))
    violations.extend(check_quiescent(runtime.env, runtime.cluster,
                                      strict_faults=completed))
    violations.extend(check_probe_stream(
        runtime.trace,
        processors=len(runtime.cluster),
        completed_iterations=iterations if completed else None,
    ))
    if completed:
        violations.extend(check_results(result, baseline))
    return ScheduleOutcome(
        schedule=schedule, policy=policy_name, expectation=expectation,
        completed=completed, aborted_with=aborted_with,
        violations=violations,
    )


def soak(
    seed: int = 1,
    schedules: int = 20,
    policies: Optional[Sequence[str]] = None,
    n: int = 16,
    nodes: int = 2,
    iterations: int = 3,
    kinds: Optional[Sequence[str]] = None,
) -> List[ScheduleOutcome]:
    """Run the full soak matrix and return every (schedule, policy) cell."""
    names = list(policies) if policies else list(SOAK_POLICIES)
    for name in names:
        if name not in SOAK_POLICIES:
            raise ValueError(
                f"unknown policy {name!r}; choose from {sorted(SOAK_POLICIES)}"
            )
    baseline = run_baseline(n, nodes, iterations)
    horizon = baseline.makespan
    outcomes: List[ScheduleOutcome] = []
    for i in range(schedules):
        schedule = generate_schedule(seed + i, nodes, horizon, kinds=kinds)
        for name in names:
            outcomes.append(run_schedule(schedule, name, baseline,
                                         n=n, iterations=iterations))
    return outcomes


def format_soak(outcomes: List[ScheduleOutcome]) -> str:
    """Human-readable soak report: the matrix, then any violations."""
    schedules = sorted({o.schedule.seed for o in outcomes})
    policies = list(dict.fromkeys(o.policy for o in outcomes))
    lines = [
        f"Chaos soak: {len(schedules)} schedule(s) x {len(policies)} "
        f"policy(ies) = {len(outcomes)} run(s)",
        "",
        f"{'seed':>6s}  {'faults':<34s}" + "".join(
            f"{p[:12]:>14s}" for p in policies),
    ]
    by_cell = {(o.schedule.seed, o.policy): o for o in outcomes}
    for s in schedules:
        sched = next(o.schedule for o in outcomes if o.schedule.seed == s)
        cells = []
        for p in policies:
            o = by_cell[(s, p)]
            mark = "ok" if o.completed else "abort"
            if o.violations:
                mark = "FAIL"
            cells.append(f"{mark:>14s}")
        lines.append(f"{s:>6d}  {','.join(sched.kinds):<34s}" + "".join(cells))
    kinds_seen = sorted({k for o in outcomes for k in o.schedule.kinds})
    lines += [
        "",
        f"taxonomy covered: {', '.join(kinds_seen)}",
        "(ok = completed with bitwise-identical results; abort = sanctioned "
        "fail-stop for a fault class the policy does not claim to survive)",
    ]
    bad = [o for o in outcomes if o.violations]
    if bad:
        lines.append("")
        lines.append(f"INVARIANT VIOLATIONS ({len(bad)} run(s)):")
        for o in bad:
            lines.append(f"  {o.schedule.describe()} under {o.policy}:")
            for v in o.violations:
                lines.append(f"    - {v}")
    else:
        lines.append("all invariants held.")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="first schedule seed (default 1)")
    parser.add_argument("--schedules", type=int, default=20,
                        help="number of seeded schedules (default 20)")
    parser.add_argument("--policy", action="append",
                        choices=sorted(SOAK_POLICIES),
                        help="policy to soak (repeatable; default: all)")
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--size", type=int, default=16,
                        help="corner-turn matrix size (default 16)")
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--kinds",
                        help="comma-separated taxonomy subset, e.g. slow,flap"
                             f" (default: all of {','.join(CHAOS_KINDS)})")
    parser.add_argument("-o", "--output",
                        help="also write the report to this file")
    args = parser.parse_args(argv)

    kinds = ([k.strip() for k in args.kinds.split(",") if k.strip()]
             if args.kinds else None)
    outcomes = soak(
        seed=args.seed, schedules=args.schedules, policies=args.policy,
        n=args.size, nodes=args.nodes, iterations=args.iterations,
        kinds=kinds,
    )
    text = format_soak(outcomes)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 1 if any(o.violations for o in outcomes) else 0


if __name__ == "__main__":
    raise SystemExit(main())
