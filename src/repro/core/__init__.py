"""SAGE core: Designer model, Alter language, codegen, run-time, AToT, Visualizer."""

from . import alter, atot, codegen, model, runtime, visualizer

__all__ = ["alter", "atot", "codegen", "model", "runtime", "visualizer"]
