"""The Alter language: lexer, reader, evaluator, and SAGE model builtins."""

from .errors import AlterError, AlterRuntimeError, AlterSyntaxError
from .lexer import Token, tokenize
from .parser import Symbol, parse, parse_one, parse_with_locations, to_source
from .interpreter import Environment, Interpreter, Lambda

__all__ = [
    "AlterError",
    "AlterRuntimeError",
    "AlterSyntaxError",
    "Token",
    "tokenize",
    "Symbol",
    "parse",
    "parse_one",
    "parse_with_locations",
    "to_source",
    "Environment",
    "Interpreter",
    "Lambda",
]
