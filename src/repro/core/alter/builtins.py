"""Alter standard library: traditional builtins plus the SAGE model-access calls.

§2: Alter is *"designed to enable the tool developer to traverse the objects
and arc connections in a model, collect the relevant information from the
various attributes and properties, and then output the information in a
particular format"*.  Three groups of builtins implement that charter:

* the usual Lisp kit (arithmetic, lists, strings, higher-order functions),
* model access (``object-name``, ``get-property``, ``function-instances``,
  ``flattened-arcs``, port and mapping accessors), and
* emission (``emit`` / ``emit-line`` / ``py-repr``), which is how glue source
  text leaves the interpreter.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List

from .errors import AlterRuntimeError
from .parser import Symbol, to_source

__all__ = ["standard_builtins"]


def _display(value: Any) -> str:
    """Human rendering: strings raw, #t/#f for booleans, lists recursively."""
    if isinstance(value, bool):
        return "#t" if value else "#f"
    if isinstance(value, str):
        return value
    if isinstance(value, float) and value.is_integer():
        return str(value)
    if isinstance(value, list):
        return "(" + " ".join(_display(v) for v in value) + ")"
    if value is None:
        return "nil"
    return str(value)


def _num(value: Any, what: str) -> Any:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise AlterRuntimeError(f"{what} expects numbers, got {to_source(value)}")
    return value


def _require_list(value: Any, what: str) -> List[Any]:
    if not isinstance(value, list):
        raise AlterRuntimeError(f"{what} expects a list, got {to_source(value)}")
    return value


def standard_builtins(interp) -> Dict[str, Callable]:
    """Build the global-environment bindings for an interpreter instance."""

    # -- emission ------------------------------------------------------------
    def emit(*args):
        interp.emit_buffer.extend(_display(a) for a in args)
        return None

    def emit_line(*args):
        emit(*args)
        interp.emit_buffer.append("\n")
        return None

    # -- variadic arithmetic ---------------------------------------------------
    def plus(*args):
        return sum(_num(a, "+") for a in args)

    def minus(first, *rest):
        _num(first, "-")
        if not rest:
            return -first
        return functools.reduce(lambda a, b: a - _num(b, "-"), rest, first)

    def times(*args):
        out = 1
        for a in args:
            out *= _num(a, "*")
        return out

    def divide(first, *rest):
        _num(first, "/")
        if not rest:
            rest, first = (first,), 1
        out = first
        for b in rest:
            b = _num(b, "/")
            if b == 0:
                raise AlterRuntimeError("division by zero")
            out = out / b
        if isinstance(out, float) and out.is_integer():
            return int(out)
        return out

    def _chain(op):
        def cmp(*args):
            if len(args) < 2:
                raise AlterRuntimeError("comparison needs at least 2 args")
            return all(op(_num(a, "cmp"), _num(b, "cmp")) for a, b in zip(args, args[1:]))

        return cmp

    # -- lists ------------------------------------------------------------------
    def car(lst):
        lst = _require_list(lst, "car")
        if not lst:
            raise AlterRuntimeError("car of empty list")
        return lst[0]

    def cdr(lst):
        lst = _require_list(lst, "cdr")
        if not lst:
            raise AlterRuntimeError("cdr of empty list")
        return lst[1:]

    def list_ref(lst, i):
        lst = _require_list(lst, "list-ref")
        if not isinstance(i, int) or not (0 <= i < len(lst)):
            raise AlterRuntimeError(f"list-ref index {i} out of range")
        return lst[i]

    def map_fn(fn, *lists):
        lists = [_require_list(l, "map") for l in lists]
        return [interp.call(fn, list(args)) for args in zip(*lists)]

    def for_each(fn, *lists):
        lists = [_require_list(l, "for-each") for l in lists]
        for args in zip(*lists):
            interp.call(fn, list(args))
        return None

    def filter_fn(fn, lst):
        return [x for x in _require_list(lst, "filter") if _truthy(interp.call(fn, [x]))]

    def sort_fn(lst, *key):
        lst = list(_require_list(lst, "sort"))
        if key:
            return sorted(lst, key=lambda x: interp.call(key[0], [x]))
        return sorted(lst)

    def fold(fn, init, lst):
        acc = init
        for x in _require_list(lst, "fold"):
            acc = interp.call(fn, [acc, x])
        return acc

    def assoc(key, alist):
        for pair in _require_list(alist, "assoc"):
            pair = _require_list(pair, "assoc entry")
            if pair and pair[0] == key:
                return pair
        return False

    # -- strings ------------------------------------------------------------------
    def fmt(template, *args):
        """(format "f=~a id=~a~%" ...) with ~a (display), ~s (write), ~% (newline), ~~."""
        if not isinstance(template, str):
            raise AlterRuntimeError("format needs a string template")
        out: List[str] = []
        argq = list(args)
        i = 0
        while i < len(template):
            ch = template[i]
            if ch == "~":
                if i + 1 >= len(template):
                    raise AlterRuntimeError("dangling ~ in format")
                d = template[i + 1]
                if d == "a":
                    if not argq:
                        raise AlterRuntimeError("format: not enough arguments")
                    out.append(_display(argq.pop(0)))
                elif d == "s":
                    if not argq:
                        raise AlterRuntimeError("format: not enough arguments")
                    out.append(to_source(argq.pop(0)))
                elif d == "%":
                    out.append("\n")
                elif d == "~":
                    out.append("~")
                else:
                    raise AlterRuntimeError(f"format: unknown directive ~{d}")
                i += 2
            else:
                out.append(ch)
                i += 1
        if argq:
            raise AlterRuntimeError(f"format: {len(argq)} unused argument(s)")
        return "".join(out)

    def substring(s, start, end=None):
        if not isinstance(s, str):
            raise AlterRuntimeError("substring expects a string")
        return s[start:end]

    def string_split(s, sep=None):
        if not isinstance(s, str):
            raise AlterRuntimeError("string-split expects a string")
        return s.split(sep) if sep else s.split()

    def string_to_number(s):
        try:
            return int(s)
        except (TypeError, ValueError):
            pass
        try:
            return float(s)
        except (TypeError, ValueError):
            return False  # Scheme convention: #f on failure

    # -- hash tables -----------------------------------------------------------
    def hash_ref(h, key, *default):
        if not isinstance(h, dict):
            raise AlterRuntimeError("hash-ref expects a hash")
        if key in h:
            return h[key]
        if default:
            return default[0]
        raise AlterRuntimeError(f"hash-ref: missing key {to_source(key)}")

    def hash_set(h, key, value):
        if not isinstance(h, dict):
            raise AlterRuntimeError("hash-set! expects a hash")
        h[key] = value
        return None

    def hash_update(h, key, fn, *default):
        if not isinstance(h, dict):
            raise AlterRuntimeError("hash-update! expects a hash")
        current = h.get(key, default[0]) if default else hash_ref(h, key)
        h[key] = interp.call(fn, [current])
        return None

    # -- model access ------------------------------------------------------------
    def get_property(obj, key, *default):
        if not hasattr(obj, "get_property"):
            raise AlterRuntimeError(f"get-property: not a model object: {obj!r}")
        sentinel = object()
        value = obj.get_property(str(key), default[0] if default else sentinel)
        if value is sentinel:
            raise AlterRuntimeError(f"object {obj.name!r} has no property {key!r}")
        return value

    def set_property(obj, key, value):
        if not hasattr(obj, "set_property"):
            raise AlterRuntimeError(f"set-property!: not a model object: {obj!r}")
        obj.set_property(str(key), value)
        return None

    def dict_to_alist(d):
        if not isinstance(d, dict):
            raise AlterRuntimeError("dict->alist expects a dict")
        return [[k, v] for k, v in sorted(d.items(), key=lambda kv: str(kv[0]))]

    builtins: Dict[str, Callable] = {
        # emission
        "emit": emit,
        "emit-line": emit_line,
        "py-repr": lambda v: repr(v),
        "display": emit,
        "newline": lambda: emit("\n"),
        # arithmetic
        "+": plus,
        "-": minus,
        "*": times,
        "/": divide,
        "mod": lambda a, b: _num(a, "mod") % _num(b, "mod"),
        "quotient": lambda a, b: _num(a, "quotient") // _num(b, "quotient"),
        "min": lambda *a: min(_num(x, "min") for x in a),
        "max": lambda *a: max(_num(x, "max") for x in a),
        "abs": lambda a: abs(_num(a, "abs")),
        "=": _chain(lambda a, b: a == b),
        "<": _chain(lambda a, b: a < b),
        ">": _chain(lambda a, b: a > b),
        "<=": _chain(lambda a, b: a <= b),
        ">=": _chain(lambda a, b: a >= b),
        "zero?": lambda a: _num(a, "zero?") == 0,
        "not": lambda a: not _truthy(a),
        "eq?": lambda a, b: a is b or (a == b and type(a) == type(b)),
        "equal?": lambda a, b: a == b,
        # lists
        "list": lambda *a: list(a),
        "car": car,
        "cdr": cdr,
        "cons": lambda a, lst: [a] + _require_list(lst, "cons"),
        "append": lambda *ls: sum((_require_list(l, "append") for l in ls), []),
        "length": lambda l: len(_require_list(l, "length")),
        "reverse": lambda l: list(reversed(_require_list(l, "reverse"))),
        "null?": lambda l: isinstance(l, list) and not l,
        "pair?": lambda l: isinstance(l, list) and bool(l),
        "list?": lambda l: isinstance(l, list),
        "list-ref": list_ref,
        "member": lambda x, l: x in _require_list(l, "member"),
        "map": map_fn,
        "for-each": for_each,
        "filter": filter_fn,
        "sort": sort_fn,
        "fold": fold,
        "assoc": assoc,
        "range": lambda n, *m: list(range(n, m[0]) if m else range(n)),
        "apply": lambda fn, args: interp.call(fn, _require_list(args, "apply")),
        # strings
        "string-append": lambda *ss: "".join(str(s) for s in ss),
        "string-length": lambda s: len(s),
        "substring": substring,
        "string-upcase": lambda s: str(s).upper(),
        "string-downcase": lambda s: str(s).lower(),
        "string-join": lambda ls, sep: str(sep).join(
            _display(x) for x in _require_list(ls, "string-join")
        ),
        "number->string": lambda n: _display(_num(n, "number->string")),
        "string->number": string_to_number,
        "string->symbol": lambda s: Symbol(str(s)),
        "symbol->string": lambda s: str(s),
        "string-split": string_split,
        "string-contains?": lambda s, sub: str(sub) in str(s),
        "string-replace": lambda s, old, new: str(s).replace(str(old), str(new)),
        "string-index": lambda s, sub: str(s).find(str(sub)),
        "string-trim": lambda s: str(s).strip(),
        "string-repeat": lambda s, n: str(s) * int(n),
        "format": fmt,
        # hash tables
        "make-hash": lambda: {},
        "hash?": lambda h: isinstance(h, dict),
        "hash-ref": hash_ref,
        "hash-set!": hash_set,
        "hash-update!": hash_update,
        "hash-has?": lambda h, k: isinstance(h, dict) and k in h,
        "hash-remove!": lambda h, k: (h.pop(k, None), None)[1],
        "hash-keys": lambda h: sorted(h.keys(), key=_display),
        "hash-count": lambda h: len(h),
        "hash->alist": dict_to_alist,
        # predicates
        "string?": lambda v: isinstance(v, str) and not isinstance(v, Symbol),
        "number?": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
        "symbol?": lambda v: isinstance(v, Symbol),
        "boolean?": lambda v: isinstance(v, bool),
        "procedure?": callable,
        # errors
        "error": _raise_error,
        # model access (§2 "standard calls to access certain features in SAGE")
        "object-name": lambda o: _attr(o, "name", "object-name"),
        "object-type": lambda o: _attr(o, "object_type", "object-type"),
        "object-id": lambda o: _attr(o, "object_id", "object-id"),
        "get-property": get_property,
        "set-property!": set_property,
        "function-instances": lambda m: _call_model(m, "function_instances"),
        "flattened-arcs": lambda m: [list(pair) for pair in _call_model(m, "flattened_arcs")],
        "topological-order": lambda m: _call_model(m, "topological_order"),
        "instance-id": lambda i: _attr(i, "function_id", "instance-id"),
        "instance-path": lambda i: _attr(i, "path", "instance-path"),
        "instance-kernel": lambda i: _attr(i, "kernel", "instance-kernel"),
        "instance-threads": lambda i: _attr(i, "threads", "instance-threads"),
        "instance-params": lambda i: dict_to_alist(_attr(i, "block", "instance-params").params),
        "instance-block": lambda i: _attr(i, "block", "instance-block"),
        "block-ports": lambda b: list(_attr(b, "ports", "block-ports").values()),
        "block-of": lambda p: _attr(p, "block", "block-of"),
        "port-name": lambda p: _attr(p, "name", "port-name"),
        "port-direction": lambda p: _attr(p, "direction", "port-direction"),
        "port-striping-kind": lambda p: _attr(p, "striping", "port-striping-kind").kind,
        "port-stripe-axis": lambda p: _attr(p, "striping", "port-stripe-axis").axis,
        "port-stripe-block": lambda p: _attr(p, "striping", "port-stripe-block").block,
        "port-dtype": lambda p: _attr(p, "datatype", "port-dtype").dtype,
        "port-shape": lambda p: list(_attr(p, "datatype", "port-shape").shape),
        "port-elem-bytes": lambda p: _attr(p, "datatype", "port-elem-bytes").elem_bytes,
        "port-total-bytes": lambda p: _attr(p, "datatype", "port-total-bytes").total_bytes,
        "mapping-processor": lambda m, fid, t: m.processor_of(fid, t),
        "dict->alist": dict_to_alist,
        "dict-ref": _dict_ref,
        # constants
        "nil": None,
        "true": True,
        "false": False,
    }
    return builtins


def _truthy(value: Any) -> bool:
    return value is not False and value is not None


def _raise_error(*args):
    raise AlterRuntimeError(" ".join(_display(a) for a in args))


def _attr(obj: Any, attr: str, what: str) -> Any:
    try:
        return getattr(obj, attr)
    except AttributeError:
        raise AlterRuntimeError(f"{what}: unsuitable object {obj!r}") from None


def _call_model(model: Any, method: str) -> Any:
    try:
        return getattr(model, method)()
    except AttributeError:
        raise AlterRuntimeError(f"not a model: {model!r}") from None


def _dict_ref(d: Any, key: Any, *default: Any) -> Any:
    if not isinstance(d, dict):
        raise AlterRuntimeError("dict-ref expects a dict")
    if key in d:
        return d[key]
    if default:
        return default[0]
    raise AlterRuntimeError(f"dict-ref: missing key {key!r}")
