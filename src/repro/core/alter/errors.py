"""Alter language error types."""

__all__ = ["AlterError", "AlterSyntaxError", "AlterRuntimeError"]


class AlterError(Exception):
    """Base class for Alter language failures."""


class AlterSyntaxError(AlterError):
    """Lexing/parsing failure; carries source position."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        super().__init__(f"{message} (line {line}, col {col})")
        self.line = line
        self.col = col


class AlterRuntimeError(AlterError):
    """Evaluation failure."""
