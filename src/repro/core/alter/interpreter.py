"""Alter evaluator.

§2: *"The basic Alter language provides the constructs to perform the
traditional programming tasks, such as procedure encapsulation,
conditionals, looping, variable declaration, and recursion. The language
also includes a set of standard calls to access certain features in SAGE,
such as setting or retrieving a property value from an object."*

This is a proper environment-passing evaluator with closures, tail-call
elimination (so model-traversal recursion over big graphs cannot blow the
Python stack), and the standard special forms.  The SAGE-access standard
calls live in :mod:`repro.core.alter.builtins`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .errors import AlterRuntimeError
from .parser import Symbol, parse_cached, to_source

__all__ = ["Environment", "Lambda", "Interpreter"]


class Environment:
    """A lexical scope chain."""

    __slots__ = ("vars", "parent")

    def __init__(self, parent: Optional["Environment"] = None):
        self.vars: Dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                return env.vars[name]
            env = env.parent
        raise AlterRuntimeError(f"unbound symbol '{name}'")

    def define(self, name: str, value: Any) -> None:
        self.vars[name] = value

    def set(self, name: str, value: Any) -> None:
        env: Optional[Environment] = self
        while env is not None:
            if name in env.vars:
                env.vars[name] = value
                return
            env = env.parent
        raise AlterRuntimeError(f"set! of unbound symbol '{name}'")


class Lambda:
    """A closure: parameter list, body, and defining environment."""

    __slots__ = ("params", "rest", "body", "env", "name")

    def __init__(self, params: List[str], rest: Optional[str], body: List[Any],
                 env: Environment, name: str = "<lambda>"):
        self.params = params
        self.rest = rest
        self.body = body
        self.env = env
        self.name = name

    def bind(self, args: List[Any]) -> Environment:
        if self.rest is None and len(args) != len(self.params):
            raise AlterRuntimeError(
                f"{self.name}: expected {len(self.params)} args, got {len(args)}"
            )
        if self.rest is not None and len(args) < len(self.params):
            raise AlterRuntimeError(
                f"{self.name}: expected at least {len(self.params)} args, got {len(args)}"
            )
        env = Environment(self.env)
        for p, a in zip(self.params, args):
            env.define(p, a)
        if self.rest is not None:
            env.define(self.rest, list(args[len(self.params):]))
        return env


class Interpreter:
    """Evaluates Alter programs against a global environment."""

    def __init__(self, extra_builtins: Optional[Dict[str, Callable]] = None):
        from .builtins import standard_builtins  # circular-free: late import

        self.globals = Environment()
        self.emit_buffer: List[str] = []
        for name, fn in standard_builtins(self).items():
            self.globals.define(name, fn)
        for name, fn in (extra_builtins or {}).items():
            self.globals.define(name, fn)

    # -- public API -----------------------------------------------------------
    def run(self, source: str) -> Any:
        """Parse and evaluate a program; returns the last expression's value."""
        result = None
        for expr in parse_cached(source):
            result = self.eval(expr, self.globals)
        return result

    def output(self) -> str:
        """Everything emitted so far via (emit ...) / (emit-line ...)."""
        return "".join(self.emit_buffer)

    def reset_output(self) -> None:
        self.emit_buffer.clear()

    def call(self, fn: Any, args: List[Any]) -> Any:
        """Apply an Alter value (closure or Python callable) from Python."""
        if isinstance(fn, Lambda):
            env = fn.bind(args)
            result = None
            for expr in fn.body:
                result = self.eval(expr, env)
            return result
        if callable(fn):
            return fn(*args)
        raise AlterRuntimeError(f"not callable: {to_source(fn)}")

    # -- evaluator ------------------------------------------------------------
    def eval(self, expr: Any, env: Environment) -> Any:  # noqa: C901 (dispatcher)
        while True:  # tail-call trampoline
            if isinstance(expr, Symbol):
                return env.lookup(str(expr))
            if not isinstance(expr, list):
                return expr  # literal
            if not expr:
                return []
            head = expr[0]
            if isinstance(head, Symbol):
                form = str(head)
                if form == "quote":
                    self._arity(expr, 2, "quote")
                    return expr[1]
                if form == "if":
                    if len(expr) not in (3, 4):
                        raise AlterRuntimeError("if needs 2 or 3 forms")
                    if self._truthy(self.eval(expr[1], env)):
                        expr = expr[2]
                    elif len(expr) == 4:
                        expr = expr[3]
                    else:
                        return None
                    continue
                if form == "cond":
                    matched = False
                    for clause in expr[1:]:
                        if not isinstance(clause, list) or not clause:
                            raise AlterRuntimeError("bad cond clause")
                        test = clause[0]
                        if (isinstance(test, Symbol) and str(test) == "else") or self._truthy(
                            self.eval(test, env)
                        ):
                            if len(clause) == 1:
                                return self.eval(test, env)
                            for body_expr in clause[1:-1]:
                                self.eval(body_expr, env)
                            expr = clause[-1]
                            matched = True
                            break
                    if matched:
                        continue
                    return None
                if form == "define":
                    return self._eval_define(expr, env)
                if form == "set!":
                    self._arity(expr, 3, "set!")
                    name = expr[1]
                    if not isinstance(name, Symbol):
                        raise AlterRuntimeError("set! needs a symbol")
                    env.set(str(name), self.eval(expr[2], env))
                    return None
                if form == "lambda":
                    if len(expr) < 3:
                        raise AlterRuntimeError("lambda needs params and body")
                    params, rest = self._parse_params(expr[1])
                    return Lambda(params, rest, expr[2:], env)
                if form == "let" and len(expr) >= 4 and isinstance(expr[1], Symbol):
                    # Named let: (let loop ((v init) ...) body...) — a local
                    # recursive procedure applied to the initial values.
                    name = str(expr[1])
                    bindings = expr[2]
                    if not isinstance(bindings, list):
                        raise AlterRuntimeError("named let needs a binding list")
                    params = [self._binding_name(b) for b in bindings]
                    inits = [self.eval(b[1], env) for b in bindings]
                    loop_env = Environment(env)
                    fn = Lambda(params, None, expr[3:], loop_env, name=name)
                    loop_env.define(name, fn)
                    env = fn.bind(inits)
                    for body_expr in fn.body[:-1]:
                        self.eval(body_expr, env)
                    expr = fn.body[-1]
                    continue
                if form in ("let", "let*"):
                    if len(expr) < 3 or not isinstance(expr[1], list):
                        raise AlterRuntimeError(f"{form} needs bindings and body")
                    if form == "let":
                        values = [
                            (self._binding_name(b), self.eval(b[1], env))
                            for b in expr[1]
                        ]
                        inner = Environment(env)
                        for name, val in values:
                            inner.define(name, val)
                    else:
                        inner = Environment(env)
                        for b in expr[1]:
                            inner.define(self._binding_name(b), self.eval(b[1], inner))
                    for body_expr in expr[2:-1]:
                        self.eval(body_expr, inner)
                    expr, env = expr[-1], inner
                    continue
                if form == "begin":
                    if len(expr) == 1:
                        return None
                    for body_expr in expr[1:-1]:
                        self.eval(body_expr, env)
                    expr = expr[-1]
                    continue
                if form == "while":
                    if len(expr) < 2:
                        raise AlterRuntimeError("while needs a test")
                    result = None
                    while self._truthy(self.eval(expr[1], env)):
                        for body_expr in expr[2:]:
                            result = self.eval(body_expr, env)
                    return result
                if form == "and":
                    value: Any = True
                    for sub in expr[1:]:
                        value = self.eval(sub, env)
                        if not self._truthy(value):
                            return value
                    return value
                if form == "or":
                    for sub in expr[1:]:
                        value = self.eval(sub, env)
                        if self._truthy(value):
                            return value
                    return False
                if form == "when":
                    if len(expr) < 2:
                        raise AlterRuntimeError("when needs a test")
                    if self._truthy(self.eval(expr[1], env)):
                        result = None
                        for body_expr in expr[2:]:
                            result = self.eval(body_expr, env)
                        return result
                    return None
                if form == "unless":
                    if len(expr) < 2:
                        raise AlterRuntimeError("unless needs a test")
                    if not self._truthy(self.eval(expr[1], env)):
                        result = None
                        for body_expr in expr[2:]:
                            result = self.eval(body_expr, env)
                        return result
                    return None
            # -- function application ------------------------------------------
            fn = self.eval(head, env)
            args = [self.eval(a, env) for a in expr[1:]]
            if isinstance(fn, Lambda):
                env = fn.bind(args)
                for body_expr in fn.body[:-1]:
                    self.eval(body_expr, env)
                expr = fn.body[-1]
                continue  # tail position
            if callable(fn):
                try:
                    return fn(*args)
                except AlterRuntimeError:
                    raise
                except Exception as exc:
                    raise AlterRuntimeError(
                        f"error in {to_source(head)}: {exc}"
                    ) from exc
            raise AlterRuntimeError(f"not callable: {to_source(head)}")

    # -- helpers ---------------------------------------------------------------
    def _eval_define(self, expr: List[Any], env: Environment) -> Any:
        if len(expr) < 3:
            raise AlterRuntimeError("define needs a name and a value")
        target = expr[1]
        if isinstance(target, Symbol):
            self._arity(expr, 3, "define")
            env.define(str(target), self.eval(expr[2], env))
            return None
        if isinstance(target, list) and target and isinstance(target[0], Symbol):
            # (define (f a b) body...) sugar
            name = str(target[0])
            params, rest = self._parse_params(target[1:])
            env.define(name, Lambda(params, rest, expr[2:], env, name=name))
            return None
        raise AlterRuntimeError("bad define target")

    @staticmethod
    def _parse_params(param_expr: Any):
        if not isinstance(param_expr, list):
            raise AlterRuntimeError("parameter list must be a list")
        params: List[str] = []
        rest: Optional[str] = None
        it = iter(param_expr)
        for p in it:
            if isinstance(p, Symbol) and str(p) == ".":
                try:
                    rest_sym = next(it)
                except StopIteration:
                    raise AlterRuntimeError("rest parameter missing after '.'") from None
                if not isinstance(rest_sym, Symbol):
                    raise AlterRuntimeError("rest parameter must be a symbol")
                rest = str(rest_sym)
                break
            if not isinstance(p, Symbol):
                raise AlterRuntimeError("parameters must be symbols")
            params.append(str(p))
        return params, rest

    @staticmethod
    def _binding_name(binding: Any) -> str:
        if (
            not isinstance(binding, list)
            or len(binding) != 2
            or not isinstance(binding[0], Symbol)
        ):
            raise AlterRuntimeError("let binding must be (name value)")
        return str(binding[0])

    @staticmethod
    def _truthy(value: Any) -> bool:
        return value is not False and value is not None

    @staticmethod
    def _arity(expr: List[Any], n: int, what: str) -> None:
        if len(expr) != n:
            raise AlterRuntimeError(f"{what} takes {n - 1} argument(s)")
