"""Alter lexer.

§2: *"The SAGE glue-code generator is implemented in Alter, a programming
language similar to Lisp in its syntax and style."*  Tokens are the usual
s-expression fare: parentheses, quote, strings, numbers, booleans, symbols;
``;`` starts a comment to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Union

from .errors import AlterSyntaxError

__all__ = ["Token", "tokenize"]

_DELIMS = set("()'\";")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str  # 'lparen' | 'rparen' | 'quote' | 'string' | 'number' | 'bool' | 'symbol'
    value: Union[str, int, float, bool]
    line: int
    col: int


def tokenize(source: str) -> List[Token]:
    """Tokenise Alter source, raising :class:`AlterSyntaxError` on bad input."""
    tokens: List[Token] = []
    i = 0
    line, col = 1, 1
    n = len(source)

    def advance(k: int = 1):
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance()
            continue
        if ch == ";":
            while i < n and source[i] != "\n":
                advance()
            continue
        if ch == "(":
            tokens.append(Token("lparen", "(", line, col))
            advance()
            continue
        if ch == ")":
            tokens.append(Token("rparen", ")", line, col))
            advance()
            continue
        if ch == "'":
            tokens.append(Token("quote", "'", line, col))
            advance()
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance()
            chars: List[str] = []
            while True:
                if i >= n:
                    raise AlterSyntaxError("unterminated string", start_line, start_col)
                c = source[i]
                if c == '"':
                    advance()
                    break
                if c == "\\":
                    advance()
                    if i >= n:
                        raise AlterSyntaxError("unterminated escape", line, col)
                    esc = source[i]
                    mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "r": "\r"}
                    if esc not in mapping:
                        raise AlterSyntaxError(f"bad escape \\{esc}", line, col)
                    chars.append(mapping[esc])
                    advance()
                else:
                    chars.append(c)
                    advance()
            tokens.append(Token("string", "".join(chars), start_line, start_col))
            continue
        if ch == "#":
            start_line, start_col = line, col
            if i + 1 < n and source[i + 1] in "tf":
                tokens.append(Token("bool", source[i + 1] == "t", start_line, start_col))
                advance(2)
                if i < n and source[i] not in " \t\r\n()'\";":
                    raise AlterSyntaxError("bad boolean literal", start_line, start_col)
                continue
            raise AlterSyntaxError("bad # literal", start_line, start_col)
        # number or symbol
        start_line, start_col = line, col
        j = i
        while j < n and source[j] not in " \t\r\n" and source[j] not in _DELIMS:
            j += 1
        word = source[i:j]
        advance(j - i)
        tok = _classify(word, start_line, start_col)
        tokens.append(tok)
    return tokens


def _classify(word: str, line: int, col: int) -> Token:
    try:
        return Token("number", int(word), line, col)
    except ValueError:
        pass
    try:
        return Token("number", float(word), line, col)
    except ValueError:
        pass
    return Token("symbol", word, line, col)
