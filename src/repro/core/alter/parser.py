"""Alter reader: tokens -> s-expression trees.

Expressions are represented with plain Python values: lists for compound
forms, :class:`Symbol` for identifiers, and str/int/float/bool for literals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .errors import AlterSyntaxError
from .lexer import Token, tokenize

__all__ = [
    "Symbol", "parse", "parse_cached", "parse_one", "parse_with_locations",
    "to_source",
]


class Symbol(str):
    """An Alter identifier (a distinct type so strings stay literal)."""

    __slots__ = ()

    def __repr__(self):
        return str(self)


def parse(source: str) -> List[Any]:
    """Parse a whole program: a list of top-level expressions."""
    tokens = tokenize(source)
    pos = 0
    out: List[Any] = []
    while pos < len(tokens):
        expr, pos = _read(tokens, pos)
        out.append(expr)
    return out


def parse_cached(source: str) -> List[Any]:
    """Memoized :func:`parse` for evaluation call sites.

    The glue scripts are module constants re-run for every generated model,
    so their ASTs are cached by source text.  The interpreter treats parsed
    nodes as read-only (it never rewrites them), which is what makes sharing
    safe; callers that mutate ASTs must use :func:`parse`.
    """
    from ...perf.cache import named_cache

    return named_cache("alter.parse", maxsize=256).get(
        source, lambda: parse(source)
    )


def parse_with_locations(source: str) -> Tuple[List[Any], Dict[int, Tuple[int, int]]]:
    """Parse a program, also returning source positions for analysis tools.

    The second return value maps ``id(node)`` (for list and :class:`Symbol`
    nodes, which are freshly allocated per parse) to their 1-based
    ``(line, col)``.  Literals (ints, strings, booleans) are not tracked:
    Python interns them, so their ``id`` is not a reliable key.
    """
    tokens = tokenize(source)
    pos = 0
    out: List[Any] = []
    locs: Dict[int, Tuple[int, int]] = {}
    while pos < len(tokens):
        expr, pos = _read(tokens, pos, locs)
        out.append(expr)
    return out, locs


def parse_one(source: str) -> Any:
    """Parse exactly one expression."""
    exprs = parse(source)
    if len(exprs) != 1:
        raise AlterSyntaxError(f"expected one expression, got {len(exprs)}")
    return exprs[0]


def _read(tokens: List[Token], pos: int,
          locs: Optional[Dict[int, Tuple[int, int]]] = None):
    if pos >= len(tokens):
        raise AlterSyntaxError("unexpected end of input")
    tok = tokens[pos]
    if tok.kind == "lparen":
        pos += 1
        items: List[Any] = []
        if locs is not None:
            locs[id(items)] = (tok.line, tok.col)
        while True:
            if pos >= len(tokens):
                raise AlterSyntaxError("unclosed '('", tok.line, tok.col)
            if tokens[pos].kind == "rparen":
                return items, pos + 1
            expr, pos = _read(tokens, pos, locs)
            items.append(expr)
    if tok.kind == "rparen":
        raise AlterSyntaxError("unexpected ')'", tok.line, tok.col)
    if tok.kind == "quote":
        expr, pos = _read(tokens, pos + 1, locs)
        quoted = [Symbol("quote"), expr]
        if locs is not None:
            locs[id(quoted)] = (tok.line, tok.col)
        return quoted, pos
    if tok.kind == "symbol":
        sym = Symbol(tok.value)
        if locs is not None:
            locs[id(sym)] = (tok.line, tok.col)
        return sym, pos + 1
    # string / number / bool literals pass through
    return tok.value, pos + 1


def to_source(expr: Any) -> str:
    """Render an expression back to Alter source (for messages and tests)."""
    if isinstance(expr, bool):
        return "#t" if expr else "#f"
    if isinstance(expr, Symbol):
        return str(expr)
    if isinstance(expr, str):
        escaped = expr.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        return f'"{escaped}"'
    if isinstance(expr, list):
        return "(" + " ".join(to_source(e) for e in expr) + ")"
    return repr(expr)
