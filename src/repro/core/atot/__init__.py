"""AToT: Architecture Trades and Optimization Tool (GA mapping, objectives, scheduling)."""

from .ga import GaConfig, GaResult, genetic_algorithm
from .anneal import AnnealConfig, AnnealResult, simulated_annealing
from .objectives import CostBreakdown, MappingObjective, estimate_thread_flops
from .partition import AtotResult, MappingProblem, optimize_mapping, random_mapping
from .schedule import Schedule, ScheduledTask, ScheduledTransfer, list_schedule
from .trades import (
    CandidateArchitecture,
    Requirements,
    TradeResult,
    architecture_trade_study,
    format_trade_study,
)

__all__ = [
    "GaConfig",
    "GaResult",
    "genetic_algorithm",
    "AnnealConfig",
    "AnnealResult",
    "simulated_annealing",
    "CostBreakdown",
    "MappingObjective",
    "estimate_thread_flops",
    "AtotResult",
    "MappingProblem",
    "optimize_mapping",
    "random_mapping",
    "Schedule",
    "ScheduledTask",
    "ScheduledTransfer",
    "list_schedule",
    "CandidateArchitecture",
    "Requirements",
    "TradeResult",
    "architecture_trade_study",
    "format_trade_study",
]
