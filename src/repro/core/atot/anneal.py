"""Simulated-annealing mapper: the ablation baseline for the GA.

DESIGN.md calls out the GA as a design choice worth ablating; this module
provides the classic alternative — single-solution simulated annealing over
the same chromosome encoding — so the bench can compare search strategies
on identical objectives.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["AnnealConfig", "AnnealResult", "simulated_annealing"]

Chromosome = Tuple[int, ...]


@dataclass(frozen=True)
class AnnealConfig:
    """Cooling schedule and move parameters."""

    steps: int = 2000
    t_start: float = 1.0
    t_end: float = 1e-3
    moves_per_step: int = 1  # genes perturbed per proposal
    seed: int = 0

    def __post_init__(self):
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if not (0 < self.t_end <= self.t_start):
            raise ValueError("need 0 < t_end <= t_start")
        if self.moves_per_step < 1:
            raise ValueError("moves_per_step must be >= 1")


@dataclass
class AnnealResult:
    best: Chromosome
    best_fitness: float
    history: List[float] = field(default_factory=list)
    accepted: int = 0
    proposed: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else 0.0


def simulated_annealing(
    gene_count: int,
    gene_values: int,
    fitness: Callable[[Chromosome], float],
    config: AnnealConfig = AnnealConfig(),
    start: Optional[Sequence[int]] = None,
) -> AnnealResult:
    """Minimise ``fitness`` by annealing single-gene reassignment moves.

    Geometric cooling from ``t_start`` to ``t_end`` over ``steps`` proposals;
    Metropolis acceptance.  ``start`` seeds the walk (AToT seeds with the
    round-robin layout, same as the GA).
    """
    if gene_count < 1 or gene_values < 1:
        raise ValueError("gene_count and gene_values must be positive")
    rng = random.Random(config.seed)
    if start is not None:
        if len(start) != gene_count:
            raise ValueError(f"start has {len(start)} genes, expected {gene_count}")
        current = tuple(start)
    else:
        current = tuple(rng.randrange(gene_values) for _ in range(gene_count))
    current_fit = fitness(current)
    best, best_fit = current, current_fit
    alpha = (config.t_end / config.t_start) ** (1.0 / max(1, config.steps - 1))
    temperature = config.t_start
    history: List[float] = []
    accepted = 0

    for _step in range(config.steps):
        proposal = list(current)
        for _ in range(config.moves_per_step):
            gene = rng.randrange(gene_count)
            proposal[gene] = rng.randrange(gene_values)
        proposal_t = tuple(proposal)
        proposal_fit = fitness(proposal_t)
        delta = proposal_fit - current_fit
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current, current_fit = proposal_t, proposal_fit
            accepted += 1
            if current_fit < best_fit:
                best, best_fit = current, current_fit
        history.append(best_fit)
        temperature *= alpha

    return AnnealResult(
        best=best,
        best_fitness=best_fit,
        history=history,
        accepted=accepted,
        proposed=config.steps,
    )
