"""Generic genetic algorithm core.

§1.1: *"the genetic algorithm based partitioning and mapping capability of
AToT assigns the application tasks to the multi-processor, heterogeneous
architecture."*

A plain, reproducible integer-chromosome GA: tournament selection, uniform
or one-point crossover, per-gene reset mutation, elitism, and a fitness
cache.  Minimises the fitness function.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["GaConfig", "GaResult", "genetic_algorithm"]

Chromosome = Tuple[int, ...]


@dataclass(frozen=True)
class GaConfig:
    """Hyper-parameters for one GA run."""

    population: int = 60
    generations: int = 80
    tournament: int = 3
    crossover_rate: float = 0.9
    mutation_rate: float = 0.05
    elitism: int = 2
    crossover: str = "uniform"  # or "one_point"
    seed: int = 0

    def __post_init__(self):
        if self.population < 2:
            raise ValueError("population must be >= 2")
        if not (0 <= self.crossover_rate <= 1 and 0 <= self.mutation_rate <= 1):
            raise ValueError("rates must be in [0, 1]")
        if self.elitism >= self.population:
            raise ValueError("elitism must be smaller than the population")
        if self.crossover not in ("uniform", "one_point"):
            raise ValueError(f"unknown crossover {self.crossover!r}")
        if self.tournament < 1:
            raise ValueError("tournament must be >= 1")


@dataclass
class GaResult:
    """Best chromosome found plus convergence history."""

    best: Chromosome
    best_fitness: float
    history: List[float] = field(default_factory=list)  # best fitness per generation
    evaluations: int = 0


def genetic_algorithm(
    gene_count: int,
    gene_values: int,
    fitness: Callable[[Chromosome], float],
    config: GaConfig = GaConfig(),
    seeds: Optional[Sequence[Chromosome]] = None,
) -> GaResult:
    """Minimise ``fitness`` over chromosomes of ``gene_count`` genes in
    ``range(gene_values)``.

    ``seeds`` optionally injects known-good starting individuals (AToT seeds
    the GA with the round-robin layout so it never does worse than the
    naive mapping).
    """
    if gene_count < 1 or gene_values < 1:
        raise ValueError("gene_count and gene_values must be positive")
    rng = random.Random(config.seed)
    cache: Dict[Chromosome, float] = {}
    evaluations = 0

    def score(ch: Chromosome) -> float:
        nonlocal evaluations
        if ch not in cache:
            cache[ch] = fitness(ch)
            evaluations += 1
        return cache[ch]

    def random_chromosome() -> Chromosome:
        return tuple(rng.randrange(gene_values) for _ in range(gene_count))

    population: List[Chromosome] = []
    for s in seeds or []:
        if len(s) != gene_count:
            raise ValueError(f"seed chromosome has {len(s)} genes, expected {gene_count}")
        population.append(tuple(s))
    while len(population) < config.population:
        population.append(random_chromosome())
    population = population[: config.population]

    def tournament_pick(scored: List[Tuple[float, Chromosome]]) -> Chromosome:
        best = min(
            (scored[rng.randrange(len(scored))] for _ in range(config.tournament)),
            key=lambda fc: fc[0],
        )
        return best[1]

    def crossover(a: Chromosome, b: Chromosome) -> Chromosome:
        if rng.random() > config.crossover_rate or gene_count == 1:
            return a
        if config.crossover == "one_point":
            point = rng.randrange(1, gene_count)
            return a[:point] + b[point:]
        return tuple(x if rng.random() < 0.5 else y for x, y in zip(a, b))

    def mutate(ch: Chromosome) -> Chromosome:
        return tuple(
            rng.randrange(gene_values) if rng.random() < config.mutation_rate else g
            for g in ch
        )

    history: List[float] = []
    for _generation in range(config.generations):
        scored = sorted(((score(ch), ch) for ch in population), key=lambda fc: fc[0])
        history.append(scored[0][0])
        next_pop: List[Chromosome] = [ch for _, ch in scored[: config.elitism]]
        while len(next_pop) < config.population:
            parent_a = tournament_pick(scored)
            parent_b = tournament_pick(scored)
            next_pop.append(mutate(crossover(parent_a, parent_b)))
        population = next_pop

    final = sorted(((score(ch), ch) for ch in population), key=lambda fc: fc[0])
    history.append(final[0][0])
    return GaResult(
        best=final[0][1],
        best_fitness=final[0][0],
        history=history,
        evaluations=evaluations,
    )
