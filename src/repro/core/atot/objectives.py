"""AToT optimisation objectives.

§1.1: *"AToT can be employed for total design optimization, which includes
load balancing of CPU resources, optimizing over latency constraints,
communication minimization and scheduling of CPUs and busses."*

The objective terms below score a candidate mapping without running the
simulator (the GA evaluates thousands of candidates): per-thread compute
load from the kernel flop models, communication volume from the striping
message plans, and a critical-path latency estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...machine.platforms import PlatformSpec
from ..model.application import ApplicationModel, FunctionInstance
from ..model.mapping import Mapping
from ..runtime.kernels import ThreadContext, default_bindings
from ..runtime.phantom import PhantomArray
from ..runtime.striping import message_plan, region_shape, thread_region

__all__ = ["MappingObjective", "CostBreakdown", "estimate_thread_flops"]


def _in_port_specs(app: ApplicationModel) -> Dict[int, List[tuple]]:
    """function_id -> [(port, shape, dtype, striping, threads)] for IN sides."""
    instances = {id(i.block): i for i in app.function_instances()}
    out: Dict[int, List[tuple]] = {i.function_id: [] for i in instances.values()}
    for _src, dst in app.flattened_arcs():
        inst = instances[id(dst.block)]
        out[inst.function_id].append(
            (dst.name, dst.datatype.shape, dst.datatype.dtype, dst.striping, inst.threads)
        )
    return out


def estimate_thread_flops(
    app: ApplicationModel, inst: FunctionInstance, thread: int,
    in_specs: Optional[Dict[int, List[tuple]]] = None,
) -> float:
    """Analytic flops of one thread of one function instance."""
    specs = (in_specs or _in_port_specs(app)).get(inst.function_id, [])
    bindings = default_bindings()
    binding = bindings.get(inst.kernel)
    if binding is None:
        return 0.0
    inputs = {}
    in_regions = {}
    for port, shape, dtype, striping, threads in specs:
        region = thread_region(shape, striping, threads, thread)
        in_regions[port] = region
        inputs[port] = PhantomArray(region_shape(region), dtype)
    ctx = ThreadContext(
        function_id=inst.function_id,
        name=inst.path,
        kernel=inst.kernel,
        thread=thread,
        threads=inst.threads,
        iteration=0,
        params=inst.block.params,
        in_regions=in_regions,
        out_regions={},
        out_dtypes={},
        execute_data=False,
    )
    return float(binding.flops(ctx, inputs))


@dataclass
class CostBreakdown:
    """The objective terms for one candidate mapping."""

    load_imbalance: float      # max processor load / mean load (>= 1)
    comm_bytes: float          # bytes crossing processors per iteration
    inter_board_bytes: float   # subset crossing board boundaries
    est_latency: float         # critical-path seconds per iteration
    penalty: float = 0.0       # constraint violations

    def total(self, w_balance: float, w_comm: float, w_latency: float) -> float:
        return (
            w_balance * (self.load_imbalance - 1.0)
            + w_comm * self.comm_bytes
            + w_latency * self.est_latency
            + self.penalty
        )


class MappingObjective:
    """Scores mappings of ``app`` onto ``nodes`` processors of ``platform``."""

    def __init__(
        self,
        app: ApplicationModel,
        platform: PlatformSpec,
        nodes: int,
        w_balance: float = 1.0,
        w_comm: float = 1e-8,
        w_latency: float = 10.0,
        latency_constraint: Optional[float] = None,
        cpu_specs: Optional[List] = None,
    ):
        """``cpu_specs`` optionally gives one :class:`CpuSpec` per node for
        heterogeneous machines; loads are then measured in seconds so a slow
        node carrying the same flops counts as more loaded."""
        self.app = app
        self.platform = platform
        self.nodes = nodes
        if cpu_specs is not None and len(cpu_specs) != nodes:
            raise ValueError(f"{len(cpu_specs)} cpu_specs for {nodes} nodes")
        self.cpu_specs = list(cpu_specs) if cpu_specs is not None else [platform.cpu] * nodes
        self.w_balance = w_balance
        self.w_comm = w_comm
        self.w_latency = w_latency
        self.latency_constraint = latency_constraint
        self.instances = app.function_instances()
        self._by_block = {id(i.block): i for i in self.instances}
        self._in_specs = _in_port_specs(app)
        # flops cache: (function_id, thread) -> flops
        self._flops: Dict[Tuple[int, int], float] = {}
        for inst in self.instances:
            for t in range(inst.threads):
                self._flops[(inst.function_id, t)] = estimate_thread_flops(
                    app, inst, t, self._in_specs
                )
        # Arc message plans (independent of the mapping).
        self._plans = []
        for src, dst in app.flattened_arcs():
            s_inst = self._by_block[id(src.block)]
            d_inst = self._by_block[id(dst.block)]
            plan = message_plan(
                src.datatype.shape,
                src.datatype.elem_bytes,
                src.striping,
                s_inst.threads,
                dst.striping,
                d_inst.threads,
            )
            self._plans.append((s_inst, d_inst, plan))

    # -- objective terms ----------------------------------------------------
    def breakdown(self, mapping: Mapping) -> CostBreakdown:
        # Loads in seconds, so heterogeneous node speeds weigh in.
        loads = [0.0] * self.nodes
        for (fid, t), flops in self._flops.items():
            proc = mapping.processor_of(fid, t)
            loads[proc] += self.cpu_specs[proc].compute_time(flops)
        mean = sum(loads) / len(loads) if loads else 0.0
        imbalance = (max(loads) / mean) if mean > 0 else 1.0

        comm = 0.0
        inter_board = 0.0
        for s_inst, d_inst, plan in self._plans:
            for msg in plan:
                p_src = mapping.processor_of(s_inst.function_id, msg.src_thread)
                p_dst = mapping.processor_of(d_inst.function_id, msg.dst_thread)
                if p_src != p_dst:
                    comm += msg.nbytes
                    if self.platform.board_of(p_src) != self.platform.board_of(p_dst):
                        inter_board += msg.nbytes

        latency = self._critical_path(mapping)
        penalty = 0.0
        if self.latency_constraint is not None and latency > self.latency_constraint:
            penalty = 1e3 * (latency / self.latency_constraint - 1.0)
        return CostBreakdown(
            load_imbalance=imbalance,
            comm_bytes=comm,
            inter_board_bytes=inter_board,
            est_latency=latency,
            penalty=penalty,
        )

    def _critical_path(self, mapping: Mapping) -> float:
        """Per-iteration latency estimate: stage-by-stage max of compute+comm."""
        total = 0.0
        order = self.app.topological_order()
        for inst in order:
            stage_compute = max(
                (
                    self.cpu_specs[
                        mapping.processor_of(inst.function_id, t)
                    ].compute_time(self._flops[(inst.function_id, t)])
                    for t in range(inst.threads)
                ),
                default=0.0,
            )
            total += stage_compute
        for s_inst, d_inst, plan in self._plans:
            per_dst: Dict[int, float] = {}
            for msg in plan:
                p_src = mapping.processor_of(s_inst.function_id, msg.src_thread)
                p_dst = mapping.processor_of(d_inst.function_id, msg.dst_thread)
                if p_src == p_dst:
                    t = self.cpu_specs[p_src].copy_time(msg.nbytes)
                else:
                    same_board = self.platform.board_of(p_src) == self.platform.board_of(p_dst)
                    t = self.platform.fabric.link_for(same_board).transfer_time(msg.nbytes)
                per_dst[msg.dst_thread] = per_dst.get(msg.dst_thread, 0.0) + t
            if per_dst:
                total += max(per_dst.values())
        return total

    def fitness(self, mapping: Mapping) -> float:
        """Scalar score, lower is better."""
        return self.breakdown(mapping).total(self.w_balance, self.w_comm, self.w_latency)
