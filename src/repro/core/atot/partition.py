"""AToT partitioning and mapping: the GA wired to the mapping problem.

Chromosome encoding: one gene per (function instance, thread) slot in
deterministic ID order; gene value = processor index.  The GA is seeded with
the round-robin layout so the optimiser can only improve on the naive
mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import random

from ...machine.platforms import PlatformSpec
from ..model.application import ApplicationModel
from ..model.mapping import Mapping, round_robin_mapping
from .ga import GaConfig, GaResult, genetic_algorithm
from .objectives import CostBreakdown, MappingObjective

__all__ = ["MappingProblem", "AtotResult", "optimize_mapping", "random_mapping"]


@dataclass
class AtotResult:
    """Optimised mapping plus the objective breakdowns for reporting."""

    mapping: Mapping
    fitness: float
    breakdown: CostBreakdown
    ga: GaResult
    baseline_fitness: float  # the round-robin seed's score

    @property
    def improvement(self) -> float:
        """Fractional improvement over round-robin (0 = no better)."""
        if self.baseline_fitness == 0:
            return 0.0
        return 1.0 - self.fitness / self.baseline_fitness


class MappingProblem:
    """Chromosome <-> Mapping translation for one application/platform pair."""

    def __init__(self, app: ApplicationModel, platform: PlatformSpec, nodes: int,
                 **objective_kwargs):
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        self.app = app
        self.platform = platform
        self.nodes = nodes
        self.slots: List[Tuple[int, int]] = []
        for inst in app.function_instances():
            for t in range(inst.threads):
                self.slots.append((inst.function_id, t))
        if not self.slots:
            raise ValueError("application has no function threads to map")
        self.objective = MappingObjective(app, platform, nodes, **objective_kwargs)

    def decode(self, chromosome: Tuple[int, ...]) -> Mapping:
        if len(chromosome) != len(self.slots):
            raise ValueError(
                f"chromosome length {len(chromosome)} != {len(self.slots)} slots"
            )
        mapping = Mapping()
        for (fid, t), proc in zip(self.slots, chromosome):
            mapping.assign(fid, t, int(proc))
        return mapping

    def encode(self, mapping: Mapping) -> Tuple[int, ...]:
        return tuple(mapping.processor_of(fid, t) for fid, t in self.slots)

    def fitness(self, chromosome: Tuple[int, ...]) -> float:
        return self.objective.fitness(self.decode(chromosome))


def optimize_mapping(
    app: ApplicationModel,
    platform: PlatformSpec,
    nodes: int,
    config: GaConfig = GaConfig(),
    latency_constraint: Optional[float] = None,
    **objective_kwargs,
) -> AtotResult:
    """Run the AToT GA and return the best mapping found."""
    if latency_constraint is not None:
        objective_kwargs["latency_constraint"] = latency_constraint
    problem = MappingProblem(app, platform, nodes, **objective_kwargs)
    seed_chromosome = problem.encode(round_robin_mapping(app, nodes))
    result = genetic_algorithm(
        gene_count=len(problem.slots),
        gene_values=nodes,
        fitness=problem.fitness,
        config=config,
        seeds=[seed_chromosome],
    )
    best_mapping = problem.decode(result.best)
    return AtotResult(
        mapping=best_mapping,
        fitness=result.best_fitness,
        breakdown=problem.objective.breakdown(best_mapping),
        ga=result,
        baseline_fitness=problem.fitness(seed_chromosome),
    )


def random_mapping(app: ApplicationModel, nodes: int, seed: int = 0) -> Mapping:
    """Uniformly random thread placement (the ablation baseline)."""
    rng = random.Random(seed)
    mapping = Mapping()
    for inst in app.function_instances():
        for t in range(inst.threads):
            mapping.assign(inst.function_id, t, rng.randrange(nodes))
    return mapping
