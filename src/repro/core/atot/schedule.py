"""CPU/bus list scheduler.

The last of AToT's §1.1 capabilities: given a mapped application, produce a
static schedule — start/finish instants for every function thread and every
inter-processor message — honouring dataflow dependencies, processor
exclusivity, and per-link bus exclusivity.  The schedule's makespan is the
analytic single-iteration latency AToT trades against; the Visualizer can
render the same structure as a Gantt chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...machine.platforms import PlatformSpec
from ..model.application import ApplicationModel
from ..model.mapping import Mapping
from ..runtime.striping import message_plan
from .objectives import estimate_thread_flops, _in_port_specs

__all__ = ["ScheduledTask", "ScheduledTransfer", "Schedule", "list_schedule"]


@dataclass(frozen=True)
class ScheduledTask:
    function: str
    function_id: int
    thread: int
    processor: int
    start: float
    finish: float


@dataclass(frozen=True)
class ScheduledTransfer:
    buffer: str
    src_processor: int
    dst_processor: int
    nbytes: int
    start: float
    finish: float


@dataclass
class Schedule:
    tasks: List[ScheduledTask] = field(default_factory=list)
    transfers: List[ScheduledTransfer] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        ends = [t.finish for t in self.tasks] + [t.finish for t in self.transfers]
        return max(ends) if ends else 0.0

    def processor_utilization(self, processors: int) -> List[float]:
        """Busy fraction per processor over the makespan."""
        span = self.makespan
        if span == 0:
            return [0.0] * processors
        busy = [0.0] * processors
        for t in self.tasks:
            busy[t.processor] += t.finish - t.start
        return [b / span for b in busy]

    def tasks_on(self, processor: int) -> List[ScheduledTask]:
        return sorted(
            (t for t in self.tasks if t.processor == processor),
            key=lambda t: t.start,
        )


def list_schedule(
    app: ApplicationModel,
    mapping: Mapping,
    platform: PlatformSpec,
    nodes: int,
) -> Schedule:
    """Static list schedule of one iteration.

    Processes functions in topological order; each thread starts when its
    processor is free and all its inbound transfers have completed; each
    transfer starts when its source thread finished and its link is free.
    """
    cpu = platform.cpu
    in_specs = _in_port_specs(app)
    instances = app.function_instances()
    by_block = {id(i.block): i for i in instances}

    proc_free: Dict[int, float] = {}
    link_free: Dict[Tuple[int, int], float] = {}
    thread_finish: Dict[Tuple[int, int], float] = {}
    # (dst_fid, dst_thread) -> latest inbound-transfer completion
    inbound_ready: Dict[Tuple[int, int], float] = {}

    schedule = Schedule()

    # Pre-compute arc plans grouped by destination function.
    arcs = []
    for src, dst in app.flattened_arcs():
        s_inst = by_block[id(src.block)]
        d_inst = by_block[id(dst.block)]
        plan = message_plan(
            src.datatype.shape, src.datatype.elem_bytes,
            src.striping, s_inst.threads, dst.striping, d_inst.threads,
        )
        arcs.append((s_inst, d_inst, f"{s_inst.path}.{src.name}->{d_inst.path}.{dst.name}", plan))

    for inst in app.topological_order():
        # 1) schedule inbound transfers for this function's threads
        for s_inst, d_inst, name, plan in arcs:
            if d_inst.function_id != inst.function_id:
                continue
            for msg in plan:
                src_key = (s_inst.function_id, msg.src_thread)
                p_src = mapping.processor_of(*src_key)
                p_dst = mapping.processor_of(d_inst.function_id, msg.dst_thread)
                ready = thread_finish.get(src_key, 0.0)
                if p_src == p_dst:
                    duration = cpu.copy_time(msg.nbytes)
                    start = max(ready, proc_free.get(p_src, 0.0))
                    finish = start + duration
                    proc_free[p_src] = finish
                else:
                    same_board = platform.board_of(p_src) == platform.board_of(p_dst)
                    duration = platform.fabric.link_for(same_board).transfer_time(msg.nbytes)
                    lk = (min(p_src, p_dst), max(p_src, p_dst))
                    start = max(ready, link_free.get(lk, 0.0))
                    finish = start + duration
                    link_free[lk] = finish
                schedule.transfers.append(
                    ScheduledTransfer(name, p_src, p_dst, msg.nbytes, start, finish)
                )
                dst_key = (d_inst.function_id, msg.dst_thread)
                inbound_ready[dst_key] = max(inbound_ready.get(dst_key, 0.0), finish)

        # 2) schedule the function's threads
        for t in range(inst.threads):
            proc = mapping.processor_of(inst.function_id, t)
            duration = cpu.compute_time(
                estimate_thread_flops(app, inst, t, in_specs)
            )
            start = max(inbound_ready.get((inst.function_id, t), 0.0),
                        proc_free.get(proc, 0.0))
            finish = start + duration
            proc_free[proc] = finish
            thread_finish[(inst.function_id, t)] = finish
            schedule.tasks.append(
                ScheduledTask(inst.path, inst.function_id, t, proc, start, finish)
            )
    return schedule
