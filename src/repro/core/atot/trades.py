"""Architecture trade studies: AToT's hardware-selection half.

§1.1: *"Once the performance requirements, application and hardware of the
system are captured in the Designer, the information is sent to AToT. AToT
will analyze and interpret the captured information, which drives
optimization and trade-off activities ... After the architecture trades
process has determined a target hardware architecture, the genetic
algorithm based partitioning and mapping capability of AToT assigns the
application tasks ..."*

A trade study enumerates candidate hardware architectures (platform x node
count), optimises the mapping for each, scores them against the captured
performance requirements (latency / period / cost / power budgets), and
returns the candidates with the Pareto-optimal ones marked.  Hardware cost
and power figures are per-node attributes of the candidate descriptor (the
"trade information" the Designer captures alongside the shelves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...machine.platforms import PLATFORMS, get_platform
from ..model.application import ApplicationModel, ModelError
from ..model.mapping import Mapping
from .ga import GaConfig
from .partition import optimize_mapping

__all__ = [
    "Requirements",
    "CandidateArchitecture",
    "TradeResult",
    "architecture_trade_study",
    "DEFAULT_NODE_ECONOMICS",
]

#: per-node (cost k$, power W) figures for the vendor boards, 1999 list-ish.
DEFAULT_NODE_ECONOMICS: Dict[str, Tuple[float, float]] = {
    "CSPI": (12.0, 25.0),
    "Mercury": (18.0, 30.0),
    "SKY": (16.0, 28.0),
    "SIGI": (8.0, 22.0),
}


@dataclass(frozen=True)
class Requirements:
    """The captured performance requirements driving the trade."""

    max_latency: Optional[float] = None   # seconds per data set
    max_period: Optional[float] = None    # seconds between data sets
    max_cost: Optional[float] = None      # k$
    max_power: Optional[float] = None     # watts
    max_nodes: Optional[int] = None

    def __post_init__(self):
        for name in ("max_latency", "max_period", "max_cost", "max_power"):
            v = getattr(self, name)
            if v is not None and v <= 0:
                raise ValueError(f"{name} must be positive")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError("max_nodes must be >= 1")


@dataclass
class CandidateArchitecture:
    """One evaluated (platform, node count) point of the trade space."""

    platform: str
    nodes: int
    mapping: Mapping = field(repr=False)
    est_latency: float = 0.0
    est_period: float = 0.0
    cost: float = 0.0
    power: float = 0.0
    meets_requirements: bool = True
    violations: List[str] = field(default_factory=list)
    pareto_optimal: bool = False

    def dominates(self, other: "CandidateArchitecture") -> bool:
        """Pareto dominance over (latency, cost, power): no worse on all,
        strictly better on at least one."""
        mine = (self.est_latency, self.cost, self.power)
        theirs = (other.est_latency, other.cost, other.power)
        return all(a <= b for a, b in zip(mine, theirs)) and mine != theirs


@dataclass
class TradeResult:
    """All evaluated candidates plus the recommendation."""

    candidates: List[CandidateArchitecture]
    requirements: Requirements

    @property
    def feasible(self) -> List[CandidateArchitecture]:
        return [c for c in self.candidates if c.meets_requirements]

    @property
    def pareto(self) -> List[CandidateArchitecture]:
        return [c for c in self.candidates if c.pareto_optimal]

    @property
    def recommended(self) -> Optional[CandidateArchitecture]:
        """Cheapest feasible Pareto point (ties broken by latency)."""
        pool = [c for c in self.feasible if c.pareto_optimal] or self.feasible
        if not pool:
            return None
        return min(pool, key=lambda c: (c.cost, c.est_latency))


def _thread_counts_fit(app: ApplicationModel, nodes: int) -> bool:
    """Striped extents must be divisible-ish: require threads <= extent."""
    for inst in app.function_instances():
        for port in inst.block.ports.values():
            if port.striping.is_striped:
                extent = port.datatype.shape[port.striping.axis]
                if inst.threads > extent:
                    return False
    return True


def architecture_trade_study(
    app: ApplicationModel,
    requirements: Requirements = Requirements(),
    platforms: Optional[Sequence[str]] = None,
    node_counts: Sequence[int] = (2, 4, 8, 16),
    node_economics: Optional[Dict[str, Tuple[float, float]]] = None,
    ga_config: GaConfig = GaConfig(population=30, generations=15),
    app_builder=None,
) -> TradeResult:
    """Evaluate the (platform x node count) trade space for an application.

    ``app_builder(nodes) -> ApplicationModel`` optionally rebuilds the
    application per node count (data-parallel designs size their thread
    counts to the machine); when omitted the fixed ``app`` is used for every
    candidate and must already be mappable onto each node count.
    """
    platforms = list(platforms or sorted(PLATFORMS))
    economics = dict(DEFAULT_NODE_ECONOMICS)
    economics.update(node_economics or {})
    candidates: List[CandidateArchitecture] = []

    for platform_name in platforms:
        platform = get_platform(platform_name)
        for nodes in node_counts:
            if requirements.max_nodes is not None and nodes > requirements.max_nodes:
                continue
            candidate_app = app_builder(nodes) if app_builder else app
            if not _thread_counts_fit(candidate_app, nodes):
                continue
            try:
                atot = optimize_mapping(candidate_app, platform, nodes, config=ga_config)
            except ModelError:
                continue
            latency = atot.breakdown.est_latency
            unit_cost, unit_power = economics.get(platform.name, (10.0, 25.0))
            candidate = CandidateArchitecture(
                platform=platform.name,
                nodes=nodes,
                mapping=atot.mapping,
                est_latency=latency,
                # steady-state period bounded by the busiest stage; the
                # critical-path estimate is a safe (pessimistic) proxy.
                est_period=latency,
                cost=unit_cost * nodes,
                power=unit_power * nodes,
            )
            _check_requirements(candidate, requirements)
            candidates.append(candidate)

    for c in candidates:
        c.pareto_optimal = not any(other.dominates(c) for other in candidates)
    return TradeResult(candidates=candidates, requirements=requirements)


def _check_requirements(c: CandidateArchitecture, req: Requirements) -> None:
    checks = [
        ("latency", req.max_latency, c.est_latency),
        ("period", req.max_period, c.est_period),
        ("cost", req.max_cost, c.cost),
        ("power", req.max_power, c.power),
    ]
    for name, limit, value in checks:
        if limit is not None and value > limit:
            c.violations.append(f"{name} {value:.4g} exceeds {limit:.4g}")
    c.meets_requirements = not c.violations


def format_trade_study(result: TradeResult) -> str:
    """Text rendering of a trade study."""
    lines = [
        "AToT architecture trade study",
        f"{'platform':<10s}{'nodes':>6s}{'latency':>12s}{'cost k$':>9s}"
        f"{'power W':>9s}{'feasible':>10s}{'pareto':>8s}",
    ]
    for c in sorted(result.candidates, key=lambda c: (c.platform, c.nodes)):
        lines.append(
            f"{c.platform:<10s}{c.nodes:>6d}{c.est_latency * 1e3:>10.2f}ms"
            f"{c.cost:>9.0f}{c.power:>9.0f}"
            f"{'yes' if c.meets_requirements else 'NO':>10s}"
            f"{'*' if c.pareto_optimal else '':>8s}"
        )
    rec = result.recommended
    if rec is not None:
        lines.append(
            f"recommended: {rec.platform} x {rec.nodes} nodes "
            f"({rec.est_latency * 1e3:.2f} ms, {rec.cost:.0f} k$)"
        )
    else:
        lines.append("recommended: none (no feasible candidate)")
    return "\n".join(lines)


__all__.append("format_trade_study")
