"""Glue-code generation: Alter scripts + driver producing run-time source files."""

from .generator import GlueModule, generate_glue, load_glue_source
from .scripts import ALL_SCRIPTS
from .c_backend import C_SCRIPTS, generate_c_glue

__all__ = [
    "GlueModule",
    "generate_glue",
    "load_glue_source",
    "ALL_SCRIPTS",
    "C_SCRIPTS",
    "generate_c_glue",
]
