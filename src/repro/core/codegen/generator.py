"""Glue-code generator driver.

Figure 1.0 of the paper: *"The SAGE glue-code generator gains access into the
internal SAGE design tool environment, traverses objects in the models to
filter relevant information, and then outputs the information in formats
particular to the SAGE run-time source files."*

:func:`generate_glue` runs the Alter scripts of
:mod:`repro.core.codegen.scripts` against a validated, mapped application
model and returns a :class:`GlueModule`: the generated Python source text
plus a loader that materialises it as a namespace the run-time executes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...perf.cache import named_cache
from ..alter import Interpreter
from ..model.application import ApplicationModel, ModelError
from ..model.mapping import Mapping
from ..model.validation import validate_application
from .scripts import ALL_SCRIPTS

__all__ = ["GlueModule", "generate_glue", "glue_fingerprint"]

_REQUIRED_GLOBALS = (
    "MODEL_NAME",
    "NUM_PROCESSORS",
    "FUNCTION_TABLE",
    "LOGICAL_BUFFERS",
    "THREAD_MAP",
    "PROBES",
    "EXECUTION_ORDER",
    "OPTIMIZE_BUFFERS",
)


@dataclass
class GlueModule:
    """Generated glue source plus its loaded namespace."""

    model_name: str
    source: str
    namespace: Dict[str, Any] = field(repr=False, default_factory=dict)

    @property
    def function_table(self) -> List[dict]:
        return self.namespace["FUNCTION_TABLE"]

    @property
    def logical_buffers(self) -> List[dict]:
        return self.namespace["LOGICAL_BUFFERS"]

    @property
    def thread_map(self) -> Dict[str, int]:
        return self.namespace["THREAD_MAP"]

    @property
    def probes(self) -> List[str]:
        return self.namespace["PROBES"]

    @property
    def execution_order(self) -> List[int]:
        return self.namespace["EXECUTION_ORDER"]

    @property
    def num_processors(self) -> int:
        return self.namespace["NUM_PROCESSORS"]

    @property
    def optimize_buffers(self) -> bool:
        return self.namespace["OPTIMIZE_BUFFERS"]

    def processor_of(self, function_id: int, thread: int) -> int:
        return self.thread_map[f"{function_id}:{thread}"]

    def save(self, path: str) -> None:
        """Write the generated source to a file (the paper's 'Source files')."""
        with open(path, "w") as fh:
            fh.write(self.source)


#: fingerprint -> generated (and analysis-approved) glue source text.  The
#: namespace is still exec'd fresh per call: the run-time mutates its tables.
_GLUE_CACHE = named_cache("codegen.glue_source", maxsize=128)
#: source text -> compiled code object (compilation dominates re-exec cost).
_CODE_CACHE = named_cache("codegen.glue_code", maxsize=128)


def load_glue_source(source: str) -> Dict[str, Any]:
    """Exec generated glue source into a fresh namespace and sanity-check it."""
    namespace: Dict[str, Any] = {}
    code = _CODE_CACHE.get(
        source, lambda: compile(source, filename="<sage-glue>", mode="exec")
    )
    exec(code, namespace)  # noqa: S102 - the point of a code generator
    missing = [g for g in _REQUIRED_GLOBALS if g not in namespace]
    if missing:
        raise ModelError(f"generated glue is missing globals: {missing}")
    return namespace


def glue_fingerprint(
    app: ApplicationModel,
    mapping: Mapping,
    num_processors: int,
    optimize_buffers: bool,
    extra_scripts: Optional[List[tuple]] = None,
) -> str:
    """Content digest of everything the generated glue depends on.

    Serialises the full model and mapping, so mutating either (even in
    place) yields a new fingerprint — the glue cache can never serve stale
    source for changed inputs.
    """
    from ..model.serialization import application_to_dict

    blob = json.dumps(
        {
            "app": application_to_dict(app),
            "mapping": sorted((repr(k), v) for k, v in mapping.items()),
            "nprocs": num_processors,
            "optimize_buffers": bool(optimize_buffers),
            "extra": [(n, s) for n, s in (extra_scripts or [])],
        },
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha1(blob.encode()).hexdigest()


def generate_glue(
    app: ApplicationModel,
    mapping: Mapping,
    num_processors: int,
    optimize_buffers: bool = False,
    validate: bool = True,
    analyze: bool = True,
    extra_scripts: Optional[List[tuple]] = None,
) -> GlueModule:
    """Run the Alter glue scripts over a mapped model.

    Parameters
    ----------
    app:
        The application model (Designer output).
    mapping:
        Thread-to-processor assignment (AToT output or a baseline mapping).
    num_processors:
        Processor count of the target hardware model.
    optimize_buffers:
        Emit the improved buffer policy (§4: the work "currently underway" to
        reach 90 % of hand-coded performance — shared logical buffers instead
        of unique ones per function).
    validate:
        Run Designer validation before generating.
    analyze:
        Run the SAGE Verifier (:mod:`repro.analysis`) strict mode: lint each
        Alter script before it executes and reject models whose derived
        communication schedule deadlocks or whose buffers carry hazards.
    extra_scripts:
        Additional ``(name, alter_source)`` pairs appended after the standard
        scripts — the hook user-defined codegen extensions plug into.

    Caching
    -------
    Generation (validation, static analysis, Alter execution) is memoized on
    a content fingerprint of every input (:func:`glue_fingerprint`) plus the
    ``validate``/``analyze`` flags: a hit means this exact model/mapping
    already generated — and, when analysis was requested, already passed the
    Verifier — so the cached source is reused.  The namespace is *always*
    exec'd fresh, because the run-time treats its tables as private mutable
    state.  ``repro.perf.cache.clear_all_caches()`` invalidates explicitly.
    """
    key = (
        glue_fingerprint(app, mapping, num_processors, optimize_buffers,
                         extra_scripts),
        bool(validate),
        bool(analyze),
    )
    source = _GLUE_CACHE.lookup(key)
    if source is not None:
        namespace = load_glue_source(source)
        _cross_check(app, namespace)
        return GlueModule(model_name=app.name, source=source, namespace=namespace)

    if validate:
        validate_application(app, strict=True)
    mapping.validate(app, processor_count=num_processors)

    interp = Interpreter()
    interp.globals.define("model", app)
    interp.globals.define("mapping", mapping)
    interp.globals.define("nprocs", num_processors)
    interp.globals.define("options", {"optimize_buffers": optimize_buffers})

    if analyze:
        # Late import: repro.analysis imports the scripts module from here.
        from ...analysis.alter_lint import GLUE_GLOBALS, lint_script, script_defines

        known = set(GLUE_GLOBALS)
        for name, script in list(ALL_SCRIPTS) + list(extra_scripts or []):
            errors = [
                f for f in lint_script(script, name, tuple(sorted(known)))
                if f.severity == "error"
            ]
            if errors:
                rendered = "\n".join(f.render() for f in errors)
                raise ModelError(
                    f"glue script {name!r} failed static analysis:\n{rendered}"
                )
            known.update(script_defines(script))

        from ...analysis.buffers import check_buffer_hazards, logical_buffer_specs
        from ...analysis.comm import check_comm_schedule, derive_comm_schedule

        schedule = derive_comm_schedule(app, mapping, num_processors)
        problems = [
            f for f in check_comm_schedule(schedule) if f.severity == "error"
        ]
        try:
            execution_order = [i.function_id for i in app.topological_order()]
        except ModelError:
            execution_order = None
        problems += [
            f
            for f in check_buffer_hazards(
                logical_buffer_specs(app),
                mapping=mapping,
                nprocs=num_processors,
                execution_order=execution_order,
            )
            if f.severity == "error"
        ]
        if problems:
            rendered = "\n".join(f.render() for f in problems)
            raise ModelError(
                f"model {app.name!r} failed static analysis:\n{rendered}"
            )

    for name, script in list(ALL_SCRIPTS) + list(extra_scripts or []):
        try:
            interp.run(script)
        except Exception as exc:
            raise ModelError(f"glue script {name!r} failed: {exc}") from exc

    source = interp.output()
    namespace = load_glue_source(source)
    _cross_check(app, namespace)
    _GLUE_CACHE.put(key, source)
    return GlueModule(model_name=app.name, source=source, namespace=namespace)


def _cross_check(app: ApplicationModel, namespace: Dict[str, Any]) -> None:
    """Defence in depth: the generated tables must match the model."""
    instances = app.function_instances()
    table = namespace["FUNCTION_TABLE"]
    if [e["id"] for e in table] != [i.function_id for i in instances]:
        raise ModelError("generated function table IDs do not match the model")
    if len(namespace["LOGICAL_BUFFERS"]) != len(app.flattened_arcs()):
        raise ModelError("generated buffer count does not match the model arcs")
    want_threads = sum(i.threads for i in instances)
    if len(namespace["THREAD_MAP"]) != want_threads:
        raise ModelError("generated thread map does not cover all threads")
