"""Designer model layer: application, data-type, and hardware editors."""

from .datatypes import DataType, REPLICATED, STANDARD_TYPES, Striping, cyclic, striped
from .application import (
    IN,
    OUT,
    ApplicationModel,
    Arc,
    Block,
    CompositeBlock,
    FunctionBlock,
    FunctionInstance,
    ModelError,
    ModelObject,
    Port,
)
from .hardware import (
    BoardElement,
    HardwareModel,
    ProcessorElement,
    cspi_hardware,
    from_platform,
)
from .mapping import (
    Mapping,
    block_mapping,
    round_robin_mapping,
    shrink_mapping,
    single_node_mapping,
)
from .shelves import Shelf, hardware_shelf, software_shelf
from .serialization import (
    application_from_dict,
    application_to_dict,
    hardware_from_dict,
    hardware_to_dict,
    load_design,
    save_design,
)
from .text_format import TextFormatError, parse_application, render_application
from .validation import ValidationIssue, validate_application

__all__ = [
    "DataType",
    "REPLICATED",
    "STANDARD_TYPES",
    "Striping",
    "cyclic",
    "striped",
    "IN",
    "OUT",
    "ApplicationModel",
    "Arc",
    "Block",
    "CompositeBlock",
    "FunctionBlock",
    "FunctionInstance",
    "ModelError",
    "ModelObject",
    "Port",
    "BoardElement",
    "HardwareModel",
    "ProcessorElement",
    "cspi_hardware",
    "from_platform",
    "Mapping",
    "block_mapping",
    "round_robin_mapping",
    "shrink_mapping",
    "single_node_mapping",
    "Shelf",
    "hardware_shelf",
    "software_shelf",
    "ValidationIssue",
    "validate_application",
    "application_from_dict",
    "application_to_dict",
    "hardware_from_dict",
    "hardware_to_dict",
    "load_design",
    "save_design",
    "TextFormatError",
    "parse_application",
    "render_application",
]
