"""Application editor: hierarchical dataflow graphs of functional blocks.

§1.1: *"The application editor is used to build a graphical view or model of
the application by connecting functional or behavioral blocks (hierarchical)
in a data flow manner through user defined or COTS functional libraries."*

The object graph here is what the Alter glue-code generator traverses:
blocks own ports, arcs connect ports, composite blocks nest.  Every object
carries a property dictionary (``get_property`` / ``set_property``), which is
the surface Alter scripts read — mirroring the DoME model objects the real
tool manipulated.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple

from .datatypes import DataType, REPLICATED, Striping

__all__ = [
    "ModelObject",
    "Port",
    "Block",
    "FunctionBlock",
    "CompositeBlock",
    "Arc",
    "ApplicationModel",
    "FunctionInstance",
    "ModelError",
    "IN",
    "OUT",
]

IN = "in"
OUT = "out"


class ModelError(ValueError):
    """Raised for structurally invalid model operations."""


class ModelObject:
    """Base for every model element: a typed object with named properties."""

    _ids = itertools.count()

    def __init__(self, name: str):
        if not name or "/" in name:
            raise ModelError(f"invalid object name {name!r}")
        self.name = name
        self.object_id = next(ModelObject._ids)
        self._properties: Dict[str, Any] = {}

    @property
    def object_type(self) -> str:
        return type(self).__name__

    def get_property(self, key: str, default: Any = None) -> Any:
        return self._properties.get(key, default)

    def set_property(self, key: str, value: Any) -> None:
        self._properties[key] = value

    def properties(self) -> Dict[str, Any]:
        return dict(self._properties)

    def __repr__(self):
        return f"<{self.object_type} {self.name!r}>"


class Port(ModelObject):
    """A function's sending or receiving point for data-flow communication (§2)."""

    def __init__(
        self,
        name: str,
        direction: str,
        datatype: DataType,
        striping: Striping = REPLICATED,
    ):
        super().__init__(name)
        if direction not in (IN, OUT):
            raise ModelError(f"port direction must be 'in' or 'out', got {direction!r}")
        self.direction = direction
        self.datatype = datatype
        self.striping = striping
        self.block: Optional["Block"] = None

    @property
    def qualified_name(self) -> str:
        prefix = self.block.name if self.block is not None else "?"
        return f"{prefix}.{self.name}"


class Block(ModelObject):
    """Common base of primitive and composite blocks."""

    def __init__(self, name: str):
        super().__init__(name)
        self.ports: Dict[str, Port] = {}
        self.parent: Optional["CompositeBlock"] = None

    def add_port(self, port: Port) -> Port:
        if port.name in self.ports:
            raise ModelError(f"block {self.name!r} already has port {port.name!r}")
        port.block = self
        self.ports[port.name] = port
        return port

    def port(self, name: str) -> Port:
        try:
            return self.ports[name]
        except KeyError:
            raise ModelError(
                f"block {self.name!r} has no port {name!r}; has {sorted(self.ports)}"
            ) from None

    def in_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == IN]

    def out_ports(self) -> List[Port]:
        return [p for p in self.ports.values() if p.direction == OUT]

    @property
    def path(self) -> str:
        """Hierarchical dotted path from the model root."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}.{self.name}"


class FunctionBlock(Block):
    """A primitive behavioural block bound to a shelf kernel.

    ``threads`` is the parallelisation degree: striped ports divide data
    evenly among the threads, replicated ports give each thread a full copy
    (§2).  ``params`` are passed to the kernel at execution time.
    """

    def __init__(
        self,
        name: str,
        kernel: str,
        threads: int = 1,
        params: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(name)
        if threads < 1:
            raise ModelError(f"threads must be >= 1, got {threads}")
        self.kernel = kernel
        self.threads = threads
        self.params = dict(params or {})

    def add_in(self, name: str, datatype: DataType, striping: Striping = REPLICATED) -> Port:
        return self.add_port(Port(name, IN, datatype, striping))

    def add_out(self, name: str, datatype: DataType, striping: Striping = REPLICATED) -> Port:
        return self.add_port(Port(name, OUT, datatype, striping))


class CompositeBlock(Block):
    """A hierarchical block containing a sub-graph.

    Exported ports are *aliases* onto ports of inner blocks, so flattening is
    a pure renaming (no data movement is implied by the hierarchy itself).
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.children: Dict[str, Block] = {}
        self.arcs: List["Arc"] = []
        self._exports: Dict[str, Port] = {}  # exported port name -> inner port

    def add_block(self, block: Block) -> Block:
        if block.name in self.children:
            raise ModelError(f"composite {self.name!r} already contains {block.name!r}")
        block.parent = self
        self.children[block.name] = block
        return block

    def connect(self, src: Port, dst: Port) -> "Arc":
        arc = Arc(src, dst)
        self._check_arc_endpoints(arc)
        self.arcs.append(arc)
        return arc

    def _check_arc_endpoints(self, arc: "Arc") -> None:
        for port, want in ((arc.src, OUT), (arc.dst, IN)):
            if port.block is None or (
                port.block is not self
                and port.block.name not in self.children
            ):
                raise ModelError(
                    f"arc endpoint {port.qualified_name} is not inside composite {self.name!r}"
                )
            if port.direction != want:
                raise ModelError(
                    f"arc endpoint {port.qualified_name} has direction "
                    f"{port.direction!r}, expected {want!r}"
                )

    def export(self, inner: Port, as_name: Optional[str] = None) -> Port:
        """Expose an inner block's port on this composite's boundary."""
        name = as_name or inner.name
        outer = Port(name, inner.direction, inner.datatype, inner.striping)
        self.add_port(outer)
        self._exports[name] = inner
        return outer

    def resolve_export(self, name: str) -> Port:
        try:
            return self._exports[name]
        except KeyError:
            raise ModelError(f"composite {self.name!r} exports no port {name!r}") from None


class Arc(ModelObject):
    """A directed data-flow connection between an OUT port and an IN port."""

    def __init__(self, src: Port, dst: Port):
        super().__init__(f"{src.qualified_name}->{dst.qualified_name}")
        if src.datatype.dtype != dst.datatype.dtype:
            raise ModelError(
                f"arc {self.name}: element type mismatch "
                f"{src.datatype.dtype} vs {dst.datatype.dtype}"
            )
        self.src = src
        self.dst = dst


class FunctionInstance:
    """A flattened primitive function occurrence with its Designer-assigned ID.

    §2: *"SAGE Designer orders all function instances and assigns them IDs
    from 0..N-1. The SAGE runtime executes functions based on this ID, which
    is the index of this descriptor into the function table."*
    """

    def __init__(self, function_id: int, path: str, block: FunctionBlock):
        self.function_id = function_id
        self.path = path
        self.block = block

    @property
    def threads(self) -> int:
        return self.block.threads

    @property
    def kernel(self) -> str:
        return self.block.kernel

    def __repr__(self):
        return f"<FunctionInstance #{self.function_id} {self.path}>"


class ApplicationModel(CompositeBlock):
    """The top-level application graph (the Designer document root)."""

    def __init__(self, name: str):
        super().__init__(name)

    # -- flattening ---------------------------------------------------------
    def function_instances(self) -> List[FunctionInstance]:
        """All primitive blocks in deterministic (insertion, depth-first)
        order, with IDs assigned 0..N-1."""
        flat: List[Tuple[str, FunctionBlock]] = []

        def walk(composite: CompositeBlock, prefix: str):
            for child in composite.children.values():
                path = f"{prefix}{child.name}"
                if isinstance(child, CompositeBlock):
                    walk(child, path + ".")
                elif isinstance(child, FunctionBlock):
                    flat.append((path, child))
                else:  # pragma: no cover - no other block kinds exist
                    raise ModelError(f"unknown block kind {type(child).__name__}")

        walk(self, "")
        return [FunctionInstance(i, path, blk) for i, (path, blk) in enumerate(flat)]

    def instance_by_path(self, path: str) -> FunctionInstance:
        for inst in self.function_instances():
            if inst.path == path:
                return inst
        raise ModelError(f"no function instance at path {path!r}")

    # -- arc flattening -------------------------------------------------------
    def flattened_arcs(self) -> List[Tuple[Port, Port]]:
        """All arcs with composite boundaries resolved to primitive ports."""
        out: List[Tuple[Port, Port]] = []

        def resolve(port: Port, outward: bool) -> Port:
            block = port.block
            while isinstance(block, CompositeBlock) and not isinstance(
                block, ApplicationModel
            ):
                inner = block.resolve_export(port.name)
                port = inner
                block = port.block
                # Re-resolve if the inner port is itself on a composite.
                if not isinstance(block, CompositeBlock):
                    break
            return port

        def walk(composite: CompositeBlock):
            for arc in composite.arcs:
                src = resolve(arc.src, outward=False)
                dst = resolve(arc.dst, outward=True)
                out.append((src, dst))
            for child in composite.children.values():
                if isinstance(child, CompositeBlock):
                    walk(child)

        walk(self)
        return out

    # -- dataflow ordering ------------------------------------------------------
    def topological_order(self) -> List[FunctionInstance]:
        """Function instances in dataflow order; raises on cycles."""
        instances = self.function_instances()
        by_block = {id(inst.block): inst for inst in instances}
        succs: Dict[int, List[int]] = {inst.function_id: [] for inst in instances}
        indeg: Dict[int, int] = {inst.function_id: 0 for inst in instances}
        for src, dst in self.flattened_arcs():
            s = by_block.get(id(src.block))
            d = by_block.get(id(dst.block))
            if s is None or d is None:
                raise ModelError(
                    f"arc {src.qualified_name}->{dst.qualified_name} references "
                    "a block outside the model"
                )
            succs[s.function_id].append(d.function_id)
            indeg[d.function_id] += 1
        ready = [i for i in sorted(indeg) if indeg[i] == 0]
        order: List[int] = []
        while ready:
            fid = ready.pop(0)
            order.append(fid)
            for nxt in succs[fid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    # Keep deterministic ID ordering among newly-ready nodes.
                    ready.append(nxt)
                    ready.sort()
        if len(order) != len(instances):
            cyclic = sorted(set(indeg) - set(order))
            raise ModelError(f"dataflow graph has a cycle involving function ids {cyclic}")
        by_id = {inst.function_id: inst for inst in instances}
        return [by_id[i] for i in order]
