"""Data-type editor: element types, matrix shapes, and striping specifications.

§1.1: *"The data type editor is used to define the various data types and
striping and parallelization relationships for the different functions in the
application editor."*  §2: *"A function port can be defined in the model to be
of type replicated or striped."*

We extend the paper's replicated/striped dichotomy with the stripe *axis*,
which is what makes the corner turn expressible as a striping relationship:
an arc whose source port stripes axis 0 (row blocks) and whose destination
port stripes axis 1 (column blocks) requires an all-to-all redistribution —
exactly the data movement the distributed corner-turn benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["DataType", "Striping", "REPLICATED", "striped", "STANDARD_TYPES"]


@dataclass(frozen=True)
class DataType:
    """A typed, shaped payload flowing along an arc.

    Attributes
    ----------
    name:
        Shelf name, e.g. ``"cfloat_matrix"``.
    dtype:
        Numpy element type string (``"complex64"``, ``"float32"``, ...).
    shape:
        Logical (un-striped) shape.  Both dimensions of the benchmark
        matrices (256/512/1024 square) are expressed here.
    """

    name: str
    dtype: str
    shape: Tuple[int, ...]

    def __post_init__(self):
        np.dtype(self.dtype)  # raises on bad type names
        if any(d <= 0 for d in self.shape):
            raise ValueError(f"shape dimensions must be positive, got {self.shape}")

    @property
    def elem_bytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize)

    @property
    def total_elems(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def total_bytes(self) -> int:
        """Total logical buffer size *before striding* (§2)."""
        return self.total_elems * self.elem_bytes

    def with_shape(self, shape: Tuple[int, ...]) -> "DataType":
        return DataType(self.name, self.dtype, tuple(shape))

    def empty(self) -> np.ndarray:
        return np.empty(self.shape, dtype=self.dtype)


@dataclass(frozen=True)
class Striping:
    """How a port's data is laid out across the threads of its function.

    ``kind`` is one of:

    * ``"replicated"`` — every thread holds the full data (§2's replicated
      port type);
    * ``"striped"`` — contiguous blocks divided evenly among the threads
      along ``axis`` (§2's striped port type);
    * ``"cyclic"`` — (block-)cyclic round-robin along ``axis`` with blocks
      of ``block`` elements: one of the "complex data distribution
      patterns" the port striping conventions support.
    """

    kind: str
    axis: int = 0
    block: int = 1

    def __post_init__(self):
        if self.kind not in ("replicated", "striped", "cyclic"):
            raise ValueError(
                f"striping kind must be replicated|striped|cyclic, got {self.kind!r}"
            )
        if self.axis < 0:
            raise ValueError("stripe axis must be non-negative")
        if self.block < 1:
            raise ValueError("cyclic block must be >= 1")

    @property
    def is_striped(self) -> bool:
        """True for any distribution that divides the data among threads."""
        return self.kind in ("striped", "cyclic")

    def describe(self) -> str:
        if self.kind == "replicated":
            return "replicated"
        if self.kind == "striped":
            return f"striped(axis={self.axis})"
        return f"cyclic(axis={self.axis}, block={self.block})"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "axis": self.axis, "block": self.block}

    @staticmethod
    def from_dict(d: dict) -> "Striping":
        return Striping(kind=d["kind"], axis=d.get("axis", 0), block=d.get("block", 1))


#: Replicated striping singleton-style constant.
REPLICATED = Striping("replicated")


def striped(axis: int = 0) -> Striping:
    """Striped (contiguous-block) layout dividing data evenly along ``axis``."""
    return Striping("striped", axis)


def cyclic(axis: int = 0, block: int = 1) -> Striping:
    """(Block-)cyclic layout along ``axis``."""
    return Striping("cyclic", axis, block)


#: The default data-type shelf contents.
STANDARD_TYPES = {
    "cfloat_matrix_256": DataType("cfloat_matrix_256", "complex64", (256, 256)),
    "cfloat_matrix_512": DataType("cfloat_matrix_512", "complex64", (512, 512)),
    "cfloat_matrix_1024": DataType("cfloat_matrix_1024", "complex64", (1024, 1024)),
    "float_vector_1024": DataType("float_vector_1024", "float32", (1024,)),
}
