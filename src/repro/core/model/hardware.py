"""Hardware editor: hierarchical hardware architecture models.

§1.1: *"In the hardware editor, the hardware architecture is built
hierarchically from the processor all the way up to the system level."*

A :class:`HardwareModel` composes processors into boards and boards into a
system joined by an interconnect; :meth:`HardwareModel.build_cluster`
materialises it as a simulated machine.  The CSPI target of §3.2 (two
quad-PowerPC boards in a VME chassis over Myrinet) is provided as a builder.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...machine.cluster import SimCluster
from ...machine.interconnect import FabricSpec
from ...machine.node import CpuSpec
from ...machine.platforms import PlatformSpec, get_platform
from ...machine.simulator import Environment
from .application import ModelError, ModelObject

__all__ = ["ProcessorElement", "BoardElement", "HardwareModel", "cspi_hardware"]


class ProcessorElement(ModelObject):
    """A single CPU in the hardware model."""

    def __init__(self, name: str, cpu: CpuSpec):
        super().__init__(name)
        self.cpu = cpu


class BoardElement(ModelObject):
    """A board carrying one or more processors (e.g. a quad-PPC card)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.processors: List[ProcessorElement] = []

    def add_processor(self, proc: ProcessorElement) -> ProcessorElement:
        self.processors.append(proc)
        return proc


class HardwareModel(ModelObject):
    """System-level hardware: boards + the fabric joining them."""

    def __init__(self, name: str, fabric: FabricSpec):
        super().__init__(name)
        self.fabric = fabric
        self.boards: List[BoardElement] = []

    def add_board(self, board: BoardElement) -> BoardElement:
        self.boards.append(board)
        return board

    # -- flattened views ----------------------------------------------------
    def processors(self) -> List[ProcessorElement]:
        out = []
        for board in self.boards:
            out.extend(board.processors)
        return out

    @property
    def processor_count(self) -> int:
        return len(self.processors())

    def board_map(self) -> Dict[int, int]:
        mapping = {}
        idx = 0
        for b, board in enumerate(self.boards):
            for _ in board.processors:
                mapping[idx] = b
                idx += 1
        return mapping

    @property
    def is_heterogeneous(self) -> bool:
        specs = {p.cpu for p in self.processors()}
        return len(specs) > 1

    def validate(self) -> None:
        if not self.boards:
            raise ModelError(f"hardware model {self.name!r} has no boards")
        if not self.processors():
            raise ModelError(f"hardware model {self.name!r} has no processors")

    # -- materialisation ----------------------------------------------------
    def build_cluster(self, env: Environment) -> SimCluster:
        """Materialise this hardware model as a simulated cluster.

        Heterogeneous boards are supported: each node gets its processor's
        own :class:`CpuSpec` (AToT's objectives weight loads accordingly).
        """
        self.validate()
        procs = self.processors()
        return SimCluster(
            env=env,
            cpu=[p.cpu for p in procs],
            fabric_spec=self.fabric,
            nodes=len(procs),
            board_map=self.board_map(),
            name=self.name,
        )


def cspi_hardware(nodes: int = 8, name: str = "cspi-vme") -> HardwareModel:
    """The §3.2 CSPI target: quad-PPC 603e boards over 160 MB/s Myrinet.

    ``nodes`` processors are packed four to a board, mirroring the two
    quad-Power PC boards of the paper's 8-node chassis.
    """
    platform = get_platform("cspi")
    return from_platform(platform, nodes, name=name)


def from_platform(platform: PlatformSpec, nodes: int, name: Optional[str] = None) -> HardwareModel:
    """Build a hardware model from any platform preset."""
    if nodes <= 0:
        raise ModelError("nodes must be positive")
    hw = HardwareModel(name or platform.name.lower(), platform.fabric)
    remaining = nodes
    b = 0
    while remaining > 0:
        board = hw.add_board(BoardElement(f"board{b}"))
        for i in range(min(platform.cpus_per_board, remaining)):
            board.add_processor(
                ProcessorElement(f"cpu{b}_{i}", platform.cpu)
            )
        remaining -= min(platform.cpus_per_board, remaining)
        b += 1
    return hw


__all__.append("from_platform")
