"""Mapping of application function threads onto processors.

The mapping is the product AToT optimises (§1.1) and the glue-code generator
bakes into the generated source.  A mapping assigns every ``(function_id,
thread)`` pair a processor index in the target hardware model.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .application import ApplicationModel, ModelError

__all__ = [
    "Mapping",
    "round_robin_mapping",
    "single_node_mapping",
    "block_mapping",
    "shrink_mapping",
    "grow_mapping",
]

ThreadKey = Tuple[int, int]  # (function_id, thread_index)


class Mapping:
    """An assignment of function threads to processors."""

    def __init__(self, assignments: Optional[Dict[ThreadKey, int]] = None):
        self._assign: Dict[ThreadKey, int] = dict(assignments or {})

    def assign(self, function_id: int, thread: int, processor: int) -> None:
        if processor < 0:
            raise ModelError("processor index must be non-negative")
        self._assign[(function_id, thread)] = processor

    def processor_of(self, function_id: int, thread: int) -> int:
        try:
            return self._assign[(function_id, thread)]
        except KeyError:
            raise ModelError(
                f"no mapping for function {function_id} thread {thread}"
            ) from None

    def items(self) -> List[Tuple[ThreadKey, int]]:
        return sorted(self._assign.items())

    def processors_used(self) -> List[int]:
        return sorted(set(self._assign.values()))

    def threads_on(self, processor: int) -> List[ThreadKey]:
        return sorted(k for k, p in self._assign.items() if p == processor)

    def copy(self) -> "Mapping":
        return Mapping(dict(self._assign))

    def to_dict(self) -> Dict[str, int]:
        """JSON-able form used by the glue code: "fid:thread" -> processor."""
        return {f"{fid}:{t}": p for (fid, t), p in sorted(self._assign.items())}

    @staticmethod
    def from_dict(d: Dict[str, int]) -> "Mapping":
        out = Mapping()
        for key, proc in d.items():
            fid, t = key.split(":")
            out.assign(int(fid), int(t), proc)
        return out

    def validate(self, app: ApplicationModel, processor_count: int) -> None:
        """Every thread of every function instance mapped, within range."""
        for inst in app.function_instances():
            for t in range(inst.threads):
                proc = self.processor_of(inst.function_id, t)
                if proc >= processor_count:
                    raise ModelError(
                        f"function {inst.path} thread {t} mapped to processor "
                        f"{proc}, but hardware has only {processor_count}"
                    )

    def __eq__(self, other):
        return isinstance(other, Mapping) and self._assign == other._assign

    def __len__(self):
        return len(self._assign)


def round_robin_mapping(app: ApplicationModel, processor_count: int) -> Mapping:
    """Each function's threads dealt across processors starting at 0.

    Thread *t* of every function lands on processor ``t % P`` — the natural
    data-parallel layout where thread *t* of a producer is co-located with
    thread *t* of its consumer (minimising redistribution traffic).
    """
    if processor_count <= 0:
        raise ModelError("processor_count must be positive")
    mapping = Mapping()
    for inst in app.function_instances():
        for t in range(inst.threads):
            mapping.assign(inst.function_id, t, t % processor_count)
    return mapping


def single_node_mapping(app: ApplicationModel, processor: int = 0) -> Mapping:
    """Everything on one processor (the sequential-baseline mapping)."""
    mapping = Mapping()
    for inst in app.function_instances():
        for t in range(inst.threads):
            mapping.assign(inst.function_id, t, processor)
    return mapping


def shrink_mapping(mapping: Mapping, survivors: Iterable[int],
                   balanced: bool = False) -> Mapping:
    """Remap a mapping's threads off lost processors onto the survivors.

    Threads already on a surviving processor stay put (their checkpointed
    state needs no movement); orphaned threads — those mapped to a
    processor not in ``survivors`` — are dealt across the survivor list in
    deterministic ``(function_id, thread)`` order.  This is the
    degraded-mode mapping the run-time's ``shrink_restripe`` policy
    installs after a permanent node loss.

    With ``balanced=False`` (the legacy deal, pinned by golden traces)
    orphans go round-robin regardless of load.  With ``balanced=True``
    each orphan goes to the survivor holding the fewest threads *of the
    same function* (ties: fewest threads overall, then lowest index) —
    since co-mapped threads of a function serialise on the CPU, stage time
    is the per-function maximum, and the balanced deal minimises it.  The
    straggler-drain path uses this: a cleanly balanced drain can cost no
    steady-state throughput at all when the striping has slack.
    """
    pool = sorted(set(survivors))
    if not pool:
        raise ModelError("shrink_mapping needs at least one survivor")
    out = Mapping()
    if not balanced:
        orphan = 0
        for (fid, t), proc in mapping.items():
            if proc in pool:
                out.assign(fid, t, proc)
            else:
                out.assign(fid, t, pool[orphan % len(pool)])
                orphan += 1
        return out
    per_fn: Dict[int, Dict[int, int]] = {}
    total: Dict[int, int] = {p: 0 for p in pool}
    for (fid, _t), proc in mapping.items():
        if proc in pool:
            per_fn.setdefault(fid, {p: 0 for p in pool})[proc] += 1
            total[proc] += 1
    for (fid, t), proc in mapping.items():
        if proc in pool:
            out.assign(fid, t, proc)
            continue
        loads = per_fn.setdefault(fid, {p: 0 for p in pool})
        target = min(pool, key=lambda p: (loads[p], total[p], p))
        out.assign(fid, t, target)
        loads[target] += 1
        total[target] += 1
    return out


def grow_mapping(current: Mapping, original: Mapping,
                 replacements: Dict[int, int]) -> Mapping:
    """Restore a shrunken mapping onto replacement capacity.

    The inverse of :func:`shrink_mapping`: ``replacements`` maps each lost
    processor to the processor standing in for it (the same index for
    replacement hardware slotted into the dead node's position, or a new
    index for added capacity).  Every thread returns to its placement in
    ``original`` — with lost processors substituted — so survivors keep
    their threads (rank stability) and each replacement inherits exactly
    one dead processor's thread set (deterministic assignment).  Threads
    whose original processor has no replacement yet keep their ``current``
    degraded-mode placement, so partial re-grows compose: applying this
    per replacement wave converges back to the original striping.
    """
    out = Mapping()
    for (fid, t), proc in original.items():
        if proc in replacements:
            out.assign(fid, t, replacements[proc])       # restored home
        else:
            out.assign(fid, t, current.processor_of(fid, t))
    return out


def block_mapping(app: ApplicationModel, processor_count: int) -> Mapping:
    """Threads packed onto consecutive processors function by function."""
    if processor_count <= 0:
        raise ModelError("processor_count must be positive")
    mapping = Mapping()
    next_proc = 0
    for inst in app.function_instances():
        for t in range(inst.threads):
            mapping.assign(inst.function_id, t, next_proc % processor_count)
            next_proc += 1
    return mapping
