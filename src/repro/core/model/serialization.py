"""Model persistence: the DoME repository, as JSON documents.

The real SAGE stored its Designer models in a DoME/Smalltalk repository;
here, applications, hardware models, and mappings serialise to plain JSON so
designs can be versioned, diffed, and reloaded.  Round-tripping preserves
everything the glue-code generator reads: structure, data types, striping,
parameters, properties, and the hierarchical composition.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from ...machine.interconnect import FabricSpec, LinkSpec
from ...machine.node import CpuSpec
from .application import (
    ApplicationModel,
    Block,
    CompositeBlock,
    FunctionBlock,
    ModelError,
    Port,
)
from .datatypes import DataType, Striping
from .hardware import BoardElement, HardwareModel, ProcessorElement
from .mapping import Mapping

__all__ = [
    "application_to_dict",
    "application_from_dict",
    "hardware_to_dict",
    "hardware_from_dict",
    "save_design",
    "load_design",
    "FORMAT_VERSION",
]

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# application models
# ---------------------------------------------------------------------------

def _port_to_dict(port: Port) -> dict:
    return {
        "name": port.name,
        "direction": port.direction,
        "datatype": {
            "name": port.datatype.name,
            "dtype": port.datatype.dtype,
            "shape": list(port.datatype.shape),
        },
        "striping": port.striping.to_dict(),
    }


def _port_from_dict(d: dict) -> Port:
    dt = d["datatype"]
    return Port(
        d["name"],
        d["direction"],
        DataType(dt["name"], dt["dtype"], tuple(dt["shape"])),
        Striping.from_dict(d["striping"]),
    )


def _block_to_dict(block: Block) -> dict:
    if isinstance(block, FunctionBlock):
        out = {
            "kind": "function",
            "name": block.name,
            "kernel": block.kernel,
            "threads": block.threads,
            "params": dict(block.params),
            "ports": [_port_to_dict(p) for p in block.ports.values()],
        }
    elif isinstance(block, CompositeBlock):
        out = {
            "kind": "composite",
            "name": block.name,
            "children": [_block_to_dict(c) for c in block.children.values()],
            "arcs": [_arc_ref(a.src, a.dst) for a in block.arcs],
            "exports": [
                {
                    "as": name,
                    "inner_block": inner.block.name,
                    "inner_port": inner.name,
                }
                for name, inner in block._exports.items()
            ],
        }
    else:  # pragma: no cover - only two block kinds exist
        raise ModelError(f"cannot serialise block kind {type(block).__name__}")
    props = block.properties()
    if props:
        out["properties"] = props
    return out


def _arc_ref(src: Port, dst: Port) -> dict:
    return {
        "src_block": src.block.name,
        "src_port": src.name,
        "dst_block": dst.block.name,
        "dst_port": dst.name,
    }


def _block_from_dict(d: dict) -> Block:
    if d["kind"] == "function":
        block = FunctionBlock(
            d["name"], kernel=d["kernel"], threads=d["threads"], params=d["params"]
        )
        for pd in d["ports"]:
            block.add_port(_port_from_dict(pd))
    elif d["kind"] == "composite":
        block = CompositeBlock(d["name"])
        _fill_composite(block, d)
    else:
        raise ModelError(f"unknown block kind {d.get('kind')!r}")
    for key, value in d.get("properties", {}).items():
        block.set_property(key, value)
    return block


def _fill_composite(composite: CompositeBlock, d: dict) -> None:
    for cd in d.get("children", []):
        composite.add_block(_block_from_dict(cd))

    def port_of(block_name: str, port_name: str) -> Port:
        try:
            child = composite.children[block_name]
        except KeyError:
            raise ModelError(
                f"arc references unknown block {block_name!r} in "
                f"composite {composite.name!r}"
            ) from None
        return child.port(port_name)

    # Exports first (arcs at the parent level may target exported ports).
    for ed in d.get("exports", []):
        inner = port_of(ed["inner_block"], ed["inner_port"])
        composite.export(inner, as_name=ed["as"])
    for ad in d.get("arcs", []):
        composite.connect(
            port_of(ad["src_block"], ad["src_port"]),
            port_of(ad["dst_block"], ad["dst_port"]),
        )


def application_to_dict(app: ApplicationModel) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "kind": "application",
        "model": _block_to_dict(app) | {"kind": "application"},
    }


def application_from_dict(doc: dict) -> ApplicationModel:
    _check_doc(doc, "application")
    d = doc["model"]
    app = ApplicationModel(d["name"])
    _fill_composite(app, d)
    for key, value in d.get("properties", {}).items():
        app.set_property(key, value)
    return app


# ---------------------------------------------------------------------------
# hardware models
# ---------------------------------------------------------------------------

def _cpu_to_dict(cpu: CpuSpec) -> dict:
    return {
        "name": cpu.name,
        "clock_mhz": cpu.clock_mhz,
        "mflops": cpu.mflops,
        "copy_bw": cpu.copy_bw,
        "call_overhead": cpu.call_overhead,
        "memory_bytes": cpu.memory_bytes,
    }


def _link_to_dict(link: LinkSpec) -> dict:
    return {
        "latency": link.latency,
        "bandwidth": link.bandwidth,
        "sw_overhead": link.sw_overhead,
    }


def hardware_to_dict(hw: HardwareModel) -> dict:
    return {
        "format_version": FORMAT_VERSION,
        "kind": "hardware",
        "name": hw.name,
        "fabric": {
            "name": hw.fabric.name,
            "inter_board": _link_to_dict(hw.fabric.inter_board),
            "intra_board": _link_to_dict(hw.fabric.intra_board),
            "crossbar": hw.fabric.crossbar,
            "shared_channels": hw.fabric.shared_channels,
        },
        "boards": [
            {
                "name": board.name,
                "processors": [
                    {"name": p.name, "cpu": _cpu_to_dict(p.cpu)}
                    for p in board.processors
                ],
            }
            for board in hw.boards
        ],
    }


def hardware_from_dict(doc: dict) -> HardwareModel:
    _check_doc(doc, "hardware")
    f = doc["fabric"]
    fabric = FabricSpec(
        name=f["name"],
        inter_board=LinkSpec(**f["inter_board"]),
        intra_board=LinkSpec(**f["intra_board"]),
        crossbar=f["crossbar"],
        shared_channels=f["shared_channels"],
    )
    hw = HardwareModel(doc["name"], fabric)
    for bd in doc["boards"]:
        board = hw.add_board(BoardElement(bd["name"]))
        for pd in bd["processors"]:
            board.add_processor(ProcessorElement(pd["name"], CpuSpec(**pd["cpu"])))
    return hw


# ---------------------------------------------------------------------------
# whole designs (application + optional hardware + optional mapping)
# ---------------------------------------------------------------------------

def save_design(
    fp_or_path: Union[str, IO],
    app: ApplicationModel,
    hardware: HardwareModel = None,
    mapping: Mapping = None,
) -> None:
    """Write a design document (application [+ hardware] [+ mapping]) as JSON."""
    doc: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "kind": "design",
        "application": application_to_dict(app),
    }
    if hardware is not None:
        doc["hardware"] = hardware_to_dict(hardware)
    if mapping is not None:
        doc["mapping"] = mapping.to_dict()
    if isinstance(fp_or_path, str):
        with open(fp_or_path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
    else:
        json.dump(doc, fp_or_path, indent=2, sort_keys=True)


def load_design(fp_or_path: Union[str, IO]):
    """Load a design document; returns (application, hardware|None, mapping|None)."""
    if isinstance(fp_or_path, str):
        with open(fp_or_path) as fh:
            doc = json.load(fh)
    else:
        doc = json.load(fp_or_path)
    _check_doc(doc, "design")
    app = application_from_dict(doc["application"])
    hardware = hardware_from_dict(doc["hardware"]) if "hardware" in doc else None
    mapping = Mapping.from_dict(doc["mapping"]) if "mapping" in doc else None
    return app, hardware, mapping


def _check_doc(doc: dict, kind: str) -> None:
    if not isinstance(doc, dict) or doc.get("kind") != kind:
        raise ModelError(f"not a {kind} document: kind={doc.get('kind')!r}")
    version = doc.get("format_version")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported format version {version!r} (supported: {FORMAT_VERSION})"
        )
