"""Software and hardware shelves: the Designer's reuse libraries.

§1.1: *"All primitive and hierarchical blocks are stored on software and
hardware shelves for later reuse. Items on the hardware shelf include
workstations, other embedded computers, CPU chips, memory, ... The
application and system designs can be refined using the software shelf items
such as other COTS functional or user defined blocks."*

A shelf is a named store of *factories* (so taking an item always yields a
fresh block — shelf items are templates, not shared instances).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ...kernels.signal import KERNEL_REGISTRY
from ...machine.platforms import PLATFORMS
from .application import FunctionBlock, ModelError

__all__ = ["Shelf", "software_shelf", "hardware_shelf"]


class Shelf:
    """A categorised library of reusable model components."""

    def __init__(self, name: str):
        self.name = name
        self._items: Dict[str, Callable[..., Any]] = {}
        self._categories: Dict[str, str] = {}

    def put(self, item_name: str, factory: Callable[..., Any], category: str = "misc") -> None:
        if item_name in self._items:
            raise ModelError(f"shelf {self.name!r} already has item {item_name!r}")
        self._items[item_name] = factory
        self._categories[item_name] = category

    def take(self, item_name: str, *args, **kwargs) -> Any:
        """Instantiate a fresh copy of a shelf item."""
        try:
            factory = self._items[item_name]
        except KeyError:
            raise ModelError(
                f"shelf {self.name!r} has no item {item_name!r}; "
                f"available: {sorted(self._items)}"
            ) from None
        return factory(*args, **kwargs)

    def items(self, category: Optional[str] = None) -> List[str]:
        if category is None:
            return sorted(self._items)
        return sorted(k for k, c in self._categories.items() if c == category)

    def category_of(self, item_name: str) -> str:
        return self._categories[item_name]

    def __contains__(self, item_name: str) -> bool:
        return item_name in self._items

    def __len__(self) -> int:
        return len(self._items)


def software_shelf() -> Shelf:
    """The COTS functional library shelf (ISSPL-like kernels + structural blocks)."""
    shelf = Shelf("software")

    def kernel_block_factory(kernel_name: str):
        def make(name: str, threads: int = 1, **params) -> FunctionBlock:
            return FunctionBlock(name, kernel=kernel_name, threads=threads, params=params)

        return make

    for kernel_name in KERNEL_REGISTRY:
        shelf.put(kernel_name, kernel_block_factory(kernel_name), category="isspl")

    # Structural blocks the benchmark applications use.
    for structural in ("matrix_source", "matrix_sink", "fft_rows", "fft_cols",
                       "block_transpose", "identity"):
        shelf.put(structural, kernel_block_factory(structural), category="structural")
    # Radar chain kernels (run-time bindings in repro.core.runtime.kernels).
    # Some are already on the shelf via KERNEL_REGISTRY; add the rest.
    for radar in ("pulse_compress", "doppler", "cfar", "window_rows"):
        if radar not in shelf:
            shelf.put(radar, kernel_block_factory(radar), category="radar")
    return shelf


def hardware_shelf() -> Shelf:
    """The hardware shelf: vendor platform presets (CPU boards + fabrics)."""
    from .hardware import from_platform

    shelf = Shelf("hardware")
    for pname, pfactory in PLATFORMS.items():
        def make(nodes: int = 8, _pf=pfactory, _pn=pname):
            return from_platform(_pf(), nodes, name=_pn)

        shelf.put(pname, make, category="platform")
    return shelf
