"""A textual Designer format: declarative application descriptions.

The real SAGE captured applications graphically; this module provides the
equivalent flat-text capture, so designs can be authored in an editor and
checked into version control:

.. code-block:: text

    application fft2d
    datatype cm complex64 256x256

    block src kernel=matrix_source threads=4
      out out cm striped(0)

    block rowfft kernel=fft_rows threads=4
      in in cm striped(0)
      out out cm striped(0)

    block sink kernel=matrix_sink threads=4
      in in cm striped(1)

    connect src.out -> rowfft.in
    connect rowfft.out -> sink.in

Grammar (line-oriented; ``#`` comments; indentation free):

* ``application NAME``
* ``datatype NAME DTYPE DIMxDIM[x...]``
* ``block NAME kernel=K [threads=N] [param.key=value ...]``
* ``in|out PORTNAME TYPENAME STRIPING`` (belongs to the preceding block)
* ``connect BLOCK.PORT -> BLOCK.PORT``

Striping: ``replicated`` | ``striped(axis)`` | ``cyclic(axis[, block])``.
``render_application`` emits this format back; parse/render round-trips.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from .application import ApplicationModel, FunctionBlock, ModelError
from .datatypes import DataType, REPLICATED, Striping

__all__ = ["parse_application", "render_application", "TextFormatError"]


class TextFormatError(ModelError):
    """A syntax or semantic error in the textual format, with line number."""

    def __init__(self, message: str, line_no: int, line: str = ""):
        super().__init__(f"line {line_no}: {message}" + (f"  [{line}]" if line else ""))
        self.line_no = line_no


_STRIPING_RE = re.compile(
    r"^(replicated|striped\((\d+)\)|cyclic\((\d+)(?:\s*,\s*(\d+))?\))$"
)


def _parse_striping(token: str, line_no: int) -> Striping:
    m = _STRIPING_RE.match(token)
    if not m:
        raise TextFormatError(
            f"bad striping {token!r} (replicated | striped(a) | cyclic(a[, b]))",
            line_no,
        )
    if token == "replicated":
        return REPLICATED
    if token.startswith("striped"):
        return Striping("striped", int(m.group(2)))
    block = int(m.group(4)) if m.group(4) else 1
    return Striping("cyclic", int(m.group(3)), block)


def _parse_value(raw: str) -> Any:
    for conv in (int, float):
        try:
            return conv(raw)
        except ValueError:
            pass
    if raw in ("true", "false"):
        return raw == "true"
    return raw


def parse_application(text: str) -> ApplicationModel:
    """Parse the textual format into an application model."""
    app: Optional[ApplicationModel] = None
    datatypes: Dict[str, DataType] = {}
    current_block: Optional[FunctionBlock] = None
    pending_connects: List[tuple] = []

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        keyword = words[0]

        if keyword == "application":
            if app is not None:
                raise TextFormatError("duplicate 'application' line", line_no, line)
            if len(words) != 2:
                raise TextFormatError("usage: application NAME", line_no, line)
            app = ApplicationModel(words[1])
        elif keyword == "datatype":
            if len(words) != 4:
                raise TextFormatError("usage: datatype NAME DTYPE DIMxDIM", line_no, line)
            name, dtype, dims = words[1], words[2], words[3]
            try:
                shape = tuple(int(d) for d in dims.lower().split("x"))
                datatypes[name] = DataType(name, dtype, shape)
            except (ValueError, TypeError) as exc:
                raise TextFormatError(f"bad datatype: {exc}", line_no, line) from exc
        elif keyword == "block":
            if app is None:
                raise TextFormatError("'block' before 'application'", line_no, line)
            if len(words) < 3:
                raise TextFormatError(
                    "usage: block NAME kernel=K [threads=N] [param.k=v]", line_no, line
                )
            name = words[1]
            kernel = None
            threads = 1
            params: Dict[str, Any] = {}
            for token in words[2:]:
                if "=" not in token:
                    raise TextFormatError(f"bad attribute {token!r}", line_no, line)
                key, raw = token.split("=", 1)
                if key == "kernel":
                    kernel = raw
                elif key == "threads":
                    threads = int(raw)
                elif key.startswith("param."):
                    params[key[len("param."):]] = _parse_value(raw)
                else:
                    raise TextFormatError(f"unknown attribute {key!r}", line_no, line)
            if kernel is None:
                raise TextFormatError("block needs kernel=...", line_no, line)
            current_block = app.add_block(
                FunctionBlock(name, kernel=kernel, threads=threads, params=params)
            )
        elif keyword in ("in", "out"):
            if current_block is None:
                raise TextFormatError(f"{keyword!r} port before any block", line_no, line)
            if len(words) < 4:
                raise TextFormatError(
                    f"usage: {keyword} PORT TYPENAME STRIPING", line_no, line
                )
            # the striping form may contain spaces, e.g. "cyclic(0, 4)"
            port_name, type_name = words[1], words[2]
            striping_token = "".join(words[3:])
            if type_name not in datatypes:
                raise TextFormatError(f"unknown datatype {type_name!r}", line_no, line)
            striping = _parse_striping(striping_token, line_no)
            if keyword == "in":
                current_block.add_in(port_name, datatypes[type_name], striping)
            else:
                current_block.add_out(port_name, datatypes[type_name], striping)
        elif keyword == "connect":
            if len(words) != 4 or words[2] != "->":
                raise TextFormatError("usage: connect A.P -> B.Q", line_no, line)
            pending_connects.append((words[1], words[3], line_no))
        else:
            raise TextFormatError(f"unknown keyword {keyword!r}", line_no, line)

    if app is None:
        raise TextFormatError("no 'application' line", 0)

    for src_ref, dst_ref, line_no in pending_connects:
        app.connect(
            _resolve_port(app, src_ref, line_no),
            _resolve_port(app, dst_ref, line_no),
        )
    return app


def _resolve_port(app: ApplicationModel, ref: str, line_no: int):
    if "." not in ref:
        raise TextFormatError(f"port reference {ref!r} needs BLOCK.PORT", line_no)
    block_name, port_name = ref.split(".", 1)
    block = app.children.get(block_name)
    if block is None:
        raise TextFormatError(f"unknown block {block_name!r}", line_no)
    try:
        return block.port(port_name)
    except ModelError as exc:
        raise TextFormatError(str(exc), line_no) from exc


def _striping_text(s: Striping) -> str:
    if s.kind == "replicated":
        return "replicated"
    if s.kind == "striped":
        return f"striped({s.axis})"
    if s.block != 1:
        return f"cyclic({s.axis}, {s.block})"
    return f"cyclic({s.axis})"


def render_application(app: ApplicationModel) -> str:
    """Emit the textual format for a (flat) application model.

    Hierarchical models are flattened first (composites become their dotted
    primitive paths is NOT supported here — render only flat models; use the
    JSON design documents for hierarchy).
    """
    from .application import CompositeBlock

    for child in app.children.values():
        if isinstance(child, CompositeBlock):
            raise ModelError(
                "render_application supports flat models only; "
                "serialise hierarchical designs as JSON instead"
            )
    lines = [f"application {app.name}", ""]
    # datatypes: unique by (name,dtype,shape)
    seen: Dict[str, DataType] = {}
    for child in app.children.values():
        for port in child.ports.values():
            dt = port.datatype
            if dt.name in seen and seen[dt.name] != dt:
                raise ModelError(f"conflicting datatypes named {dt.name!r}")
            seen[dt.name] = dt
    for dt in seen.values():
        dims = "x".join(str(d) for d in dt.shape)
        lines.append(f"datatype {dt.name} {dt.dtype} {dims}")
    lines.append("")
    for child in app.children.values():
        attrs = [f"kernel={child.kernel}"]
        if child.threads != 1:
            attrs.append(f"threads={child.threads}")
        for key, value in sorted(child.params.items()):
            rendered = str(value).lower() if isinstance(value, bool) else value
            attrs.append(f"param.{key}={rendered}")
        lines.append(f"block {child.name} {' '.join(attrs)}")
        for port in child.ports.values():
            lines.append(
                f"  {port.direction} {port.name} {port.datatype.name} "
                f"{_striping_text(port.striping)}"
            )
        lines.append("")
    for arc in app.arcs:
        lines.append(
            f"connect {arc.src.block.name}.{arc.src.name} -> "
            f"{arc.dst.block.name}.{arc.dst.name}"
        )
    return "\n".join(lines) + "\n"
