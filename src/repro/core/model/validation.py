"""Whole-model validation: the checks the Designer runs before codegen.

Catches the classes of wiring errors the paper credits SAGE with preventing
("creation of executable systems ... with fewer errors", §4): dangling ports,
shape-incompatible arcs, stripe axes outside the data rank, thread counts
that do not divide striped extents, and cyclic dataflow.

Each issue carries a stable rule id (``MDL0xx``) so the SAGE Verifier
(:mod:`repro.analysis`) can fold Designer validation into its unified
:class:`~repro.analysis.report.AnalysisReport` and findings can be
suppressed per rule.
"""

from __future__ import annotations

import functools
from typing import List

from .application import ApplicationModel, FunctionBlock, ModelError, Port

__all__ = ["validate_application", "ValidationIssue"]

_SEVERITY_RANK = {"error": 0, "warning": 1}


@functools.total_ordering
class ValidationIssue:
    """One problem found during validation.

    Instances are value objects: hashable and orderable (errors sort before
    warnings, then by location and message), so issue lists can be
    deduplicated with sets and compared deterministically.
    """

    def __init__(self, severity: str, where: str, message: str, rule: str = "MDL000"):
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"bad severity {severity!r}")
        self.severity = severity
        self.where = where
        self.message = message
        self.rule = rule

    def _key(self):
        return (_SEVERITY_RANK[self.severity], self.where, self.message)

    def __repr__(self):
        return f"[{self.severity}] {self.where}: {self.message}"

    def __eq__(self, other):
        return (
            isinstance(other, ValidationIssue)
            and (self.severity, self.where, self.message)
            == (other.severity, other.where, other.message)
        )

    def __hash__(self):
        return hash((self.severity, self.where, self.message))

    def __lt__(self, other):
        if not isinstance(other, ValidationIssue):
            return NotImplemented
        return self._key() < other._key()


def validate_application(app: ApplicationModel, strict: bool = True) -> List[ValidationIssue]:
    """Validate the application graph; raises on errors when ``strict``.

    Returns the full issue list (errors + warnings) otherwise.
    """
    issues: List[ValidationIssue] = []
    arcs = app.flattened_arcs()
    connected = set()
    for src, dst in arcs:
        connected.add(id(src))
        connected.add(id(dst))
        _check_arc(src, dst, issues)

    instances = app.function_instances()
    if not instances:
        issues.append(
            ValidationIssue("error", app.name, "application has no function blocks",
                            rule="MDL001")
        )

    for inst in instances:
        _check_block(inst.path, inst.block, connected, issues)

    # Multiple writers to one IN port are a wiring error.
    dst_seen = {}
    for src, dst in arcs:
        if id(dst) in dst_seen:
            issues.append(
                ValidationIssue(
                    "error",
                    dst.qualified_name,
                    "input port has multiple incoming arcs",
                    rule="MDL005",
                )
            )
        dst_seen[id(dst)] = src

    try:
        app.topological_order()
    except ModelError as exc:
        issues.append(ValidationIssue("error", app.name, str(exc), rule="MDL006"))

    if strict:
        errors = [i for i in issues if i.severity == "error"]
        if errors:
            raise ModelError(
                "model validation failed:\n" + "\n".join(map(repr, errors))
            )
    return issues


def _check_arc(src: Port, dst: Port, issues: List[ValidationIssue]) -> None:
    where = f"{src.qualified_name}->{dst.qualified_name}"
    if src.datatype.dtype != dst.datatype.dtype:
        issues.append(
            ValidationIssue("error", where, "element dtype mismatch", rule="MDL002")
        )
    if src.datatype.total_elems != dst.datatype.total_elems:
        issues.append(
            ValidationIssue(
                "error",
                where,
                f"logical sizes differ: {src.datatype.shape} vs {dst.datatype.shape}",
                rule="MDL003",
            )
        )
    elif src.datatype.shape != dst.datatype.shape:
        issues.append(
            ValidationIssue(
                "warning",
                where,
                f"shapes differ but sizes agree: {src.datatype.shape} vs "
                f"{dst.datatype.shape} (treated as a reshape)",
                rule="MDL004",
            )
        )


def _check_block(path: str, block: FunctionBlock, connected: set, issues: List[ValidationIssue]) -> None:
    if not block.ports:
        issues.append(
            ValidationIssue("warning", path, "block has no ports", rule="MDL007")
        )
    for port in block.ports.values():
        if id(port) not in connected:
            issues.append(
                ValidationIssue(
                    "error" if port.direction == "in" else "warning",
                    port.qualified_name,
                    "port is not connected",
                    rule="MDL008",
                )
            )
        st = port.striping
        rank = len(port.datatype.shape)
        if st.is_striped:
            if st.axis >= rank:
                issues.append(
                    ValidationIssue(
                        "error",
                        port.qualified_name,
                        f"stripe axis {st.axis} out of range for shape "
                        f"{port.datatype.shape}",
                        rule="MDL009",
                    )
                )
            else:
                extent = port.datatype.shape[st.axis]
                if st.kind == "striped" and block.threads > extent:
                    issues.append(
                        ValidationIssue(
                            "error",
                            port.qualified_name,
                            f"{block.threads} threads exceed stripe extent {extent}",
                            rule="MDL010",
                        )
                    )
                elif st.kind == "cyclic":
                    blocks = -(-extent // st.block)  # ceil
                    if block.threads > blocks:
                        issues.append(
                            ValidationIssue(
                                "warning",
                                port.qualified_name,
                                f"{block.threads} threads but only {blocks} cyclic "
                                f"blocks; some threads own no data",
                                rule="MDL011",
                            )
                        )
