"""Whole-model validation: the checks the Designer runs before codegen.

Catches the classes of wiring errors the paper credits SAGE with preventing
("creation of executable systems ... with fewer errors", §4): dangling ports,
shape-incompatible arcs, stripe axes outside the data rank, thread counts
that do not divide striped extents, and cyclic dataflow.
"""

from __future__ import annotations

from typing import List

from .application import ApplicationModel, FunctionBlock, ModelError, Port

__all__ = ["validate_application", "ValidationIssue"]


class ValidationIssue:
    """One problem found during validation."""

    def __init__(self, severity: str, where: str, message: str):
        if severity not in ("error", "warning"):
            raise ValueError(f"bad severity {severity!r}")
        self.severity = severity
        self.where = where
        self.message = message

    def __repr__(self):
        return f"[{self.severity}] {self.where}: {self.message}"

    def __eq__(self, other):
        return (
            isinstance(other, ValidationIssue)
            and (self.severity, self.where, self.message)
            == (other.severity, other.where, other.message)
        )


def validate_application(app: ApplicationModel, strict: bool = True) -> List[ValidationIssue]:
    """Validate the application graph; raises on errors when ``strict``.

    Returns the full issue list (errors + warnings) otherwise.
    """
    issues: List[ValidationIssue] = []
    arcs = app.flattened_arcs()
    connected = set()
    for src, dst in arcs:
        connected.add(id(src))
        connected.add(id(dst))
        _check_arc(src, dst, issues)

    instances = app.function_instances()
    if not instances:
        issues.append(ValidationIssue("error", app.name, "application has no function blocks"))

    for inst in instances:
        _check_block(inst.path, inst.block, connected, issues)

    # Multiple writers to one IN port are a wiring error.
    dst_seen = {}
    for src, dst in arcs:
        if id(dst) in dst_seen:
            issues.append(
                ValidationIssue(
                    "error",
                    dst.qualified_name,
                    "input port has multiple incoming arcs",
                )
            )
        dst_seen[id(dst)] = src

    try:
        app.topological_order()
    except ModelError as exc:
        issues.append(ValidationIssue("error", app.name, str(exc)))

    if strict:
        errors = [i for i in issues if i.severity == "error"]
        if errors:
            raise ModelError(
                "model validation failed:\n" + "\n".join(map(repr, errors))
            )
    return issues


def _check_arc(src: Port, dst: Port, issues: List[ValidationIssue]) -> None:
    where = f"{src.qualified_name}->{dst.qualified_name}"
    if src.datatype.dtype != dst.datatype.dtype:
        issues.append(
            ValidationIssue("error", where, "element dtype mismatch")
        )
    if src.datatype.total_elems != dst.datatype.total_elems:
        issues.append(
            ValidationIssue(
                "error",
                where,
                f"logical sizes differ: {src.datatype.shape} vs {dst.datatype.shape}",
            )
        )
    elif src.datatype.shape != dst.datatype.shape:
        issues.append(
            ValidationIssue(
                "warning",
                where,
                f"shapes differ but sizes agree: {src.datatype.shape} vs "
                f"{dst.datatype.shape} (treated as a reshape)",
            )
        )


def _check_block(path: str, block: FunctionBlock, connected: set, issues: List[ValidationIssue]) -> None:
    if not block.ports:
        issues.append(ValidationIssue("warning", path, "block has no ports"))
    for port in block.ports.values():
        if id(port) not in connected:
            issues.append(
                ValidationIssue(
                    "error" if port.direction == "in" else "warning",
                    port.qualified_name,
                    "port is not connected",
                )
            )
        st = port.striping
        rank = len(port.datatype.shape)
        if st.is_striped:
            if st.axis >= rank:
                issues.append(
                    ValidationIssue(
                        "error",
                        port.qualified_name,
                        f"stripe axis {st.axis} out of range for shape "
                        f"{port.datatype.shape}",
                    )
                )
            else:
                extent = port.datatype.shape[st.axis]
                if st.kind == "striped" and block.threads > extent:
                    issues.append(
                        ValidationIssue(
                            "error",
                            port.qualified_name,
                            f"{block.threads} threads exceed stripe extent {extent}",
                        )
                    )
                elif st.kind == "cyclic":
                    blocks = -(-extent // st.block)  # ceil
                    if block.threads > blocks:
                        issues.append(
                            ValidationIssue(
                                "warning",
                                port.qualified_name,
                                f"{block.threads} threads but only {blocks} cyclic "
                                f"blocks; some threads own no data",
                            )
                        )
