"""SAGE run-time kernel: sequencing, data striping, buffer management, probes."""

from .config import DEFAULT_CONFIG, OPTIMIZED_CONFIG, RuntimeConfig
from .phantom import PhantomArray, materialize
from .striping import (
    AxisIndices,
    PlannedMessage,
    intersect,
    message_plan,
    region_elems,
    region_indexer,
    region_shape,
    thread_region,
)
from .buffers import BufferError, RuntimeBuffer
from .kernels import KernelBinding, KernelError, ThreadContext, default_bindings
from .policy import FAIL_FAST, FaultPolicy, TransportError
from .probes import ProbeEvent, Trace
from .kernel import RECOVERABLE_FAULTS, RunResult, RuntimeError_, SageRuntime

__all__ = [
    "DEFAULT_CONFIG",
    "OPTIMIZED_CONFIG",
    "RuntimeConfig",
    "PhantomArray",
    "materialize",
    "AxisIndices",
    "PlannedMessage",
    "intersect",
    "message_plan",
    "region_elems",
    "region_indexer",
    "region_shape",
    "thread_region",
    "BufferError",
    "RuntimeBuffer",
    "KernelBinding",
    "KernelError",
    "ThreadContext",
    "default_bindings",
    "FAIL_FAST",
    "FaultPolicy",
    "TransportError",
    "ProbeEvent",
    "Trace",
    "RECOVERABLE_FAULTS",
    "RunResult",
    "RuntimeError_",
    "SageRuntime",
]
