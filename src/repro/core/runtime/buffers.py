"""Logical and physical buffer management.

§2: *"Located and shared between each port on the sender and receiver
functions is the SAGE notion of a logical buffer ... It contains the
striding information, total buffer size (before striding), thread
information (number and type). The runtime uses the logical buffer and the
striding information to create physical buffers for message transfer."*

:class:`RuntimeBuffer` is the live counterpart of one glue ``LOGICAL_BUFFERS``
entry: it owns the per-iteration backing storage, the striping regions of
every endpoint thread, and the message plan that redistributes data between
the sender's layout and the receiver's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..model.datatypes import Striping
from .phantom import PhantomArray
from .striping import (
    PlannedMessage,
    Region,
    message_plan,
    region_elems,
    region_indexer,
    region_shape,
    thread_region,
)

__all__ = ["RuntimeBuffer", "BufferError", "moved_region_transfers"]


class BufferError(RuntimeError):
    """Raised for misuse of the buffer manager."""


def moved_region_transfers(buf: "RuntimeBuffer", old_proc_of, new_proc_of):
    """Region moves implied by a re-placement of ``buf``'s endpoint threads.

    ``old_proc_of(function_id, thread)`` / ``new_proc_of(function_id,
    thread)`` give the placements before and after.  Returns
    ``(old_proc, new_proc, nbytes, label)`` tuples, one per endpoint region
    whose owning thread changed processor — the checkpointed state that must
    travel when the mapping changes.  Shrinking recovery reads the bytes
    from each old owner's ring mirror (the owner is dead); live migration
    reads them from the old owner directly (the owner is a live survivor).
    """
    out: List[Tuple[int, int, int, str]] = []
    for t in range(buf.src_threads):
        old = old_proc_of(buf.src_function, t)
        new = new_proc_of(buf.src_function, t)
        if old != new:
            out.append((old, new, buf.src_region_bytes(t), f"{buf.name}.src[{t}]"))
    for t in range(buf.dst_threads):
        old = old_proc_of(buf.dst_function, t)
        new = new_proc_of(buf.dst_function, t)
        if old != new:
            out.append((old, new, buf.dst_region_bytes(t), f"{buf.name}.dst[{t}]"))
    return out


class RuntimeBuffer:
    """One logical buffer instance (an arc's data channel)."""

    def __init__(self, spec: dict, execute_data: bool = True):
        self.spec = dict(spec)
        self.buffer_id: int = spec["id"]
        self.name: str = spec["name"]
        self.shape: Tuple[int, ...] = tuple(spec["shape"])
        self.dtype: str = spec["dtype"]
        self.elem_bytes: int = spec["elem_bytes"]
        self.total_bytes: int = spec["total_bytes"]
        self.src_function: int = spec["src_function"]
        self.dst_function: int = spec["dst_function"]
        self.src_port: str = spec["src_port"]
        self.dst_port: str = spec["dst_port"]
        self.src_striping = Striping.from_dict(spec["src_striping"])
        self.dst_striping = Striping.from_dict(spec["dst_striping"])
        self.src_threads: int = spec["src_threads"]
        self.dst_threads: int = spec["dst_threads"]
        self.execute_data = execute_data

        expected = 1
        for d in self.shape:
            expected *= d
        if expected * self.elem_bytes != self.total_bytes:
            raise BufferError(
                f"buffer {self.name!r}: total_bytes {self.total_bytes} inconsistent "
                f"with shape {self.shape} x {self.elem_bytes}"
            )

        self.plan: List[PlannedMessage] = message_plan(
            self.shape,
            self.elem_bytes,
            self.src_striping,
            self.src_threads,
            self.dst_striping,
            self.dst_threads,
        )
        self._storage: Dict[int, Any] = {}
        self._pending_reads: Dict[int, int] = {}

        # The kernel walks the plan per (thread, iteration); index it once.
        self._msgs_from: Dict[int, List[PlannedMessage]] = {
            s: [] for s in range(self.src_threads)
        }
        self._msgs_to: Dict[int, List[PlannedMessage]] = {
            d: [] for d in range(self.dst_threads)
        }
        for m in self.plan:
            self._msgs_from[m.src_thread].append(m)
            self._msgs_to[m.dst_thread].append(m)
        # Arrival slots are keyed by a message's position within its
        # destination's list; PlannedMessage objects are shared with the
        # process-wide plan cache, so key by identity, not equality.
        self._msg_slot: Dict[int, int] = {}
        for msgs in self._msgs_to.values():
            for i, m in enumerate(msgs):
                self._msg_slot[id(m)] = i
        # Senders transmit in rotated order (start past your own thread id)
        # to spread fabric load; the order is static, so compute it once.
        self._send_order: Dict[int, List[PlannedMessage]] = {
            s: sorted(
                msgs,
                key=lambda m: (m.dst_thread - s) % max(1, self.dst_threads),
            )
            for s, msgs in self._msgs_from.items()
        }

    # -- regions -----------------------------------------------------------
    def src_region(self, thread: int) -> Region:
        return thread_region(self.shape, self.src_striping, self.src_threads, thread)

    def dst_region(self, thread: int) -> Region:
        return thread_region(self.shape, self.dst_striping, self.dst_threads, thread)

    def src_region_bytes(self, thread: int) -> int:
        return region_elems(self.src_region(thread)) * self.elem_bytes

    def dst_region_bytes(self, thread: int) -> int:
        return region_elems(self.dst_region(thread)) * self.elem_bytes

    # -- message plan ----------------------------------------------------------
    def messages_from(self, src_thread: int) -> List[PlannedMessage]:
        return self._msgs_from.get(src_thread, [])

    def messages_to(self, dst_thread: int) -> List[PlannedMessage]:
        return self._msgs_to.get(dst_thread, [])

    def send_order(self, src_thread: int) -> List[PlannedMessage]:
        """``messages_from`` in the rotated order the sender transmits them."""
        return self._send_order.get(src_thread, [])

    def message_slot(self, msg: PlannedMessage) -> int:
        """Position of ``msg`` within its destination thread's message list."""
        return self._msg_slot[id(msg)]

    # -- data path ----------------------------------------------------------------
    def _backing(self, iteration: int):
        store = self._storage.get(iteration)
        if store is None:
            if self.execute_data:
                store = np.zeros(self.shape, dtype=self.dtype)
            else:
                store = PhantomArray(self.shape, self.dtype)
            self._storage[iteration] = store
            self._pending_reads[iteration] = self.dst_threads
        return store

    def write(self, iteration: int, src_thread: int, data: Any) -> None:
        """Sender thread deposits its region of the logical data."""
        region = self.src_region(src_thread)
        want = region_shape(region)
        store = self._backing(iteration)
        if not self.execute_data:
            # Phantom mode: check only the shape contract.
            got = tuple(getattr(data, "shape", ()))
            if got != want:
                raise BufferError(
                    f"buffer {self.name!r}: thread {src_thread} wrote shape "
                    f"{got}, region needs {want}"
                )
            return
        arr = np.asarray(data)
        if arr.shape != want:
            raise BufferError(
                f"buffer {self.name!r}: thread {src_thread} wrote shape "
                f"{arr.shape}, region needs {want}"
            )
        store[region_indexer(region)] = arr

    def read(self, iteration: int, dst_thread: int) -> Any:
        """Receiver thread obtains its region (a fresh copy, value semantics)."""
        if iteration not in self._storage:
            raise BufferError(
                f"buffer {self.name!r}: read of iteration {iteration} before any write"
            )
        region = self.dst_region(dst_thread)
        store = self._storage[iteration]
        if self.execute_data:
            out = np.array(store[region_indexer(region)], copy=True)
        else:
            from .phantom import PhantomArray

            out = PhantomArray(region_shape(region), self.dtype)
        self._pending_reads[iteration] -= 1
        if self._pending_reads[iteration] <= 0:
            # All receivers served: free the iteration's backing storage.
            del self._storage[iteration]
            del self._pending_reads[iteration]
        return out

    # -- checkpointing -----------------------------------------------------
    def snapshot(self) -> dict:
        """Deep-copy the live backing state (checkpoint_restart support)."""
        return {
            "storage": {
                k: (v.copy() if isinstance(v, np.ndarray) else v)
                for k, v in self._storage.items()
            },
            "pending": dict(self._pending_reads),
        }

    def restore(self, snap: dict) -> None:
        """Reset the backing state to a :meth:`snapshot` (copies again, so a
        snapshot can be restored more than once)."""
        self._storage = {
            k: (v.copy() if isinstance(v, np.ndarray) else v)
            for k, v in snap["storage"].items()
        }
        self._pending_reads = dict(snap["pending"])

    @property
    def live_iterations(self) -> int:
        return len(self._storage)

    def __repr__(self):
        return (
            f"<RuntimeBuffer {self.name!r} {self.shape} "
            f"{self.src_striping.describe()}->{self.dst_striping.describe()} "
            f"{self.src_threads}->{self.dst_threads} threads, "
            f"{len(self.plan)} messages>"
        )
