"""Run-time kernel configuration: the overhead knobs Table 1.0 measures.

The paper attributes the auto-generated code's 14-25 % overhead to the
run-time's generality.  Each mechanism is an explicit, documented knob so
the ablation benchmarks can turn them on and off:

* **Function-table dispatch** (`dispatch_overhead`) — §2's descriptor lookup
  and port setup per function-thread invocation.
* **Logical-buffer staging copies** (`send_staging`, `recv_staging`) — §3.4:
  *"the SAGE run-time buffer management scheme assigns unique logical
  buffers to the data per function which can cause extra data access times
  when compared to the CSPI implementation."*  With policy ``"all"`` the
  writer always deposits its region into the logical buffer (an extra copy
  on co-located hand-offs, where hand code passes a pointer); with
  ``"remote"`` only data that actually crosses processors is staged (the §4
  improved generator); ``"none"`` disables the charge.
* **Striping bookkeeping** (`striping_overhead_per_message`).
* **Generic kernel invocation** (`compute_efficiency`) — generated glue
  calls library kernels through port descriptors with generic strides,
  sustaining a fraction of the MFLOPS hand-tuned ISSPL call sites reach.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["RuntimeConfig", "DEFAULT_CONFIG", "OPTIMIZED_CONFIG", "STAGING_POLICIES"]

STAGING_POLICIES = ("all", "remote", "none")


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunable cost/behaviour parameters of the SAGE run-time kernel.

    Attributes
    ----------
    dispatch_overhead:
        Seconds charged per function-thread invocation.
    send_staging:
        Which outbound bytes pay a memory copy into the logical buffer:
        ``"all"`` (unique-logical-buffer policy, the shipped default),
        ``"remote"`` (§4 improved generator), or ``"none"``.
    recv_staging:
        Which inbound bytes pay a copy out of the logical buffer.  Default
        ``"all"``: a compute function always unpacks its region into its
        physical buffer (DMA endpoints — matrix_source/matrix_sink — are
        exempt; the device reads/writes the logical buffer directly).
    striping_overhead_per_message:
        Seconds of index arithmetic per planned message.
    compute_efficiency:
        Fraction of hand-tuned MFLOPS the generated call sites sustain
        (generic strides/descriptors); 1.0 disables the penalty.
    execute_data:
        True: kernels run real numerics (correctness runs).  False: phantom
        payloads flow and only modeled time accrues (benchmark sweeps).
    fft_backend:
        ``"own"`` for the radix-2 implementation, ``"numpy"`` for speed.
    max_in_flight:
        Data-set admission control: how many iterations may overlap in the
        pipeline (None = unbounded).  The §3.3 latency protocol uses 1 (the
        time to process a single data set); throughput/period studies use
        None.
    """

    dispatch_overhead: float = 40e-6
    send_staging: str = "all"
    recv_staging: str = "all"
    #: False = the optimised (§4) glue: the data source DMAs directly into
    #: its downstream logical buffer instead of depositing through a unique
    #: source buffer first.
    stage_dma_sources: bool = True
    striping_overhead_per_message: float = 4e-6
    compute_efficiency: float = 0.90
    execute_data: bool = True
    fft_backend: str = "own"
    max_in_flight: int = 1
    #: Check that every processor's physical-buffer footprint fits its DRAM
    #: (64 MB on the §3.2 boards); raises MemoryError at load time otherwise.
    enforce_memory: bool = True

    def __post_init__(self):
        if self.dispatch_overhead < 0 or self.striping_overhead_per_message < 0:
            raise ValueError("overheads must be non-negative")
        if self.send_staging not in STAGING_POLICIES:
            raise ValueError(f"send_staging must be one of {STAGING_POLICIES}")
        if self.recv_staging not in STAGING_POLICIES:
            raise ValueError(f"recv_staging must be one of {STAGING_POLICIES}")
        if not (0 < self.compute_efficiency <= 1.0):
            raise ValueError("compute_efficiency must be in (0, 1]")
        if self.fft_backend not in ("own", "numpy"):
            raise ValueError(f"unknown fft backend {self.fft_backend!r}")
        if self.max_in_flight is not None and self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1 or None")

    def optimized(self) -> "RuntimeConfig":
        """The §4 improved-glue configuration: sources DMA straight into
        their downstream logical buffer (no unique source-buffer deposit)."""
        return replace(self, stage_dma_sources=False)

    def timing_only(self) -> "RuntimeConfig":
        return replace(self, execute_data=False)

    def pipelined(self, depth=None) -> "RuntimeConfig":
        """Allow ``depth`` iterations in flight (None = unbounded)."""
        return replace(self, max_in_flight=depth)


DEFAULT_CONFIG = RuntimeConfig()
OPTIMIZED_CONFIG = DEFAULT_CONFIG.optimized()
