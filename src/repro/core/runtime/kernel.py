"""The SAGE run-time kernel: sequencing, striping, and buffer management.

§2: *"The SAGE run-time kernel is responsible for all sequencing of
functions, data striping, and buffer management."*

:class:`SageRuntime` loads a generated glue module onto a simulated cluster
and executes the application: one simulation process per (function instance,
thread, iteration), sequenced by dataflow dependencies expressed as message
arrival events, with the processor resources serialising co-mapped threads.
The run-time charges the overheads Table 1.0 measures — function-table
dispatch, logical-buffer staging copies, striping bookkeeping — per the
:class:`~repro.core.runtime.config.RuntimeConfig`.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...machine.cluster import SimCluster
from ...machine.faults import FaultError, LinkFailure, NodeFailure, TransientError
from ...machine.simulator import Environment, Event, Interrupt, Process
from ...mpi.detector import FailureDetector, HeartbeatConfig
from ...perf.cache import cache_scope, invalidate_mapping_caches
from ...perf.registry import REGISTRY
from ..codegen.generator import GlueModule
from ..model.mapping import Mapping, grow_mapping, shrink_mapping
from .buffers import RuntimeBuffer, moved_region_transfers
from .config import DEFAULT_CONFIG, RuntimeConfig
from .kernels import KernelBinding, KernelError, ThreadContext, default_bindings
from .policy import FAIL_FAST, FaultPolicy, TransportError
from .probes import ProbeEvent, Trace
from .striping import plan_remote_traffic, plan_remote_traffic_delta

__all__ = ["SageRuntime", "RunResult", "RuntimeError_"]

#: Faults the checkpoint_restart policy may replay through.  Genuine bugs
#: (KernelError, RuntimeError_, MemoryError, ...) always propagate.
RECOVERABLE_FAULTS = (FaultError, TransportError)


class RuntimeError_(RuntimeError):
    """Run-time kernel configuration/execution failure."""


@dataclass
class RunResult:
    """Outcome of a run: the §3.3 measurement quantities plus artefacts.

    ``latency[k]`` is the time from iteration *k*'s data leaving the source
    to its result reaching the sink; ``period`` is the steady-state time
    between consecutive results at the sink.
    """

    iterations: int
    source_times: List[float]
    sink_times: List[float]
    sink_results: List[Any]
    makespan: float
    trace: Trace = field(repr=False, default_factory=Trace)

    @property
    def latencies(self) -> List[float]:
        return [s - t for t, s in zip(self.source_times, self.sink_times)]

    @property
    def mean_latency(self) -> float:
        lats = self.latencies
        return sum(lats) / len(lats) if lats else 0.0

    @property
    def period(self) -> float:
        if len(self.sink_times) < 2:
            return self.mean_latency
        return (self.sink_times[-1] - self.sink_times[0]) / (len(self.sink_times) - 1)

    def full_result(self, iteration: int = 0):
        """Stitch a (possibly distributed) sink's pieces into one array.

        Returns None for timing-only runs (phantom data).
        """
        import numpy as np

        from .phantom import PhantomArray

        pieces = self.sink_results[iteration]
        if pieces is None:
            return None
        pieces = list(pieces)
        if not pieces:
            return None
        if any(isinstance(d, PhantomArray) for _, d in pieces):
            return None
        from .striping import region_indexer

        rank = len(pieces[0][0])
        shape = tuple(
            max(region[axis].stop for region, _ in pieces) for axis in range(rank)
        )
        out = np.zeros(shape, dtype=np.asarray(pieces[0][1]).dtype)
        for region, data in pieces:
            out[region_indexer(region)] = data
        return out


class SageRuntime:
    """Executes one glue module on one simulated cluster."""

    def __init__(
        self,
        glue: GlueModule,
        cluster: SimCluster,
        config: RuntimeConfig = DEFAULT_CONFIG,
        bindings: Optional[Dict[str, KernelBinding]] = None,
        trace: Optional[Trace] = None,
        fault_policy: Optional[FaultPolicy] = None,
        job_scope: Optional[str] = None,
    ):
        if glue.num_processors > len(cluster):
            raise RuntimeError_(
                f"glue expects {glue.num_processors} processors, cluster has {len(cluster)}"
            )
        self.glue = glue
        self.cluster = cluster
        self.env: Environment = cluster.env
        # The glue's own buffer policy may upgrade the config (§4 optimised glue).
        if glue.optimize_buffers and config.stage_dma_sources:
            config = config.optimized()
        self.config = config
        self.bindings = dict(default_bindings())
        if bindings:
            self.bindings.update(bindings)
        self.trace = trace if trace is not None else Trace()
        self.fault_policy = fault_policy if fault_policy is not None else FAIL_FAST
        # The cache scope this run is billed to (a service job id, or None
        # for standalone runs).  Scoped runs invalidate only entries they
        # own exclusively, so one tenant's membership change cannot evict
        # another tenant's cached placements (see repro.perf.cache).
        self.job_scope = job_scope
        self._live_procs: List[Process] = []
        # Shrinking recovery state: placement overrides installed after a
        # permanent node loss (consulted by processor_of), the processors
        # still in the working set, and the heartbeat detector race event.
        self._proc_override: Dict[Tuple[int, int], int] = {}
        self._active_processors = set(glue.thread_map.values())
        self.detector: Optional[FailureDetector] = None
        self._detect_event: Optional[Event] = None
        self._suspect_probed: set = set()
        self._dead_probed: set = set()
        # Elastic membership state: processors permanently lost to shrinks
        # (in loss order) and replacement capacity announced by NodeJoin
        # events, absorbed at the next iteration boundary by grow_restripe.
        self._lost_processors: List[int] = []
        self._pending_joins: List[int] = []
        # Gray-failure state (migrate_stragglers): per-iteration per-node
        # busy-time telemetry, consecutive-slow strike counts, the drained
        # set (nodes keeping their rank but holding zero threads), and the
        # per-node probation progress toward earning threads back.
        self._iter_busy: Dict[int, Dict[int, float]] = {}
        self._straggler_strikes: Dict[int, int] = {}
        self._drained: set = set()
        self._drain_probation: Dict[int, int] = {}
        self._drain_relapse: Dict[int, int] = {}
        self._slow_probed: set = set()
        # Seeded stream for backoff jitter (desynchronised retries): derived
        # from the fault plan's seed, drawn in simulation event order, and
        # never consulted while backoff_jitter is 0.
        plan_seed = (
            cluster.faults.plan.seed if cluster.faults is not None else 0
        )
        self._backoff_rng = _random.Random(plan_seed ^ 0xB0FF)
        if cluster.faults is not None:
            # Mirror every injected fault into the trace so recovery is
            # visible next to the enter/exit/send spans on the timeline.
            cluster.faults.subscribe(self._on_fault_injected)

        self.functions: Dict[int, dict] = {e["id"]: e for e in glue.function_table}
        for entry in glue.function_table:
            if entry["kernel"] not in self.bindings:
                raise RuntimeError_(
                    f"function {entry['name']!r}: no binding for kernel "
                    f"{entry['kernel']!r}; have {sorted(self.bindings)}"
                )

        self.buffers: List[RuntimeBuffer] = [
            RuntimeBuffer(spec, execute_data=config.execute_data)
            for spec in glue.logical_buffers
        ]
        self.in_buffers: Dict[int, List[RuntimeBuffer]] = {f: [] for f in self.functions}
        self.out_buffers: Dict[int, List[RuntimeBuffer]] = {f: [] for f in self.functions}
        for buf in self.buffers:
            self.out_buffers[buf.src_function].append(buf)
            self.in_buffers[buf.dst_function].append(buf)

        # Message arrival events: (buffer_id, iteration, dst_thread) -> [Event]
        self._arrivals: Dict[Tuple[int, int, int], List[Event]] = {}
        # (function_id, thread) -> cached region/dtype dicts for ThreadContext
        # (iteration-independent; kernels treat them as read-only).
        self._ctx_dicts: Dict[Tuple[int, int], tuple] = {}
        self._thread_done: Dict[Tuple[int, int, int], Event] = {}
        self._source_times: Dict[int, float] = {}
        self._sink_times: Dict[int, float] = {}
        self._sink_results: Dict[int, Any] = {}
        self._iter_complete: Dict[int, Event] = {}
        self._iter_sinks_left: Dict[int, int] = {}

        self._identify_endpoints()
        if config.enforce_memory:
            self._check_memory_footprint()

        # Per-(buffer, thread) remote traffic (bytes crossing processors),
        # used by the "remote" staging policies.  Recomputed after a shrink
        # re-places threads.
        self._buf_send_remote: Dict[Tuple[int, int], int] = {}
        self._buf_recv_remote: Dict[Tuple[int, int], int] = {}
        self._compute_remote_tables()

    # -- setup helpers ---------------------------------------------------------
    def _identify_endpoints(self) -> None:
        sources = [f for f, bufs in self.in_buffers.items() if not bufs]
        sinks = [f for f, bufs in self.out_buffers.items() if not bufs]
        if not sources or not sinks:
            raise RuntimeError_("application needs at least one source and one sink")
        self.source_ids = sources
        self.sink_ids = sinks

    def processor_of(self, function_id: int, thread: int) -> int:
        override = self._proc_override.get((function_id, thread))
        if override is not None:
            return override
        return self.glue.processor_of(function_id, thread)

    def _compute_remote_tables(self) -> None:
        """(Re)build the per-(buffer, thread) cross-processor byte tables."""
        self._buf_send_remote = {}
        self._buf_recv_remote = {}
        for buf in self.buffers:
            send, recv = plan_remote_traffic(
                buf.plan,
                lambda t, f=buf.src_function: self.processor_of(f, t),
                lambda t, f=buf.dst_function: self.processor_of(f, t),
            )
            for t, nbytes in send.items():
                self._buf_send_remote[(buf.buffer_id, t)] = nbytes
            for t, nbytes in recv.items():
                self._buf_recv_remote[(buf.buffer_id, t)] = nbytes

    def memory_footprint(self) -> Dict[int, int]:
        """Per-processor physical-buffer bytes (each endpoint thread holds its
        region on both sides of every buffer, plus one staging copy of the
        largest logical buffer for the unique-buffer scheme)."""
        footprint: Dict[int, int] = {node.index: 0 for node in self.cluster.nodes}
        for buf in self.buffers:
            for t in range(buf.src_threads):
                footprint[self.processor_of(buf.src_function, t)] += (
                    buf.src_region_bytes(t)
                )
            for t in range(buf.dst_threads):
                footprint[self.processor_of(buf.dst_function, t)] += (
                    buf.dst_region_bytes(t)
                )
        return footprint

    def _check_memory_footprint(self) -> None:
        for proc, nbytes in self.memory_footprint().items():
            limit = self.cluster.node(proc).spec.memory_bytes
            if nbytes > limit:
                raise MemoryError(
                    f"processor {proc}: physical buffers need {nbytes} bytes "
                    f"but the node has {limit} bytes DRAM; use more nodes or "
                    f"smaller data sets (or disable enforce_memory)"
                )

    def _arrival_events(self, buf: RuntimeBuffer, iteration: int, dst_thread: int) -> List[Event]:
        key = (buf.buffer_id, iteration, dst_thread)
        events = self._arrivals.get(key)
        if events is None:
            events = [self.env.event() for _ in buf.messages_to(dst_thread)]
            self._arrivals[key] = events
        return events

    # -- execution ---------------------------------------------------------------
    def run(
        self,
        iterations: int = 1,
        input_provider: Optional[Callable[[int], Any]] = None,
        source_interval: float = 0.0,
    ) -> RunResult:
        """Execute ``iterations`` data sets through the application.

        ``input_provider(k)`` supplies the k-th input data set (required when
        the config executes real data).  ``source_interval`` throttles the
        source to one data set per interval (0 = as fast as dataflow allows).
        """
        if iterations < 1:
            raise RuntimeError_("iterations must be >= 1")
        if self.config.execute_data and input_provider is None:
            raise RuntimeError_("execute_data=True requires an input_provider")
        self._input_provider = input_provider
        self._source_interval = source_interval

        self._start_detector()
        try:
            # Everything derived during the run (striping plans, collective
            # schedules) is tagged with the job scope, so the service can
            # bill cache traffic per job and clear per tenant.
            with cache_scope(self.job_scope):
                if self.fault_policy.checkpoints:
                    return self._run_checkpointed(iterations)

                procs = []
                for k in range(iterations):
                    procs.extend(self._spawn_iteration(k))
                done = self.env.all_of(procs)
                self.env.run(until=done)
                return self._build_result(iterations)
        finally:
            self._stop_detector()

    def _spawn_iteration(self, k: int) -> List[Process]:
        """Create iteration ``k``'s bookkeeping events and thread processes."""
        sink_thread_count = sum(self.functions[f]["threads"] for f in self.sink_ids)
        self._iter_complete[k] = self.env.event()
        self._iter_sinks_left[k] = sink_thread_count
        for fid in self.glue.execution_order:
            entry = self.functions[fid]
            for t in range(entry["threads"]):
                self._thread_done[(fid, t, k)] = self.env.event()
        procs = []
        for fid in self.glue.execution_order:
            entry = self.functions[fid]
            for t in range(entry["threads"]):
                procs.append(
                    self.env.process(
                        self._thread_proc(fid, t, k),
                        name=f"{entry['name']}[{t}]#{k}",
                    )
                )
        self._live_procs = list(procs)
        return procs

    def _build_result(self, iterations: int) -> RunResult:
        return RunResult(
            iterations=iterations,
            source_times=[self._source_times[k] for k in range(iterations)],
            sink_times=[self._sink_times[k] for k in range(iterations)],
            sink_results=[self._sink_results.get(k) for k in range(iterations)],
            makespan=self.env.now,
            trace=self.trace,
        )

    # -- checkpoint / restart ---------------------------------------------------
    def _run_checkpointed(self, iterations: int) -> RunResult:
        """Sequential execution with per-iteration checkpoints and replay.

        Virtual time never rewinds: a replayed iteration re-executes *after*
        the fault, so recovery overhead shows up in the makespan and in the
        latency of the affected iteration (source admission keeps its
        first-attempt timestamp).
        """
        policy = self.fault_policy
        restarts_left = policy.max_restarts
        for k in range(iterations):
            while True:
                # Iteration boundary: the quiesce point where announced
                # replacement capacity is admitted and migrated onto
                # (grow_restripe), drained stragglers earn threads back,
                # and fresh stragglers are drained (migrate_stragglers).
                # Also reached on replay, so a join that lands mid-iteration
                # is absorbed before the retry.
                self._maybe_grow(k)
                self._maybe_restore_stragglers(k)
                self._maybe_migrate_stragglers(k)
                snapshot = [buf.snapshot() for buf in self.buffers]
                self._probe_runtime("checkpoint", detail=f"iteration {k}",
                                    iteration=k)
                procs = self._spawn_iteration(k)
                try:
                    self._run_iteration(procs)
                    break
                except RECOVERABLE_FAULTS as exc:
                    if restarts_left <= 0:
                        raise
                    restarts_left -= 1
                    self._recover(k, snapshot, exc)
        return self._build_result(iterations)

    def _run_iteration(self, procs: List[Process]) -> None:
        """Run one iteration attempt, racing it against failure detection.

        Without a detector this is a plain run-until-done.  With one, a
        ``declare_dead`` verdict interrupts the attempt as a
        :class:`~repro.machine.faults.NodeFailure` so recovery starts at the
        detection time instead of whenever the dataflow happens to touch the
        dead node (which, for a node others are merely *waiting on*, may be
        never).
        """
        done = self.env.all_of(procs)
        detect = self._detect_event
        if detect is None:
            self.env.run(until=done)
            return
        race = self.env.any_of([done, detect])
        self.env.run(until=race)
        index, value = race.value
        if index == 1:
            node, declared_at = value
            raise NodeFailure(node, declared_at, self.env.now)

    # -- failure detection -----------------------------------------------------
    def _start_detector(self) -> None:
        """Launch the heartbeat detector when the policy shrinks on loss."""
        if (not self.fault_policy.shrinks or self.detector is not None
                or len(self._active_processors) < 2):
            return
        policy = self.fault_policy
        config = HeartbeatConfig(
            period=policy.heartbeat_period,
            miss_grace=policy.miss_grace,
            threshold=policy.suspicion_threshold,
            # Gray-failure detection: adaptive grace windows learned from
            # observed heartbeat inter-arrivals plus an RTT probe stream
            # feeding the suspected_slow state (see docs/DETECTION.md).
            adaptive=policy.adaptive_detection,
            rtt_probe_every=(
                policy.rtt_probe_every if policy.adaptive_detection else 0
            ),
        )
        self.detector = FailureDetector(
            self.cluster, config, ranks=sorted(self._active_processors)
        )
        self.detector.subscribe(self._on_detector_event)
        self.detector.start()
        self._detect_event = self.env.event()

    def _stop_detector(self) -> None:
        if self.detector is not None:
            self.detector.stop()
            self.detector = None
            self._detect_event = None

    def _on_detector_event(self, time: float, kind: str, observer: int,
                           target: int, detail: str) -> None:
        """Mirror detector verdicts into the trace and fire the race event.

        Every observer forms its own opinion; the trace records only the
        first suspicion / declaration per target (the cluster-wide verdict)
        to keep the timeline legible.
        """
        if kind == "clear_suspect":
            self._suspect_probed.discard(target)
            return
        if kind == "clear_slow":
            self._slow_probed.discard(target)
            return
        if kind == "suspect_slow":
            if target not in self._slow_probed:
                self._slow_probed.add(target)
                self._probe_runtime(
                    "suspect_slow",
                    detail=f"node {target} by observer {observer}: {detail}",
                    processor=target,
                )
            return
        if kind == "suspect":
            if target not in self._suspect_probed:
                self._suspect_probed.add(target)
                self._probe_runtime(
                    "suspect",
                    detail=f"node {target} by observer {observer}: {detail}",
                    processor=target,
                )
            return
        if kind != "declare_dead":
            return
        if target not in self._dead_probed:
            self._dead_probed.add(target)
            self._probe_runtime(
                "declare_dead",
                detail=f"node {target} by observer {observer}: {detail}",
                processor=target,
            )
        if target in self._active_processors:
            ev = self._detect_event
            if ev is not None and not ev.triggered:
                ev.succeed((target, time))

    def _recover(self, k: int, snapshot: List[dict], exc: BaseException) -> None:
        """Roll iteration ``k`` back to its checkpoint after a fault."""
        # Kill every straggler of the failed attempt before state is reset;
        # they die at the current instant via the Interrupt handlers in
        # _thread_proc/_transfer_proc, releasing any held resources.
        for proc in self._live_procs:
            if proc.is_alive:
                proc.interrupt("fault recovery")
        self._live_procs = []
        injector = self.cluster.faults
        revived: List[int] = []
        if injector is not None:
            revived = injector.revive_all()
            still_dead = injector.dead_nodes
            if still_dead:
                if not self.fault_policy.shrinks:
                    raise RuntimeError_(
                        f"cannot recover iteration {k}: node(s) {still_dead} "
                        f"failed permanently"
                    ) from exc
                lost = sorted(set(still_dead) & self._active_processors)
                if lost:
                    self._shrink_restripe(lost, k, exc)
        if self.detector is not None:
            for node in revived:
                self.detector.clear(node)
                self._suspect_probed.discard(node)
                self._dead_probed.discard(node)
            # A declaration recovery did not act on — the node is alive per
            # ground truth and stays in membership — is a false positive
            # (e.g. a total link outage suppressed its heartbeats).  Clear
            # it so the detector re-earns the verdict over a fresh grace
            # window; replaying the stale declaration would re-fire at the
            # same instant and burn the restart budget in zero time.
            still_down = set(injector.dead_nodes) if injector is not None else set()
            for node in sorted(self.detector.declared_dead()):
                if node in self._active_processors and node not in still_down:
                    self.detector.clear(node)
                    self._suspect_probed.discard(node)
                    self._dead_probed.discard(node)
            # Re-arm the detection race; a death declared while this
            # recovery was in progress must not be lost to the fresh event.
            self._detect_event = self.env.event()
            pending = sorted(
                n for n in self.detector.declared_dead()
                if n in self._active_processors
            )
            if pending:
                declared_at, _observer = self.detector.first_detection(pending[0])
                self._detect_event.succeed((pending[0], declared_at))
        for buf, snap in zip(self.buffers, snapshot):
            buf.restore(snap)
        # Discard the failed attempt's partial outputs and bookkeeping
        # (including the attempt's partial straggler telemetry, which would
        # otherwise double-count on the replay).
        self._iter_busy.pop(k, None)
        self._sink_results.pop(k, None)
        self._sink_times.pop(k, None)
        self._arrivals = {
            key: events for key, events in self._arrivals.items() if key[1] != k
        }
        self._probe_runtime(
            "restore",
            detail=f"iteration {k} after {type(exc).__name__}: {exc}",
            iteration=k,
        )

    # -- shrinking recovery ------------------------------------------------------
    def _shrink_restripe(self, dead: List[int], k: int, exc: BaseException) -> None:
        """Drop permanently lost nodes and re-stripe onto the survivors.

        Waits for the failure detector to actually *declare* each lost node
        (recovery reacts to detection, never to the injector's ground truth,
        so detection latency lands on the timeline), remaps the dead nodes'
        threads via :func:`~repro.core.model.mapping.shrink_mapping`,
        recomputes the staging-traffic tables for the new placement, and
        charges the fabric transfers that redistribute the latest buffer
        checkpoints from their ring mirrors to the new owners.
        """
        if self.detector is None:
            raise RuntimeError_(
                f"cannot shrink for iteration {k}: node(s) {sorted(dead)} "
                f"failed permanently but no failure detector is running"
            ) from exc
        for node in sorted(dead):
            self.env.run(until=self.detector.death_event(node))
        survivors = sorted(self._active_processors - set(dead))
        if not survivors:
            raise RuntimeError_(
                f"cannot shrink for iteration {k}: no surviving processors"
            ) from exc
        # Orphaned threads should land on *healthy* survivors: a drained
        # straggler keeps its rank but must not absorb a dead node's work.
        # (If every survivor is drained, fall back to the full set.)
        preferred = [p for p in survivors if p not in self._drained]
        targets = preferred or survivors
        survivor_set = set(survivors)
        ring = sorted(self._active_processors)
        for node in dead:
            self._drained.discard(node)
            self._drain_probation.pop(node, None)
            self._drain_relapse.pop(node, None)
            self._straggler_strikes.pop(node, None)

        old_proc: Dict[Tuple[int, int], int] = {}
        current = Mapping()
        for fid, entry in sorted(self.functions.items()):
            for t in range(entry["threads"]):
                p = self.processor_of(fid, t)
                old_proc[(fid, t)] = p
                current.assign(fid, t, p)
        new_map = shrink_mapping(current, targets)
        moved_keys = []
        for (fid, t), p in new_map.items():
            if p != old_proc[(fid, t)]:
                self._proc_override[(fid, t)] = p
                moved_keys.append((fid, t))
        self._active_processors = survivor_set
        self._lost_processors = sorted(set(self._lost_processors) | set(dead))
        self._probe_runtime(
            "shrink",
            detail=(
                f"dropped node(s) {sorted(dead)}; {len(survivors)} "
                f"survivor(s), {len(moved_keys)} thread(s) remapped"
            ),
            iteration=k,
        )
        self._update_remote_tables(old_proc, new_map, moved_keys)
        invalidate_mapping_caches(scope=self.job_scope)
        if self.config.enforce_memory:
            self._check_memory_footprint()

        # Each region whose owning thread moved must be refilled from the
        # checkpoint copy.  Checkpoints are ring-mirrored: the next live
        # processor after the old owner (in pre-shrink processor order)
        # holds the copy, so the refill is a real fabric transfer whose cost
        # lands in the makespan.
        def mirror_of(proc: int) -> int:
            if proc in survivor_set:
                return proc
            i = ring.index(proc)
            for step in range(1, len(ring)):
                cand = ring[(i + step) % len(ring)]
                if cand in survivor_set:
                    return cand
            raise RuntimeError_("no surviving mirror")  # pragma: no cover

        transfers: List[Tuple[int, int, int, str]] = []
        for buf in self.buffers:
            for old, new, nbytes, label in moved_region_transfers(
                buf, lambda f, t: old_proc[(f, t)], new_map.processor_of
            ):
                transfers.append((mirror_of(old), new, nbytes, label))
        procs = [
            self.env.process(
                self._restripe_transfer(src, dst, nbytes, label, k),
                name=f"restripe:{label}",
            )
            for src, dst, nbytes, label in transfers
            if src != dst and nbytes > 0
        ]
        if procs:
            self.env.run(until=self.env.all_of(procs))
        total = sum(nbytes for _, _, nbytes, _ in transfers)
        self._probe_runtime(
            "restripe",
            detail=(
                f"{len(transfers)} region(s) redistributed onto "
                f"{len(survivors)} survivor(s)"
            ),
            iteration=k,
            nbytes=total,
        )

    def _jittered(self, delay: float) -> float:
        """Scale a backoff sleep by the policy's seeded jitter.

        With ``backoff_jitter`` j > 0 the delay is multiplied by a uniform
        draw from [1-j, 1+j], desynchronising ranks that would otherwise
        retry a burned link in lock-step.  j == 0 draws nothing, so legacy
        runs stay byte-identical.
        """
        j = self.fault_policy.backoff_jitter
        if j and delay > 0:
            delay *= 1.0 + j * (2.0 * self._backoff_rng.random() - 1.0)
        return delay

    def _restripe_transfer(self, src: int, dst: int, nbytes: int,
                           label: str, iteration: int):
        """Move one checkpointed region to its new owner, with retries."""
        policy = self.fault_policy
        attempts = 1 + policy.max_retries
        delay = policy.backoff
        failure: Any = None
        for attempt in range(1, attempts + 1):
            try:
                outcome = yield from self.cluster.transfer(src, dst, nbytes)
            except LinkFailure as exc:
                if attempt >= attempts:
                    raise
                failure = exc
            else:
                if outcome.ok:
                    return
                failure = outcome.reason
                if attempt >= attempts:
                    break
            self._probe_runtime(
                "retry",
                detail=f"restripe {label} {src}->{dst} attempt {attempt}: {failure}",
                processor=src,
                iteration=iteration,
            )
            if delay > 0:
                yield self.env.timeout(self._jittered(delay))
            delay *= policy.backoff_factor
        raise TransportError(
            f"restripe transfer {label} from processor {src} to {dst} "
            f"undelivered: {failure}; gave up after {attempts} attempt(s) "
            f"at t={self.env.now:.6f}"
        )

    # -- elastic membership (grow_restripe) --------------------------------------
    def _maybe_grow(self, k: int) -> None:
        """Absorb announced replacement capacity at an iteration boundary.

        Only the ``grow_restripe`` policy re-grows, and only once capacity
        has actually been lost — a join announced while the striping is
        still at full width stays pending until it can replace something.
        Each joiner runs the detector's admission handshake (``join``
        probe); the admitted set is then migrated onto in one quiesced
        :meth:`_grow_migrate` step so a multi-node re-grow pays a single
        re-striping pause.
        """
        if (not self.fault_policy.regrows or not self._pending_joins
                or self.detector is None or not self._lost_processors):
            return
        quiesce_at = self.env.now
        joiners = sorted(set(self._pending_joins))
        self._pending_joins = []
        cfg = self.detector.config
        admitted: List[int] = []
        for j in joiners:
            ev = self.detector.request_join(j)
            # The handshake retries every detection window; cap the wait so
            # an unreachable joiner cannot stall the application (it simply
            # isn't absorbed and the run continues degraded).
            deadline = self.env.timeout(cfg.window * 9)
            self.env.run(until=self.env.any_of([ev, deadline]))
            if self.detector.admitted(j) is None:
                continue
            admitted.append(j)
            self._suspect_probed.discard(j)
            self._dead_probed.discard(j)
            latency = self.detector.join_latency(j)
            self._probe_runtime(
                "join",
                detail=f"node {j} admitted in {latency:.6f}s",
                processor=j,
                iteration=k,
            )
        if admitted:
            self._grow_migrate(admitted, k, quiesce_at)

    def _grow_migrate(self, joiners: List[int], k: int,
                      quiesce_at: float) -> None:
        """Live migration onto re-admitted capacity (zero-restart re-grow).

        Restores the original placement for every processor a joiner
        replaces (same-id joiners restore their own slot; fresh ids stand in
        for lost processors in sorted order), updates the staging tables
        *incrementally* — only moved threads are re-planned — and ships the
        moved regions' checkpointed state from their live current owners
        over the fabric.  The wall-clock cost of the whole boundary stall is
        recorded as ``runtime.migration_pause_s``.
        """
        lost = sorted(self._lost_processors)
        replacements: Dict[int, int] = {}
        fresh: List[int] = []
        for j in joiners:
            if j in lost:
                replacements[j] = j       # same slot restored
            else:
                fresh.append(j)
        unreplaced = [p for p in lost if p not in replacements]
        for p, j in zip(unreplaced, sorted(fresh)):
            replacements[p] = j
        if not replacements:
            return

        old_proc: Dict[Tuple[int, int], int] = {}
        current = Mapping()
        original = Mapping()
        for fid, entry in sorted(self.functions.items()):
            for t in range(entry["threads"]):
                p = self.processor_of(fid, t)
                old_proc[(fid, t)] = p
                current.assign(fid, t, p)
                original.assign(fid, t, self.glue.processor_of(fid, t))
        new_map = grow_mapping(current, original, replacements)
        moved_keys: List[Tuple[int, int]] = []
        for key, p in new_map.items():
            if p != old_proc[key]:
                moved_keys.append(key)
            if p == self.glue.processor_of(*key):
                self._proc_override.pop(key, None)
            else:
                self._proc_override[key] = p
        self._active_processors |= set(replacements.values())
        self._lost_processors = [p for p in lost if p not in replacements]
        self._probe_runtime(
            "grow",
            detail=(
                f"absorbed node(s) {sorted(set(replacements.values()))}; "
                f"{len(self._active_processors)} active processor(s), "
                f"{len(moved_keys)} thread(s) restored"
            ),
            iteration=k,
        )
        self._update_remote_tables(old_proc, new_map, moved_keys)
        invalidate_mapping_caches(scope=self.job_scope)
        if self.config.enforce_memory:
            self._check_memory_footprint()

        # Moved regions travel from their live current owner (a survivor) to
        # the restored owner — unlike shrinking recovery, no ring mirror is
        # needed because the old owner is alive.
        transfers: List[Tuple[int, int, int, str]] = []
        for buf in self.buffers:
            transfers.extend(moved_region_transfers(
                buf, lambda f, t: old_proc[(f, t)], new_map.processor_of
            ))
        procs = [
            self.env.process(
                self._restripe_transfer(src, dst, nbytes, label, k),
                name=f"migrate:{label}",
            )
            for src, dst, nbytes, label in transfers
            if src != dst and nbytes > 0
        ]
        if procs:
            self.env.run(until=self.env.all_of(procs))
        total = sum(nbytes for _, _, nbytes, _ in transfers)
        pause = self.env.now - quiesce_at
        REGISTRY.record("runtime.migration_pause_s", pause)
        self._probe_runtime(
            "migrate",
            detail=(
                f"{len(transfers)} region(s) migrated back in "
                f"{pause:.6f}s pause"
            ),
            iteration=k,
            nbytes=total,
        )

    def _update_remote_tables(
        self,
        old_proc: Dict[Tuple[int, int], int],
        new_map: Mapping,
        moved_keys: List[Tuple[int, int]],
    ) -> None:
        """Incrementally patch the staging tables after a re-placement.

        Only buffers with at least one moved endpoint thread are touched,
        and within each, :func:`plan_remote_traffic_delta` revisits only the
        messages a moved thread sends or receives.  The result is
        byte-identical to :meth:`_compute_remote_tables` at the new
        placement — the golden-trace and bitwise tests lean on that.
        """
        moved = set(moved_keys)
        for buf in self.buffers:
            moved_src = {t for f, t in moved if f == buf.src_function}
            moved_dst = {t for f, t in moved if f == buf.dst_function}
            if not moved_src and not moved_dst:
                continue
            bid = buf.buffer_id
            send = {
                t: self._buf_send_remote[(bid, t)]
                for t in range(buf.src_threads)
                if (bid, t) in self._buf_send_remote
            }
            recv = {
                t: self._buf_recv_remote[(bid, t)]
                for t in range(buf.dst_threads)
                if (bid, t) in self._buf_recv_remote
            }
            send, recv = plan_remote_traffic_delta(
                buf.plan, send, recv,
                lambda t, f=buf.src_function: old_proc[(f, t)],
                lambda t, f=buf.dst_function: old_proc[(f, t)],
                lambda t, f=buf.src_function: new_map.processor_of(f, t),
                lambda t, f=buf.dst_function: new_map.processor_of(f, t),
                moved_src, moved_dst,
            )
            for t in range(buf.src_threads):
                if t in send:
                    self._buf_send_remote[(bid, t)] = send[t]
                else:
                    self._buf_send_remote.pop((bid, t), None)
            for t in range(buf.dst_threads):
                if t in recv:
                    self._buf_recv_remote[(bid, t)] = recv[t]
                else:
                    self._buf_recv_remote.pop((bid, t), None)

    # -- gray failures (migrate_stragglers) ---------------------------------------
    def _maybe_migrate_stragglers(self, k: int) -> None:
        """Score the previous iteration's progress and drain stragglers.

        A node whose per-iteration busy time exceeded ``straggler_factor ×``
        the median across thread-holding nodes earns a strike; after
        ``straggler_patience`` consecutive strikes it is drained at this
        boundary.  The score is pure progress telemetry — no access to the
        injector's ground truth — so a limping node is indistinguishable
        from a genuinely overloaded one, exactly as in a real deployment.
        """
        policy = self.fault_policy
        if not policy.migrates_stragglers or k == 0:
            return
        busy = self._iter_busy.pop(k - 1, None)
        if not busy:
            return
        scores = {
            p: t for p, t in busy.items()
            if p in self._active_processors and p not in self._drained
        }
        if len(scores) < 2:
            return
        ordered = sorted(scores.values())
        mid = len(ordered) // 2
        median = (
            ordered[mid] if len(ordered) % 2
            else 0.5 * (ordered[mid - 1] + ordered[mid])
        )
        if median <= 0:
            return
        for p in sorted(scores):
            if scores[p] > policy.straggler_factor * median:
                self._straggler_strikes[p] = (
                    self._straggler_strikes.get(p, 0) + 1
                )
            else:
                self._straggler_strikes.pop(p, None)
        stragglers = [
            p for p in sorted(scores)
            if self._straggler_strikes.get(p, 0) >= policy.straggler_patience
        ]
        if not stragglers:
            return
        healthy = sorted(
            self._active_processors - self._drained - set(stragglers)
        )
        if not healthy:
            return  # never drain the last thread-holding capacity
        self._drain_stragglers(stragglers, healthy, k)

    def _drain_stragglers(self, stragglers: List[int], healthy: List[int],
                          k: int) -> None:
        """Quiesced drain: move a limping node's threads to healthy nodes.

        Unlike a shrink, the node is alive — just slow — so it keeps its
        rank and detector membership, its checkpointed regions ship from
        the node itself (the live owner; no ring mirror), and it holds
        zero threads afterwards until probation restores it.
        """
        quiesce_at = self.env.now
        old_proc: Dict[Tuple[int, int], int] = {}
        current = Mapping()
        for fid, entry in sorted(self.functions.items()):
            for t in range(entry["threads"]):
                p = self.processor_of(fid, t)
                old_proc[(fid, t)] = p
                current.assign(fid, t, p)
        new_map = shrink_mapping(current, healthy, balanced=True)
        moved_keys: List[Tuple[int, int]] = []
        for key, p in new_map.items():
            if p != old_proc[key]:
                moved_keys.append(key)
            if p == self.glue.processor_of(*key):
                self._proc_override.pop(key, None)
            else:
                self._proc_override[key] = p
        for p in stragglers:
            self._drained.add(p)
            self._drain_probation[p] = 0
            # A re-drain after a restore is a relapse: each one doubles the
            # probation the node must serve, so a persistently limping node
            # cannot oscillate drain/restore indefinitely.
            self._drain_relapse[p] = self._drain_relapse.get(p, -1) + 1
            self._straggler_strikes.pop(p, None)
        self._update_remote_tables(old_proc, new_map, moved_keys)
        invalidate_mapping_caches(scope=self.job_scope)
        if self.config.enforce_memory:
            self._check_memory_footprint()

        transfers: List[Tuple[int, int, int, str]] = []
        for buf in self.buffers:
            transfers.extend(moved_region_transfers(
                buf, lambda f, t: old_proc[(f, t)], new_map.processor_of
            ))
        procs = [
            self.env.process(
                self._restripe_transfer(src, dst, nbytes, label, k),
                name=f"drain:{label}",
            )
            for src, dst, nbytes, label in transfers
            if src != dst and nbytes > 0
        ]
        if procs:
            self.env.run(until=self.env.all_of(procs))
        total = sum(nbytes for _, _, nbytes, _ in transfers)
        pause = self.env.now - quiesce_at
        REGISTRY.record("runtime.straggler_pause_s", pause)
        self._probe_runtime(
            "migrate_straggler",
            detail=(
                f"drained node(s) {sorted(stragglers)}; {len(moved_keys)} "
                f"thread(s) moved to {len(healthy)} healthy node(s) in "
                f"{pause:.6f}s pause"
            ),
            iteration=k,
            nbytes=total,
        )

    def _maybe_restore_stragglers(self, k: int) -> None:
        """Earn-back: restore a drained node once its slow state clears.

        The detector's ``suspect_slow`` opinion must stay clear for
        ``straggler_probation`` consecutive iteration boundaries; any
        relapse resets the probation clock.  A drained node that died in
        the meantime is handed off to the shrink bookkeeping instead.
        """
        policy = self.fault_policy
        if not policy.migrates_stragglers or not self._drained:
            return
        ready: List[int] = []
        for p in sorted(self._drained):
            if p not in self._active_processors:
                self._drained.discard(p)
                self._drain_probation.pop(p, None)
                continue
            if self.detector is not None and self.detector.suspected_slow(p):
                self._drain_probation[p] = 0
                continue
            self._drain_probation[p] = self._drain_probation.get(p, 0) + 1
            required = policy.straggler_probation * (
                2 ** min(self._drain_relapse.get(p, 0), 4)
            )
            if self._drain_probation[p] >= required:
                ready.append(p)
        if ready:
            self._restore_stragglers(ready, k)

    def _restore_stragglers(self, nodes: List[int], k: int) -> None:
        """Give a recovered node its original threads back (live migration).

        Reuses the grow engine with each node replacing itself: threads
        whose original home is a restored node migrate back (with their
        checkpointed regions, from the live current owners); everything
        else keeps its current placement, so restores compose with any
        concurrent degraded-mode state.
        """
        quiesce_at = self.env.now
        old_proc: Dict[Tuple[int, int], int] = {}
        current = Mapping()
        original = Mapping()
        for fid, entry in sorted(self.functions.items()):
            for t in range(entry["threads"]):
                p = self.processor_of(fid, t)
                old_proc[(fid, t)] = p
                current.assign(fid, t, p)
                original.assign(fid, t, self.glue.processor_of(fid, t))
        new_map = grow_mapping(current, original, {p: p for p in nodes})
        moved_keys: List[Tuple[int, int]] = []
        for key, p in new_map.items():
            if p != old_proc[key]:
                moved_keys.append(key)
            if p == self.glue.processor_of(*key):
                self._proc_override.pop(key, None)
            else:
                self._proc_override[key] = p
        for p in nodes:
            self._drained.discard(p)
            self._drain_probation.pop(p, None)
        self._update_remote_tables(old_proc, new_map, moved_keys)
        invalidate_mapping_caches(scope=self.job_scope)
        if self.config.enforce_memory:
            self._check_memory_footprint()

        transfers: List[Tuple[int, int, int, str]] = []
        for buf in self.buffers:
            transfers.extend(moved_region_transfers(
                buf, lambda f, t: old_proc[(f, t)], new_map.processor_of
            ))
        procs = [
            self.env.process(
                self._restripe_transfer(src, dst, nbytes, label, k),
                name=f"restore:{label}",
            )
            for src, dst, nbytes, label in transfers
            if src != dst and nbytes > 0
        ]
        if procs:
            self.env.run(until=self.env.all_of(procs))
        total = sum(nbytes for _, _, nbytes, _ in transfers)
        pause = self.env.now - quiesce_at
        REGISTRY.record("runtime.straggler_pause_s", pause)
        self._probe_runtime(
            "migrate_straggler",
            detail=(
                f"restored node(s) {sorted(nodes)}; {len(moved_keys)} "
                f"thread(s) earned back in {pause:.6f}s pause"
            ),
            iteration=k,
            nbytes=total,
        )

    # -- per-thread process ---------------------------------------------------------
    def _thread_proc(self, fid: int, thread: int, iteration: int):
        try:
            yield from self._thread_body(fid, thread, iteration)
        except Interrupt:
            # Fault recovery killed this attempt; _recover resets all state.
            return

    def _thread_body(self, fid: int, thread: int, iteration: int):
        entry = self.functions[fid]
        node = self.cluster.node(self.processor_of(fid, thread))
        cfg = self.config

        # Sequence iterations of the same thread (a thread is one control flow).
        if iteration > 0:
            yield self._thread_done[(fid, thread, iteration - 1)]

        if fid in self.source_ids:
            # Data-set admission control (§3.3 latency protocol measures one
            # data set at a time; pipelined runs raise max_in_flight).
            m = cfg.max_in_flight
            if m is not None and iteration >= m:
                yield self._iter_complete[iteration - m]
            # Source pacing, when requested.
            if self._source_interval > 0:
                target = iteration * self._source_interval
                if target > self.env.now:
                    yield self.env.timeout(target - self.env.now)

        # Wait for every inbound message of this iteration.
        for buf in self.in_buffers[fid]:
            events = self._arrival_events(buf, iteration, thread)
            if events:
                yield self.env.all_of(events)

        # Straggler telemetry (migrate_stragglers): measure the wall span
        # from dispatch to exit per node.  A limping node's CPU-rate scaling
        # and queueing delay inflate this honestly — the score needs no
        # access to the injector's ground truth.
        track_progress = self.fault_policy.migrates_stragglers
        busy_from = self.env.now if track_progress else 0.0

        # Function-table dispatch (the per-invocation run-time cost).
        if cfg.dispatch_overhead > 0:
            yield from node.busy(cfg.dispatch_overhead)
        self._probe("enter", entry, thread, iteration, node.index)

        binding = self.bindings[entry["kernel"]]

        # Receive-side logical->physical buffer copies (unpack).  DMA
        # endpoints read the logical buffer directly and pay nothing here.
        if not binding.dma_endpoint:
            recv_bytes = sum(
                self._staged_bytes(buf, thread, cfg.recv_staging, receive=True)
                for buf in self.in_buffers[fid]
            )
            if recv_bytes:
                yield from node.copy(recv_bytes)

        inputs = {
            buf.dst_port: buf.read(iteration, thread) for buf in self.in_buffers[fid]
        }
        ctx = self._make_ctx(entry, thread, iteration)

        flops = binding.flops(ctx, inputs)
        copy_bytes = binding.copy_bytes(ctx, inputs)
        if flops:
            # Generated call sites sustain a fraction of hand-tuned MFLOPS
            # (generic strides through port descriptors).
            yield from node.compute(flops / cfg.compute_efficiency)
        if copy_bytes:
            yield from node.copy(copy_bytes)

        policy = self.fault_policy
        attempts = 1 + (policy.max_retries if policy.mode != "fail_fast" else 0)
        delay = policy.backoff
        for attempt in range(1, attempts + 1):
            try:
                outputs = binding.run(ctx, inputs)
                break
            except TransientError as exc:
                if attempt >= attempts:
                    raise
                self._probe_runtime(
                    "retry",
                    detail=(
                        f"kernel {entry['kernel']} attempt {attempt}: {exc}"
                    ),
                    processor=node.index,
                    iteration=iteration,
                )
                if delay > 0:
                    yield self.env.timeout(self._jittered(delay))
                delay *= policy.backoff_factor
            except KernelError:
                raise
            except Exception as exc:
                raise RuntimeError_(
                    f"kernel {entry['kernel']!r} of {entry['name']!r} failed: {exc}"
                ) from exc

        if fid in self.source_ids:
            # "Latency ... from when the first data leaves the data source":
            # keep the earliest source completion of this iteration.
            prev = self._source_times.get(iteration)
            self._source_times[iteration] = (
                self.env.now if prev is None else min(prev, self.env.now)
            )
            self._probe("source", entry, thread, iteration, node.index)
        if fid in self.sink_ids:
            # "... to the time the final result is output to the data sink":
            # keep the latest sink completion.
            self._sink_times[iteration] = max(
                self._sink_times.get(iteration, 0.0), self.env.now
            )
            self._probe("sink", entry, thread, iteration, node.index)

        # Send-side staging copies (pack) + deposit into logical buffers.
        for buf in self.out_buffers[fid]:
            if buf.src_port not in outputs:
                raise RuntimeError_(
                    f"kernel {entry['kernel']!r} produced no data for port "
                    f"{buf.src_port!r} (has {sorted(outputs)})"
                )
            if binding.dma_endpoint and not cfg.stage_dma_sources:
                staged = 0  # optimised glue: source DMAs into the buffer
            else:
                staged = self._staged_bytes(buf, thread, cfg.send_staging, receive=False)
            if staged:
                yield from node.copy(staged)
            buf.write(iteration, thread, outputs[buf.src_port])
            # Rotated send order (start past your own thread id) so concurrent
            # redistributions don't all target destination 0 first (ejection
            # convoys); this is the schedule a pairwise exchange produces.
            for msg in buf.send_order(thread):
                proc = self.env.process(
                    self._transfer_proc(buf, msg, iteration, entry),
                    name=f"xfer:{buf.name}#{iteration}",
                )
                self._live_procs.append(proc)

        if track_progress:
            per_node = self._iter_busy.setdefault(iteration, {})
            per_node[node.index] = (
                per_node.get(node.index, 0.0) + (self.env.now - busy_from)
            )

        self._probe("exit", entry, thread, iteration, node.index)
        if fid in self.sink_ids:
            self._iter_sinks_left[iteration] -= 1
            if self._iter_sinks_left[iteration] == 0:
                self._iter_complete[iteration].succeed()
        self._thread_done[(fid, thread, iteration)].succeed()

    def _staged_bytes(self, buf: RuntimeBuffer, thread: int, policy: str, receive: bool) -> int:
        """Bytes charged to the staging copy under the given policy."""
        if policy == "none":
            return 0
        if policy == "all":
            return (
                buf.dst_region_bytes(thread) if receive else buf.src_region_bytes(thread)
            )
        table = self._buf_recv_remote if receive else self._buf_send_remote
        return table.get((buf.buffer_id, thread), 0)

    def _transfer_proc(self, buf: RuntimeBuffer, msg, iteration: int, src_entry: dict):
        try:
            yield from self._transfer_body(buf, msg, iteration, src_entry)
        except Interrupt:
            return

    def _transfer_body(self, buf: RuntimeBuffer, msg, iteration: int, src_entry: dict):
        src_proc = self.processor_of(buf.src_function, msg.src_thread)
        dst_proc = self.processor_of(buf.dst_function, msg.dst_thread)
        node = self.cluster.node(src_proc)
        if self.config.striping_overhead_per_message > 0:
            yield from node.busy(self.config.striping_overhead_per_message)
        self._probe(
            "send", src_entry, msg.src_thread, iteration, src_proc,
            detail=buf.name, nbytes=msg.nbytes,
        )
        if src_proc != dst_proc:
            yield from self._deliver(buf, msg, iteration, src_proc, dst_proc)
        dst_entry = self.functions[buf.dst_function]
        self._probe(
            "arrive", dst_entry, msg.dst_thread, iteration, dst_proc,
            detail=buf.name, nbytes=msg.nbytes,
        )
        events = self._arrival_events(buf, iteration, msg.dst_thread)
        events[buf.message_slot(msg)].succeed()

    def _deliver(self, buf: RuntimeBuffer, msg, iteration: int,
                 src_proc: int, dst_proc: int):
        """Move one planned message across the fabric, retrying transient
        losses when the policy allows (an ack-protocol model: the sender
        observes the delivery verdict and retransmits)."""
        policy = self.fault_policy
        attempts = 1 + (policy.max_retries if policy.retries_transfers else 0)
        delay = policy.backoff
        failure: Any = None
        for attempt in range(1, attempts + 1):
            try:
                outcome = yield from self.cluster.transfer(
                    src_proc, dst_proc, msg.nbytes
                )
            except LinkFailure as exc:
                # Link outages may heal; node crashes (NodeFailure) always
                # propagate — the transfer level cannot restart a node.
                if attempt >= attempts:
                    raise
                failure = exc
            else:
                if outcome.ok:
                    return
                failure = outcome.reason
                if attempt >= attempts:
                    break
            self._probe_runtime(
                "retry",
                detail=(
                    f"{buf.name}#{iteration} {src_proc}->{dst_proc} "
                    f"attempt {attempt}: {failure}"
                ),
                processor=src_proc,
                iteration=iteration,
            )
            if delay > 0:
                yield self.env.timeout(self._jittered(delay))
            delay *= policy.backoff_factor
        raise TransportError(
            f"message {buf.name}#{iteration} from processor {src_proc} to "
            f"{dst_proc} undelivered: {failure}; gave up after {attempts} "
            f"attempt(s) at t={self.env.now:.6f}"
        )

    # -- helpers ---------------------------------------------------------------
    def _make_ctx(self, entry: dict, thread: int, iteration: int) -> ThreadContext:
        fid = entry["id"]
        dicts = self._ctx_dicts.get((fid, thread))
        if dicts is None:
            dicts = (
                {buf.dst_port: buf.dst_region(thread) for buf in self.in_buffers[fid]},
                {buf.src_port: buf.src_region(thread) for buf in self.out_buffers[fid]},
                {buf.src_port: buf.dtype for buf in self.out_buffers[fid]},
            )
            self._ctx_dicts[(fid, thread)] = dicts
        in_regions, out_regions, out_dtypes = dicts
        return ThreadContext(
            function_id=fid,
            name=entry["name"],
            kernel=entry["kernel"],
            thread=thread,
            threads=entry["threads"],
            iteration=iteration,
            params=entry["params"],
            in_regions=in_regions,
            out_regions=out_regions,
            out_dtypes=out_dtypes,
            execute_data=self.config.execute_data,
            fft_backend=self.config.fft_backend,
            fetch_input=self._fetch_input,
            store_result=self._store_result,
        )

    def _fetch_input(self, iteration: int) -> Any:
        if self._input_provider is None:
            raise RuntimeError_("no input provider configured")
        return self._input_provider(iteration)

    def _store_result(self, iteration: int, piece: Any) -> None:
        self._sink_results.setdefault(iteration, []).append(piece)

    def _probe(
        self,
        kind: str,
        entry: dict,
        thread: int,
        iteration: int,
        processor: int,
        detail: str = "",
        nbytes: int = 0,
    ) -> None:
        if not self.trace.enabled:
            return  # skip the ProbeEvent allocation entirely
        self.trace.record(
            ProbeEvent(
                time=self.env.now,
                kind=kind,
                function=entry["name"],
                function_id=entry["id"],
                thread=thread,
                processor=processor,
                iteration=iteration,
                detail=detail,
                nbytes=nbytes,
            )
        )

    def _probe_runtime(
        self,
        kind: str,
        detail: str = "",
        processor: int = -1,
        iteration: int = -1,
        nbytes: int = 0,
    ) -> None:
        """Record a probe not tied to any application function (fault events,
        retries, checkpoints, detector verdicts, shrink/restripe)."""
        if not self.trace.enabled:
            return
        self.trace.record(
            ProbeEvent(
                time=self.env.now,
                kind=kind,
                function="<runtime>",
                function_id=-1,
                thread=0,
                processor=processor,
                iteration=iteration,
                detail=detail,
                nbytes=nbytes,
            )
        )

    def _on_fault_injected(self, time: float, kind: str, detail: str,
                           node: int) -> None:
        if kind == "node_join":
            # Replacement capacity powered on; absorbed at the next iteration
            # boundary by _maybe_grow (grow_restripe policy only).
            self._pending_joins.append(node)
        self.trace.record(
            ProbeEvent(
                time=time,
                kind="fault_injected",
                function="<fault>",
                function_id=-1,
                thread=0,
                processor=node,
                iteration=-1,
                detail=f"{kind}: {detail}",
            )
        )
