"""Run-time kernel bindings: shelf names -> executable behaviours + cost models.

The glue code's function table names kernels symbolically; at load time the
run-time binds each name to a :class:`KernelBinding` that knows how to
(a) produce the output regions from the input regions and (b) report the
flops / bytes the performance model should charge.  In timing-only mode the
numeric work is skipped and phantom outputs of the correct shapes flow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from ...kernels import signal as siglib
from ...kernels.fft import fft_rows as _fft_rows_impl
from .phantom import PhantomArray

__all__ = ["ThreadContext", "KernelBinding", "KernelError", "default_bindings"]


class KernelError(RuntimeError):
    """Raised when a kernel cannot execute as configured."""


@dataclass
class ThreadContext:
    """Everything one function-thread execution can see."""

    function_id: int
    name: str
    kernel: str
    thread: int
    threads: int
    iteration: int
    params: Dict[str, Any]
    #: port -> Region (per-axis index sets) of the logical data this thread handles
    in_regions: Dict[str, tuple]
    out_regions: Dict[str, tuple]
    #: port -> logical dtype string
    out_dtypes: Dict[str, str]
    execute_data: bool = True
    fft_backend: str = "own"
    #: hook the runtime sets for matrix_source to pull the iteration's input
    fetch_input: Optional[Callable[[int], Any]] = None
    #: hook the runtime sets for matrix_sink to deposit results
    store_result: Optional[Callable[[int, Any], None]] = None

    def out_shape(self, port: str) -> Tuple[int, ...]:
        from .striping import region_shape

        return region_shape(self.out_regions[port])

    def phantom_out(self, port: str) -> PhantomArray:
        return PhantomArray(self.out_shape(port), self.out_dtypes[port])


@dataclass(frozen=True)
class KernelBinding:
    """A name's executable behaviour + analytic cost.

    ``run(ctx, inputs) -> outputs`` maps port-name-keyed arrays to port-name-
    keyed arrays.  ``flops(ctx, inputs)`` and ``copy_bytes(ctx, inputs)``
    feed the CPU cost model; both see the same per-thread regions the kernel
    does, so cost scales with the slice, not the logical buffer.
    """

    name: str
    run: Callable[[ThreadContext, Dict[str, Any]], Dict[str, Any]]
    flops: Callable[[ThreadContext, Dict[str, Any]], float]
    copy_bytes: Callable[[ThreadContext, Dict[str, Any]], float] = lambda ctx, ins: 0.0
    #: DMA endpoints (sources/sinks) read/write logical buffers directly and
    #: are exempt from the receive-side staging copy.
    dma_endpoint: bool = False


def _shape_of(data: Any) -> Tuple[int, ...]:
    return tuple(getattr(data, "shape", ()))


def _nbytes_of(data: Any) -> int:
    return int(getattr(data, "nbytes", 0))


def _fft_flops(rows: int, n: int) -> float:
    if n <= 1:
        return 0.0
    return rows * 5.0 * n * math.log2(n)


# ---------------------------------------------------------------------------
# structural kernels
# ---------------------------------------------------------------------------

def _run_source(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    if not ctx.execute_data:
        return {port: ctx.phantom_out(port) for port in ctx.out_regions}
    if ctx.fetch_input is None:
        raise KernelError(f"{ctx.name}: matrix_source has no input provider")
    data = ctx.fetch_input(ctx.iteration)
    from .striping import region_indexer

    outs = {}
    for port, region in ctx.out_regions.items():
        arr = np.asarray(data)
        outs[port] = np.ascontiguousarray(arr[region_indexer(region)])
    return outs


def _run_sink(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    if ctx.store_result is None:
        raise KernelError(f"{ctx.name}: matrix_sink has no result store")
    for port, data in inputs.items():
        # Record which box of the logical output this thread delivered, so a
        # distributed sink's pieces can be stitched back together.
        ctx.store_result(ctx.iteration, (ctx.in_regions[port], data))
    return {}


def _single_io(ctx: ThreadContext, inputs: Dict[str, Any], what: str) -> Tuple[str, Any, str]:
    if len(inputs) != 1 or len(ctx.out_regions) != 1:
        raise KernelError(
            f"{ctx.name}: {what} needs exactly one input and one output port"
        )
    (in_data,) = inputs.values()
    (out_port,) = ctx.out_regions.keys()
    return out_port, in_data, what


def _run_identity(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    """Pass-through; when the ports stripe differently, emit the slice of the
    input that corresponds to this thread's output region (legal whenever the
    input region contains the output region, e.g. replicated -> striped)."""
    out_port, data, _ = _single_io(ctx, inputs, "identity")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    (in_port,) = ctx.in_regions.keys()
    rin, rout = ctx.in_regions[in_port], ctx.out_regions[out_port]
    arr = np.asarray(data)
    if rin == rout:
        return {out_port: arr}
    positions = []
    for ax_in, ax_out in zip(rin, rout):
        if not ax_in.contains(ax_out):
            raise KernelError(
                f"{ctx.name}: identity thread {ctx.thread} must emit data it "
                f"never received (out region not contained in in region); "
                f"make the port stripings compatible"
            )
        positions.append(ax_in.positions_of(ax_out))
    return {out_port: np.ascontiguousarray(arr[np.ix_(*positions)])}


def _run_fft_rows(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    out_port, data, _ = _single_io(ctx, inputs, "fft_rows")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    arr = np.asarray(data)
    if arr.ndim != 2:
        raise KernelError(f"{ctx.name}: fft_rows needs a 2-D block, got {arr.shape}")
    return {out_port: _fft_rows_impl(arr, backend=ctx.fft_backend).astype(ctx.out_dtypes[out_port])}


def _run_fft_cols(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    out_port, data, _ = _single_io(ctx, inputs, "fft_cols")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    arr = np.asarray(data)
    if arr.ndim != 2:
        raise KernelError(f"{ctx.name}: fft_cols needs a 2-D block, got {arr.shape}")
    out = _fft_rows_impl(np.ascontiguousarray(arr.T), backend=ctx.fft_backend).T
    return {out_port: np.ascontiguousarray(out).astype(ctx.out_dtypes[out_port])}


def _run_ifft_rows(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    out_port, data, _ = _single_io(ctx, inputs, "ifft_rows")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    from ...kernels.fft import ifft_rows

    arr = np.asarray(data)
    if arr.ndim != 2:
        raise KernelError(f"{ctx.name}: ifft_rows needs a 2-D block")
    return {out_port: ifft_rows(arr, backend=ctx.fft_backend).astype(ctx.out_dtypes[out_port])}


def _run_ifft_cols(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    out_port, data, _ = _single_io(ctx, inputs, "ifft_cols")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    from ...kernels.fft import ifft_rows

    arr = np.asarray(data)
    if arr.ndim != 2:
        raise KernelError(f"{ctx.name}: ifft_cols needs a 2-D block")
    out = ifft_rows(np.ascontiguousarray(arr.T), backend=ctx.fft_backend).T
    return {out_port: np.ascontiguousarray(out).astype(ctx.out_dtypes[out_port])}


def _build_filter_kernel(kind: str, size: int, sigma: float) -> np.ndarray:
    if kind == "box":
        return np.full((size, size), 1.0 / (size * size))
    if kind == "gaussian":
        half = size // 2
        ax = np.arange(size) - half
        g = np.exp(-(ax**2) / (2 * sigma**2))
        k = np.outer(g, g)
        return k / k.sum()
    raise KernelError(f"unknown filter kind {kind!r}")


def _run_spectrum_multiply(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    """Multiply this thread's slice of a 2-D spectrum by a filter's spectrum.

    Params: ``filter`` ("box"|"gaussian"), ``size`` (odd kernel size),
    ``sigma`` (gaussian), ``shape`` (full logical [h, w], required to build
    the padded filter spectrum).
    """
    out_port, data, _ = _single_io(ctx, inputs, "spectrum_multiply")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    from ...kernels.fft import fft2d
    from .striping import region_indexer

    arr = np.asarray(data)
    shape = tuple(ctx.params.get("shape") or ())
    if len(shape) != 2:
        raise KernelError(f"{ctx.name}: spectrum_multiply needs params['shape']=[h, w]")
    kern = _build_filter_kernel(
        ctx.params.get("filter", "gaussian"),
        ctx.params.get("size", 5),
        ctx.params.get("sigma", 1.0),
    )
    padded = np.zeros(shape, dtype=complex)
    padded[: kern.shape[0], : kern.shape[1]] = kern
    spectrum = fft2d(padded, backend=ctx.fft_backend)
    (in_port,) = ctx.in_regions.keys()
    my_slice = spectrum[region_indexer(ctx.in_regions[in_port])]
    return {out_port: (arr * my_slice).astype(ctx.out_dtypes[out_port])}


def _run_block_transpose(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    out_port, data, _ = _single_io(ctx, inputs, "block_transpose")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    arr = np.asarray(data)
    if arr.ndim != 2:
        raise KernelError(f"{ctx.name}: block_transpose needs a 2-D block")
    out = np.ascontiguousarray(arr.T)
    want = ctx.out_shape(out_port)
    if out.shape != want:
        raise KernelError(
            f"{ctx.name}: transposed block {out.shape} does not match "
            f"output region {want}; stripe axes of the ports disagree"
        )
    return {out_port: out}


def _run_window_rows(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    out_port, data, _ = _single_io(ctx, inputs, "window_rows")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    arr = np.asarray(data)
    kind = ctx.params.get("window", "hanning")
    maker = {
        "hanning": siglib.hanning_window,
        "hamming": siglib.hamming_window,
        "blackman": siglib.blackman_window,
    }.get(kind)
    if maker is None:
        raise KernelError(f"{ctx.name}: unknown window {kind!r}")
    return {out_port: siglib.apply_window(arr, maker(arr.shape[-1])).astype(arr.dtype)}


def _run_vmag2(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    out_port, data, _ = _single_io(ctx, inputs, "vmag2")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    return {out_port: siglib.vmag2(np.asarray(data)).astype(ctx.out_dtypes[out_port])}


def _run_pulse_compress(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    """Matched-filter pulse compression of this thread's pulse rows.

    Params: ``bandwidth_frac`` for the reference chirp (default 0.5).
    """
    out_port, data, _ = _single_io(ctx, inputs, "pulse_compress")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    from ...kernels.radar import chirp_waveform, pulse_compress_rows

    arr = np.asarray(data)
    if arr.ndim != 2:
        raise KernelError(f"{ctx.name}: pulse_compress needs a pulses x range block")
    wf = chirp_waveform(arr.shape[1], ctx.params.get("bandwidth_frac", 0.5))
    return {out_port: pulse_compress_rows(arr, wf).astype(ctx.out_dtypes[out_port])}


def _run_doppler(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    """Doppler filter bank along the pulse (first) axis of this block.

    Params: ``window`` (hanning/hamming/blackman/none, default hanning).
    """
    out_port, data, _ = _single_io(ctx, inputs, "doppler")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    from ...kernels.radar import doppler_process

    arr = np.asarray(data)
    if arr.ndim != 2:
        raise KernelError(f"{ctx.name}: doppler needs a pulses x range block")
    kind = ctx.params.get("window", "hanning")
    window = None
    if kind != "none":
        maker = {
            "hanning": siglib.hanning_window,
            "hamming": siglib.hamming_window,
            "blackman": siglib.blackman_window,
        }.get(kind)
        if maker is None:
            raise KernelError(f"{ctx.name}: unknown window {kind!r}")
        window = maker(arr.shape[0])
    return {out_port: doppler_process(arr, window).astype(ctx.out_dtypes[out_port])}


def _run_cfar(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
    """CA-CFAR detection along the range (last) axis of this block.

    Params: ``guard``, ``train``, ``scale``.  Output dtype is the port's
    (detections as 0/1 in that dtype).
    """
    out_port, data, _ = _single_io(ctx, inputs, "cfar")
    if not ctx.execute_data:
        return {out_port: ctx.phantom_out(out_port)}
    from ...kernels.radar import cfar_detect

    det = cfar_detect(
        np.asarray(data),
        guard=ctx.params.get("guard", 2),
        train=ctx.params.get("train", 8),
        scale=ctx.params.get("scale", 10.0),
    )
    return {out_port: det.astype(ctx.out_dtypes[out_port])}


def _run_binary(op: Callable) -> Callable:
    def run(ctx: ThreadContext, inputs: Dict[str, Any]) -> Dict[str, Any]:
        if len(inputs) != 2 or len(ctx.out_regions) != 1:
            raise KernelError(f"{ctx.name}: binary kernel needs 2 inputs, 1 output")
        (out_port,) = ctx.out_regions.keys()
        if not ctx.execute_data:
            return {out_port: ctx.phantom_out(out_port)}
        a, b = (np.asarray(v) for _, v in sorted(inputs.items()))
        return {out_port: op(a, b).astype(ctx.out_dtypes[out_port])}

    return run


# ---------------------------------------------------------------------------
# cost models
# ---------------------------------------------------------------------------

def _flops_zero(ctx, inputs) -> float:
    return 0.0


def _flops_fft_last_axis(ctx, inputs) -> float:
    (data,) = inputs.values()
    shape = _shape_of(data)
    if len(shape) != 2:
        return 0.0
    return _fft_flops(shape[0], shape[1])


def _flops_fft_first_axis(ctx, inputs) -> float:
    (data,) = inputs.values()
    shape = _shape_of(data)
    if len(shape) != 2:
        return 0.0
    return _fft_flops(shape[1], shape[0])


def _flops_per_elem(k: float) -> Callable:
    def flops(ctx, inputs) -> float:
        return k * sum(getattr(v, "size", 0) for v in inputs.values())

    return flops


def _copy_all_inputs(ctx, inputs) -> float:
    return float(sum(_nbytes_of(v) for v in inputs.values()))


def default_bindings() -> Dict[str, KernelBinding]:
    """The standard binding table the run-time loads."""
    return {
        # Source/sink model DMA endpoints: no CPU charge of their own beyond
        # the source's deposit into its unique logical buffer (send staging).
        "matrix_source": KernelBinding("matrix_source", _run_source, _flops_zero,
                                       dma_endpoint=True),
        "matrix_sink": KernelBinding("matrix_sink", _run_sink, _flops_zero,
                                     dma_endpoint=True),
        "identity": KernelBinding("identity", _run_identity, _flops_zero,
                                  copy_bytes=_copy_all_inputs),
        "fft_rows": KernelBinding("fft_rows", _run_fft_rows, _flops_fft_last_axis),
        "fft_cols": KernelBinding("fft_cols", _run_fft_cols, _flops_fft_first_axis),
        "ifft_rows": KernelBinding("ifft_rows", _run_ifft_rows, _flops_fft_last_axis),
        "ifft_cols": KernelBinding("ifft_cols", _run_ifft_cols, _flops_fft_first_axis),
        # elementwise spectrum filtering (filter spectrum precomputed at
        # design time; the run charges only the multiply)
        "spectrum_multiply": KernelBinding(
            "spectrum_multiply", _run_spectrum_multiply, _flops_per_elem(6.0)
        ),
        # The transpose is pure data movement already charged by the staging
        # copies either side of the kernel (hand code folds it into pack).
        "block_transpose": KernelBinding(
            "block_transpose", _run_block_transpose, _flops_zero,
        ),
        "window_rows": KernelBinding("window_rows", _run_window_rows, _flops_per_elem(6.0)),
        # radar chain kernels (the §1 application class)
        "pulse_compress": KernelBinding(
            "pulse_compress", _run_pulse_compress,
            # forward FFT + spectrum multiply + inverse FFT per row
            lambda ctx, ins: 2.0 * _flops_fft_last_axis(ctx, ins)
            + _flops_per_elem(6.0)(ctx, ins),
        ),
        "doppler": KernelBinding(
            "doppler", _run_doppler,
            lambda ctx, ins: _flops_fft_first_axis(ctx, ins)
            + _flops_per_elem(6.0)(ctx, ins),
        ),
        "cfar": KernelBinding("cfar", _run_cfar, _flops_per_elem(8.0)),
        "vmag2": KernelBinding("vmag2", _run_vmag2, _flops_per_elem(3.0)),
        "vadd": KernelBinding("vadd", _run_binary(siglib.vadd), _flops_per_elem(2.0)),
        "vmul": KernelBinding("vmul", _run_binary(siglib.vmul), _flops_per_elem(6.0)),
    }
