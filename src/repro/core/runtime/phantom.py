"""Phantom arrays: shape/dtype-only payloads for timing-mode runs.

The performance model charges time from *metadata* (bytes, flops), never
from array contents, so benchmark sweeps can skip the actual numerics: a
:class:`PhantomArray` stands in for an ndarray, supports the slicing and
transposition the data path performs, and reports the same ``nbytes`` —
letting a 1024x1024 x 1000-iteration sweep run in milliseconds of wall
clock.  Correctness is established separately by the test suite, which runs
the same code paths with real data at smaller sizes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["PhantomArray", "materialize"]


class PhantomArray:
    """A stand-in ndarray carrying only shape and dtype."""

    __slots__ = ("shape", "dtype")

    def __init__(self, shape: Tuple[int, ...], dtype: str = "complex64"):
        self.shape = tuple(int(d) for d in shape)
        if any(d < 0 for d in self.shape):
            raise ValueError(f"negative dimension in {shape}")
        self.dtype = np.dtype(dtype)

    # -- ndarray-compatible metadata ----------------------------------------
    @property
    def size(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def T(self) -> "PhantomArray":
        return PhantomArray(tuple(reversed(self.shape)), self.dtype)

    # -- structural ops the data path uses ------------------------------------
    def __getitem__(self, key) -> "PhantomArray":
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > len(self.shape):
            raise IndexError(f"too many indices for shape {self.shape}")
        new_shape = []
        for axis, k in enumerate(key):
            extent = self.shape[axis]
            if isinstance(k, slice):
                start, stop, step = k.indices(extent)
                if step != 1:
                    raise ValueError("PhantomArray supports unit-step slices only")
                new_shape.append(max(0, stop - start))
            elif isinstance(k, (int, np.integer)):
                if not (-extent <= k < extent):
                    raise IndexError(f"index {k} out of range for axis {axis}")
                # integer index drops the axis
            else:
                raise TypeError(f"unsupported index {k!r}")
        new_shape.extend(self.shape[len(key):])
        return PhantomArray(tuple(new_shape), self.dtype)

    def reshape(self, *shape) -> "PhantomArray":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        target = PhantomArray(shape, self.dtype)
        if target.size != self.size:
            raise ValueError(f"cannot reshape {self.shape} to {shape}")
        return target

    def copy(self) -> "PhantomArray":
        return PhantomArray(self.shape, self.dtype)

    def astype(self, dtype) -> "PhantomArray":
        return PhantomArray(self.shape, np.dtype(dtype))

    def __repr__(self):
        return f"PhantomArray(shape={self.shape}, dtype={self.dtype.name})"

    def __eq__(self, other):
        return (
            isinstance(other, PhantomArray)
            and self.shape == other.shape
            and self.dtype == other.dtype
        )

    def __hash__(self):
        return hash((self.shape, str(self.dtype)))


def materialize(arr) -> np.ndarray:
    """Turn a phantom into zeros (for code that insists on real data)."""
    if isinstance(arr, PhantomArray):
        return np.zeros(arr.shape, dtype=arr.dtype)
    return np.asarray(arr)
