"""Fault-tolerance policies for the SAGE run-time kernel.

Real deployments of SAGE-generated code ran on embedded VxWorks systems
where a node or fabric failure mid-mission had to be survivable.  The
run-time therefore executes under one of three :class:`FaultPolicy` modes:

* ``fail_fast`` — the historical behaviour: the first fault aborts the run
  with a legible error naming the failed component and the virtual time.
* ``retry`` — transient faults (lost/corrupted messages, transient link
  outages, kernels raising
  :class:`~repro.machine.faults.TransientError`) are retried in place with
  exponential backoff; node crashes still abort.
* ``checkpoint_restart`` — iterations execute sequentially; buffer state is
  snapshotted at every iteration boundary and, after a recoverable fault
  (including a node crash — the crashed node is restarted unless the plan
  marked it permanent), the iteration replays from the last good
  checkpoint.  Virtual time never rewinds, so recovery overhead is visible
  in the makespan, and ``checkpoint`` / ``restore`` probe events make it
  visible on the timeline.
* ``shrink_restripe`` — everything ``checkpoint_restart`` does, plus a
  heartbeat failure detector (see :mod:`repro.mpi.detector`) and survival
  of *permanent* node loss: once the detector declares a crashed node dead,
  the run-time shrinks to the survivors, remaps the dead node's threads
  (``shrink`` probe), recomputes the striping/staging plan, redistributes
  the latest buffer checkpoints to the new owners over the fabric
  (``restripe`` probe), and replays the interrupted iteration — the
  application completes at degraded throughput instead of aborting.
* ``grow_restripe`` — everything ``shrink_restripe`` does, plus elastic
  re-growth: when replacement capacity powers on (a
  :class:`~repro.machine.faults.NodeJoin` event), the run-time admits it
  through the detector's join handshake at the next iteration boundary,
  migrates the displaced threads' checkpointed buffer state back over the
  fabric (``join`` / ``grow`` / ``migrate`` probes), incrementally
  re-stripes — only moved threads are re-planned — and resumes at full
  striping width, closing the crash → shrink → degraded → re-grow →
  restored loop (see ``docs/ELASTICITY.md``).
* ``migrate_stragglers`` — everything ``grow_restripe`` does, plus *gray*
  failure handling: the kernel records per-iteration per-node busy time, a
  node whose progress score exceeds ``straggler_factor ×`` the median for
  ``straggler_patience`` consecutive iterations is drained at the next
  iteration boundary — its threads migrate (with their checkpointed
  regions, shipped from the still-live owner) onto the healthy nodes, the
  node keeps its rank but holds zero threads — and, once the detector's
  ``suspect_slow`` state clears for ``straggler_probation`` consecutive
  boundaries, it earns its original threads back through the same
  migration engine (see ``docs/CHAOS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultPolicy", "FAIL_FAST", "TransportError", "POLICY_MODES"]

POLICY_MODES = (
    "fail_fast", "retry", "checkpoint_restart", "shrink_restripe",
    "grow_restripe", "migrate_stragglers",
)


class TransportError(RuntimeError):
    """A runtime message could not be delivered (retries exhausted)."""


@dataclass(frozen=True)
class FaultPolicy:
    """How the run-time responds to injected faults.

    Attributes
    ----------
    mode:
        One of ``"fail_fast"``, ``"retry"``, ``"checkpoint_restart"``.
    max_retries:
        Per-operation re-transmissions / kernel re-invocations (modes
        ``retry`` and ``checkpoint_restart``).
    backoff / backoff_factor:
        First retry delay in virtual seconds and its exponential growth.
    max_restarts:
        Iteration replays allowed per run (checkpointing modes) before the
        underlying fault is re-raised.
    heartbeat_period / miss_grace / suspicion_threshold:
        ``shrink_restripe`` only — the knobs of the
        :class:`~repro.mpi.detector.HeartbeatConfig` the run-time starts:
        seconds between heartbeats, silence (in periods) counted as a miss,
        and consecutive misses before a node is declared dead.
    backoff_jitter:
        Fraction in [0, 1): every runtime retry backoff sleep is scaled by
        a seeded uniform draw from ``[1 - jitter, 1 + jitter]``, so many
        ranks retrying the same burned transfer desynchronise instead of
        re-colliding.  0 (the default) draws nothing — byte-identical to
        the legacy backoff.
    adaptive_detection:
        When True the detector runs with adaptive (phi-accrual-style)
        grace windows and RTT probing — required for ``suspect_slow``
        signals; implied by ``migrate_stragglers``.
    rtt_probe_every:
        Detector RTT-probe cadence, in heartbeat periods (adaptive modes).
    straggler_factor:
        A node whose per-iteration busy time exceeds this multiple of the
        median across thread-holding nodes counts one straggler strike.
    straggler_patience:
        Consecutive strikes before the node is drained
        (``migrate_stragglers`` only).
    straggler_probation:
        Consecutive iteration boundaries with a clear ``suspect_slow``
        state before a drained node earns its threads back.
    """

    mode: str = "fail_fast"
    max_retries: int = 0
    backoff: float = 1e-4
    backoff_factor: float = 2.0
    max_restarts: int = 3
    heartbeat_period: float = 1e-4
    miss_grace: float = 2.5
    suspicion_threshold: int = 3
    backoff_jitter: float = 0.0
    adaptive_detection: bool = False
    rtt_probe_every: int = 4
    straggler_factor: float = 2.0
    straggler_patience: int = 2
    straggler_probation: int = 2

    def __post_init__(self):
        if self.mode not in POLICY_MODES:
            raise ValueError(f"mode must be one of {POLICY_MODES}, got {self.mode!r}")
        if self.max_retries < 0 or self.max_restarts < 0:
            raise ValueError("max_retries and max_restarts must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 1:
            raise ValueError("backoff must be >= 0 and backoff_factor >= 1")
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.miss_grace < 1:
            raise ValueError("miss_grace must be >= 1")
        if self.suspicion_threshold < 1:
            raise ValueError("suspicion_threshold must be >= 1")
        if not (0 <= self.backoff_jitter < 1):
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.rtt_probe_every < 1:
            raise ValueError("rtt_probe_every must be >= 1")
        if self.straggler_factor <= 1:
            raise ValueError("straggler_factor must be > 1")
        if self.straggler_patience < 1 or self.straggler_probation < 1:
            raise ValueError(
                "straggler_patience and straggler_probation must be >= 1"
            )

    # -- constructors ----------------------------------------------------
    @classmethod
    def fail_fast(cls) -> "FaultPolicy":
        """Abort on the first fault (the default)."""
        return cls()

    @classmethod
    def retry(cls, max_retries: int = 3, backoff: float = 1e-4,
              backoff_factor: float = 2.0) -> "FaultPolicy":
        """Retry transient faults in place; crashes still abort."""
        return cls(mode="retry", max_retries=max_retries, backoff=backoff,
                   backoff_factor=backoff_factor)

    @classmethod
    def checkpoint_restart(cls, max_restarts: int = 3, max_retries: int = 2,
                           backoff: float = 1e-4,
                           backoff_factor: float = 2.0) -> "FaultPolicy":
        """Snapshot at iteration boundaries; replay after recoverable faults."""
        return cls(mode="checkpoint_restart", max_restarts=max_restarts,
                   max_retries=max_retries, backoff=backoff,
                   backoff_factor=backoff_factor)

    @classmethod
    def shrink_restripe(cls, max_restarts: int = 3, max_retries: int = 2,
                        backoff: float = 1e-4, backoff_factor: float = 2.0,
                        heartbeat_period: float = 1e-4, miss_grace: float = 2.5,
                        suspicion_threshold: int = 3) -> "FaultPolicy":
        """Checkpoint/replay plus shrinking recovery from permanent loss."""
        return cls(mode="shrink_restripe", max_restarts=max_restarts,
                   max_retries=max_retries, backoff=backoff,
                   backoff_factor=backoff_factor,
                   heartbeat_period=heartbeat_period, miss_grace=miss_grace,
                   suspicion_threshold=suspicion_threshold)

    @classmethod
    def grow_restripe(cls, max_restarts: int = 3, max_retries: int = 2,
                      backoff: float = 1e-4, backoff_factor: float = 2.0,
                      heartbeat_period: float = 1e-4, miss_grace: float = 2.5,
                      suspicion_threshold: int = 3) -> "FaultPolicy":
        """Shrinking recovery plus automatic re-absorption of replacements."""
        return cls(mode="grow_restripe", max_restarts=max_restarts,
                   max_retries=max_retries, backoff=backoff,
                   backoff_factor=backoff_factor,
                   heartbeat_period=heartbeat_period, miss_grace=miss_grace,
                   suspicion_threshold=suspicion_threshold)

    @classmethod
    def migrate_stragglers(cls, max_restarts: int = 3, max_retries: int = 2,
                           backoff: float = 1e-4, backoff_factor: float = 2.0,
                           heartbeat_period: float = 1e-4,
                           miss_grace: float = 2.5,
                           suspicion_threshold: int = 3,
                           backoff_jitter: float = 0.0,
                           rtt_probe_every: int = 4,
                           straggler_factor: float = 2.0,
                           straggler_patience: int = 2,
                           straggler_probation: int = 2) -> "FaultPolicy":
        """Elastic recovery plus gray-failure drain/restore of stragglers."""
        return cls(mode="migrate_stragglers", max_restarts=max_restarts,
                   max_retries=max_retries, backoff=backoff,
                   backoff_factor=backoff_factor,
                   heartbeat_period=heartbeat_period, miss_grace=miss_grace,
                   suspicion_threshold=suspicion_threshold,
                   backoff_jitter=backoff_jitter,
                   adaptive_detection=True,
                   rtt_probe_every=rtt_probe_every,
                   straggler_factor=straggler_factor,
                   straggler_patience=straggler_patience,
                   straggler_probation=straggler_probation)

    @classmethod
    def named(cls, name: str, **overrides) -> "FaultPolicy":
        """Build a policy from its mode name (the service's job-spec path).

        ``overrides`` are forwarded to the mode's constructor, so
        ``FaultPolicy.named("retry", max_retries=5)`` ==
        ``FaultPolicy.retry(max_retries=5)``.
        """
        if name not in POLICY_MODES:
            raise ValueError(
                f"unknown fault policy {name!r}; choose from {POLICY_MODES}"
            )
        return getattr(cls, name)(**overrides)

    @property
    def retries_transfers(self) -> bool:
        return (self.mode in ("retry", "checkpoint_restart",
                              "shrink_restripe", "grow_restripe",
                              "migrate_stragglers")
                and self.max_retries > 0)

    @property
    def checkpoints(self) -> bool:
        return self.mode in (
            "checkpoint_restart", "shrink_restripe", "grow_restripe",
            "migrate_stragglers",
        )

    @property
    def shrinks(self) -> bool:
        """True when permanent node loss is survivable (re-striping modes)."""
        return self.mode in (
            "shrink_restripe", "grow_restripe", "migrate_stragglers"
        )

    @property
    def regrows(self) -> bool:
        """True when replacement capacity is re-absorbed automatically."""
        return self.mode in ("grow_restripe", "migrate_stragglers")

    @property
    def migrates_stragglers(self) -> bool:
        """True when limping nodes are drained and later restored."""
        return self.mode == "migrate_stragglers"


FAIL_FAST = FaultPolicy()
