"""Instrumentation probes and the execution trace.

§1.1: *"The SAGE Visualizer is a configurable instrumentation package that
enables the designer to visualize the execution of the application through a
variety of graphical displays that are fed by probes placed within the
generated code."*

The run-time fires a :class:`ProbeEvent` at every probe point the glue code
declares (function enter/exit) plus message send/arrive events; the
:class:`Trace` is the feed the Visualizer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

__all__ = ["ProbeEvent", "Trace", "PROBE_KINDS"]

PROBE_KINDS = (
    "enter", "exit", "send", "arrive", "source", "sink",
    # Fault-tolerance events (visible in the visualizer/timeline): a fault
    # the machine layer injected, a retried transfer/kernel, an iteration
    # checkpoint, and a replay from the last good checkpoint.
    "fault_injected", "retry", "checkpoint", "restore",
    # Failure detection and shrinking recovery: the heartbeat detector
    # suspecting / declaring a node dead, the run-time dropping dead nodes
    # from the working set, and the re-striping that redistributes buffer
    # checkpoints onto the survivors.
    "suspect", "declare_dead", "shrink", "restripe",
    # Elastic membership (grow_restripe): a replacement/new node admitted by
    # the join handshake, the mapping restored onto the grown member set,
    # and the live migration that ships moved threads' checkpointed buffer
    # state to their restored owners.
    "join", "grow", "migrate",
    # Gray failures (migrate_stragglers): the detector suspecting a node of
    # limping (alive but slow), and the drain/restore migration that moves
    # a straggler's threads onto healthy nodes (and later back).
    "suspect_slow", "migrate_straggler",
)

#: O(1) membership for the per-event validation check (PROBE_KINDS stays a
#: tuple because its ordering is part of the public/display API).
_PROBE_KIND_SET = frozenset(PROBE_KINDS)


@dataclass(frozen=True)
class ProbeEvent:
    """One instrumented occurrence on the virtual timeline."""

    time: float
    kind: str          # one of PROBE_KINDS
    function: str      # function instance path
    function_id: int
    thread: int
    processor: int
    iteration: int
    detail: str = ""   # e.g. buffer name for send/arrive
    nbytes: int = 0

    def __post_init__(self):
        if self.kind not in _PROBE_KIND_SET:
            raise ValueError(f"unknown probe kind {self.kind!r}")


class Trace:
    """An append-only store of probe events with simple query helpers.

    ``job`` is the namespace tag a multi-job service stamps on each
    runtime's trace: probe telemetry re-published on the event bus carries
    it, so consumers can prove no event of one tenant's run ever appears
    under another's topic.  Standalone runs leave it empty.
    """

    def __init__(self, enabled: bool = True, job: str = ""):
        self.enabled = enabled
        self.job = job
        self.events: List[ProbeEvent] = []

    def record(self, event: ProbeEvent) -> None:
        if self.enabled:
            self.events.append(event)

    # -- queries -------------------------------------------------------------
    def by_kind(self, kind: str) -> List[ProbeEvent]:
        return [e for e in self.events if e.kind == kind]

    def by_function(self, function: str) -> List[ProbeEvent]:
        return [e for e in self.events if e.function == function]

    def by_processor(self, processor: int) -> List[ProbeEvent]:
        return [e for e in self.events if e.processor == processor]

    def by_iteration(self, iteration: int) -> List[ProbeEvent]:
        return [e for e in self.events if e.iteration == iteration]

    def spans(self, function: Optional[str] = None) -> List[tuple]:
        """(function, thread, iteration, t_enter, t_exit) busy spans."""
        starts = {}
        out = []
        for e in self.events:
            if function is not None and e.function != function:
                continue
            key = (e.function, e.thread, e.iteration)
            if e.kind == "enter":
                starts[key] = e.time
            elif e.kind == "exit" and key in starts:
                out.append((e.function, e.thread, e.iteration, starts.pop(key), e.time))
        return out

    @property
    def span(self) -> float:
        """Virtual-time extent of the whole trace."""
        if not self.events:
            return 0.0
        times = [e.time for e in self.events]
        return max(times) - min(times)

    def counts_by_kind(self) -> dict:
        """Event count per probe kind (only kinds that occurred)."""
        out: dict = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    # -- canonical form --------------------------------------------------
    def canonical(self) -> str:
        """Byte-exact rendering, one event per line.

        The field order and ``repr`` float rendering match the golden-trace
        harness (``tests/golden_traces.py``), so digests computed here are
        directly comparable across harnesses — the service's isolation
        invariant hinges on that: a job run through the scheduler must
        digest identically to the same spec run standalone.  The ``job``
        tag is deliberately excluded: it names where the trace was
        recorded, not what happened on the virtual timeline.
        """
        return "\n".join(
            "|".join((
                repr(e.time), e.kind, e.function, str(e.function_id),
                str(e.thread), str(e.processor), str(e.iteration),
                e.detail, str(e.nbytes),
            ))
            for e in self.events
        )

    def digest(self) -> str:
        """SHA-256 of :meth:`canonical` — the trace's identity."""
        import hashlib

        return hashlib.sha256(self.canonical().encode()).hexdigest()

    def __len__(self):
        return len(self.events)

    def __iter__(self) -> Iterable[ProbeEvent]:
        return iter(self.events)
