"""Data-striping region algebra.

§2: *"the port striping conventions enable the system designer to define
complex data distribution patterns between functions in a multi-threaded
environment"* and *"The runtime is responsible for striping the data based
on the model information specified in the glue-code."*

This module is that striping logic.  A port's striping declaration plus its
function's thread count determine which *region* of the logical buffer each
thread owns; regions are per-axis index sets supporting three layouts:

* ``replicated`` — every thread owns the full extent,
* ``striped``    — contiguous block decomposition (remainder on leading
  threads),
* ``cyclic``     — (block-)cyclic round-robin decomposition, the "complex"
  pattern (e.g. cyclic row distribution for load-balanced row kernels).

For a (source port, destination port) pair, :func:`message_plan` computes
the exact redistribution: which sub-region every source thread ships to
every destination thread.  Cross-axis plans are where the corner turn falls
out naturally: axis-0 blocks against axis-1 blocks intersect in a full
p x p grid of tiles — an all-to-all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from ...kernels.cornerturn import row_block_bounds
from ...perf.cache import named_cache
from ...perf.registry import REGISTRY
from ..model.datatypes import Striping

__all__ = [
    "AxisIndices",
    "Region",
    "thread_region",
    "compute_thread_region",
    "intersect",
    "message_plan",
    "compute_message_plan",
    "PlannedMessage",
    "region_elems",
    "region_shape",
    "region_indexer",
    "plan_remote_traffic",
    "plan_remote_traffic_delta",
]


class AxisIndices:
    """Index ownership along one axis: a contiguous range or an index set.

    The contiguous case is the fast path (plain slices); cyclic layouts use
    an explicit sorted index array.
    """

    __slots__ = ("start", "stop", "indices")

    def __init__(self, start: int = 0, stop: int = 0,
                 indices: Optional[np.ndarray] = None):
        if indices is not None:
            arr = np.asarray(indices, dtype=np.int64)
            if arr.ndim != 1:
                raise ValueError("indices must be 1-D")
            if arr.size and np.any(np.diff(arr) <= 0):
                raise ValueError("indices must be strictly increasing")
            # Collapse contiguous index sets to ranges (fast path + canonical
            # form, so equality and hashing behave).
            if arr.size and arr[-1] - arr[0] + 1 == arr.size:
                self.start, self.stop, self.indices = int(arr[0]), int(arr[-1]) + 1, None
            elif arr.size == 0:
                self.start = self.stop = 0
                self.indices = None
            else:
                self.start, self.stop, self.indices = int(arr[0]), int(arr[-1]) + 1, arr
        else:
            if stop < start:
                raise ValueError(f"stop {stop} < start {start}")
            self.start, self.stop, self.indices = int(start), int(stop), None

    # -- factories ---------------------------------------------------------
    @staticmethod
    def full(extent: int) -> "AxisIndices":
        return AxisIndices(0, extent)

    @staticmethod
    def of_range(start: int, stop: int) -> "AxisIndices":
        return AxisIndices(start, stop)

    @staticmethod
    def of_indices(indices) -> "AxisIndices":
        return AxisIndices(indices=np.asarray(indices))

    # -- basic properties -----------------------------------------------------
    @property
    def is_contiguous(self) -> bool:
        return self.indices is None

    def count(self) -> int:
        if self.indices is not None:
            return int(self.indices.size)
        return max(0, self.stop - self.start)

    def as_array(self) -> np.ndarray:
        if self.indices is not None:
            return self.indices
        return np.arange(self.start, self.stop, dtype=np.int64)

    def indexer(self) -> Union[slice, np.ndarray]:
        """Something usable to index a numpy axis."""
        if self.indices is not None:
            return self.indices
        return slice(self.start, self.stop)

    # -- algebra ------------------------------------------------------------
    def intersect(self, other: "AxisIndices") -> Optional["AxisIndices"]:
        if self.is_contiguous and other.is_contiguous:
            lo, hi = max(self.start, other.start), min(self.stop, other.stop)
            if lo >= hi:
                return None
            return AxisIndices(lo, hi)
        common = np.intersect1d(self.as_array(), other.as_array(), assume_unique=True)
        if common.size == 0:
            return None
        return AxisIndices(indices=common)

    def contains(self, other: "AxisIndices") -> bool:
        inter = self.intersect(other)
        return inter is not None and inter.count() == other.count()

    def positions_of(self, sub: "AxisIndices") -> np.ndarray:
        """Positions of ``sub``'s indices inside this axis set's ordering."""
        mine = self.as_array()
        theirs = sub.as_array()
        pos = np.searchsorted(mine, theirs)
        if np.any(pos >= mine.size) or np.any(mine[pos] != theirs):
            raise ValueError("sub indices are not contained in this axis set")
        return pos

    # -- value semantics -------------------------------------------------------
    def __eq__(self, other):
        if not isinstance(other, AxisIndices):
            return NotImplemented
        if self.is_contiguous != other.is_contiguous:
            return False
        if self.is_contiguous:
            return (self.start, self.stop) == (other.start, other.stop)
        return np.array_equal(self.indices, other.indices)

    def __hash__(self):
        if self.is_contiguous:
            return hash(("range", self.start, self.stop))
        return hash(("idx", self.indices.tobytes()))

    def __repr__(self):
        if self.is_contiguous:
            return f"[{self.start}:{self.stop}]"
        return f"[{self.count()} indices {self.start}..{self.stop - 1}]"


#: A region is one AxisIndices per axis of the logical shape.
Region = Tuple[AxisIndices, ...]


#: regions/plans are pure functions of hashable striping parameters, so they
#: are memoized process-wide (see repro.perf.cache for invalidation).
_REGION_CACHE = named_cache("striping.thread_region", maxsize=4096)
_PLAN_CACHE = named_cache("striping.message_plan", maxsize=1024)


def thread_region(shape: Tuple[int, ...], striping: Striping, threads: int, t: int) -> Region:
    """The region of the logical data that thread ``t`` of ``threads`` owns.

    Memoized: regions are immutable values derived from immutable inputs
    (``Striping`` is a frozen dataclass), and the same (shape, striping,
    threads, t) tuples recur on every iteration of every run.
    """
    key = (tuple(shape), striping, threads, t)
    region = _REGION_CACHE._data.get(key)
    if region is not None:
        _REGION_CACHE.hits += 1
        return region
    return _REGION_CACHE.get(
        key, lambda: compute_thread_region(shape, striping, threads, t)
    )


def compute_thread_region(
    shape: Tuple[int, ...], striping: Striping, threads: int, t: int
) -> Region:
    """Uncached :func:`thread_region`; the property tests compare the two."""
    if threads <= 0:
        raise ValueError("threads must be positive")
    if not (0 <= t < threads):
        raise ValueError(f"thread {t} out of range [0, {threads})")
    if striping.kind == "replicated":
        return tuple(AxisIndices.full(d) for d in shape)
    axis = striping.axis
    if axis >= len(shape):
        raise ValueError(f"stripe axis {axis} out of range for shape {shape}")
    extent = shape[axis]
    if striping.kind == "striped":
        a, b = row_block_bounds(extent, threads)[t]
        owned = AxisIndices.of_range(a, b)
    elif striping.kind == "cyclic":
        block = striping.block
        blocks = np.arange(extent) // block
        owned = AxisIndices.of_indices(np.nonzero(blocks % threads == t)[0])
        if owned.count() == 0:
            owned = AxisIndices(0, 0)
    else:  # pragma: no cover - Striping validates kinds
        raise ValueError(f"unknown striping kind {striping.kind!r}")
    return tuple(
        owned if a == axis else AxisIndices.full(d) for a, d in enumerate(shape)
    )


def region_elems(region: Region) -> int:
    n = 1
    for ax in region:
        n *= ax.count()
    return n


def region_shape(region: Region) -> Tuple[int, ...]:
    return tuple(ax.count() for ax in region)


def region_indexer(region: Region):
    """An indexer tuple addressing the region inside the full logical array.

    Mixed slice/array indexing in numpy has surprising semantics, so when
    any axis is non-contiguous we go through ``np.ix_`` on all axes.
    """
    if all(ax.is_contiguous for ax in region):
        return tuple(ax.indexer() for ax in region)
    return np.ix_(*[ax.as_array() for ax in region])


def intersect(r1: Region, r2: Region) -> Optional[Region]:
    """Region intersection; None when empty."""
    if len(r1) != len(r2):
        raise ValueError("rank mismatch")
    out = []
    for a1, a2 in zip(r1, r2):
        common = a1.intersect(a2)
        if common is None or common.count() == 0:
            return None
        out.append(common)
    return tuple(out)


@dataclass(frozen=True)
class PlannedMessage:
    """One hop of a redistribution: src thread -> dst thread, a region of data."""

    src_thread: int
    dst_thread: int
    region: Region
    nbytes: int


def message_plan(
    shape: Tuple[int, ...],
    elem_bytes: int,
    src_striping: Striping,
    src_threads: int,
    dst_striping: Striping,
    dst_threads: int,
) -> List[PlannedMessage]:
    """All messages needed to redistribute a logical buffer.

    Every destination thread must receive its full region exactly once.
    When the source is replicated (several threads hold the same data), the
    copy whose thread index matches ``d % src_threads`` supplies it, spreading
    the send load.

    Memoized on the full parameter tuple; the cached plan is returned as a
    shallow copy so callers may reorder their list without corrupting the
    cache (``PlannedMessage`` itself is frozen and shared).
    """
    key = (tuple(shape), elem_bytes, src_striping, src_threads,
           dst_striping, dst_threads)
    plan = _PLAN_CACHE.get(
        key,
        lambda: compute_message_plan(
            shape, elem_bytes, src_striping, src_threads,
            dst_striping, dst_threads,
        ),
    )
    return list(plan)


def compute_message_plan(
    shape: Tuple[int, ...],
    elem_bytes: int,
    src_striping: Striping,
    src_threads: int,
    dst_striping: Striping,
    dst_threads: int,
) -> List[PlannedMessage]:
    """Uncached :func:`message_plan`; the property tests compare the two."""
    plan: List[PlannedMessage] = []
    dst_regions = [
        thread_region(shape, dst_striping, dst_threads, d) for d in range(dst_threads)
    ]
    if src_striping.kind == "replicated":
        for d, need in enumerate(dst_regions):
            s = d % src_threads
            plan.append(PlannedMessage(s, d, need, region_elems(need) * elem_bytes))
        return plan
    src_regions = [
        thread_region(shape, src_striping, src_threads, s) for s in range(src_threads)
    ]
    for d, need in enumerate(dst_regions):
        for s, have in enumerate(src_regions):
            piece = intersect(have, need)
            if piece is not None:
                plan.append(
                    PlannedMessage(s, d, piece, region_elems(piece) * elem_bytes)
                )
    return plan


def plan_remote_traffic(plan, src_proc_of, dst_proc_of):
    """Per-thread bytes of ``plan`` that cross processors under a placement.

    ``src_proc_of(thread)`` / ``dst_proc_of(thread)`` give the processor of
    the sending / receiving thread.  Returns two dicts,
    ``(send_bytes_by_src_thread, recv_bytes_by_dst_thread)``, counting only
    the hops whose endpoints land on different processors — the traffic the
    run-time must stage through the fabric.  Recomputed by the shrinking
    recovery path whenever the placement changes.
    """
    send: dict = {}
    recv: dict = {}
    for msg in plan:
        if src_proc_of(msg.src_thread) != dst_proc_of(msg.dst_thread):
            send[msg.src_thread] = send.get(msg.src_thread, 0) + msg.nbytes
            recv[msg.dst_thread] = recv.get(msg.dst_thread, 0) + msg.nbytes
    REGISTRY.count("striping.replan_full_messages", len(plan))
    REGISTRY.count("striping.replan_full", 1)
    return send, recv


def plan_remote_traffic_delta(
    plan, send, recv,
    old_src_proc_of, old_dst_proc_of,
    new_src_proc_of, new_dst_proc_of,
    moved_src, moved_dst,
):
    """O(delta) update of :func:`plan_remote_traffic` tables after a partial
    re-placement.

    ``moved_src`` / ``moved_dst`` are the source/destination threads whose
    processor changed between the old and new placements; only messages with
    at least one moved endpoint are revisited (each one's old contribution is
    retired and its new contribution applied), so the cost scales with the
    migration delta, not the full plan — the property the elasticity
    acceptance test asserts through the ``striping.replan_delta_messages``
    counter.  Returns new ``(send, recv)`` dicts; the inputs are not
    mutated.  Entries that drop to zero are removed, so the result is
    byte-identical to a full recompute at the new placement.
    """
    moved_src = set(moved_src)
    moved_dst = set(moved_dst)
    send = dict(send)
    recv = dict(recv)
    visited = 0
    for msg in plan:
        s, d = msg.src_thread, msg.dst_thread
        if s not in moved_src and d not in moved_dst:
            continue
        visited += 1
        if old_src_proc_of(s) != old_dst_proc_of(d):
            send[s] = send.get(s, 0) - msg.nbytes
            recv[d] = recv.get(d, 0) - msg.nbytes
        if new_src_proc_of(s) != new_dst_proc_of(d):
            send[s] = send.get(s, 0) + msg.nbytes
            recv[d] = recv.get(d, 0) + msg.nbytes
    for table in (send, recv):
        for key in [k for k, v in table.items() if v == 0]:
            del table[key]
    REGISTRY.count("striping.replan_delta_messages", visited)
    REGISTRY.count(
        "striping.replan_delta_threads", len(moved_src) + len(moved_dst)
    )
    REGISTRY.count("striping.replan_delta", 1)
    return send, recv
