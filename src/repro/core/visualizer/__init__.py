"""SAGE Visualizer: trace analysis, timelines, and run reports."""

from .analysis import (
    BottleneckReport,
    communication_volume,
    find_bottleneck,
    function_busy_time,
    latency_histogram,
    latency_violations,
    stage_breakdown,
    utilization,
)
from .timeline import Lane, build_lanes, render_gantt
from .report import run_report
from .export import run_summary, trace_to_csv, trace_to_json
from .html import render_html_report

__all__ = [
    "BottleneckReport",
    "communication_volume",
    "find_bottleneck",
    "function_busy_time",
    "latency_histogram",
    "latency_violations",
    "stage_breakdown",
    "utilization",
    "Lane",
    "build_lanes",
    "render_gantt",
    "run_report",
    "render_html_report",
    "run_summary",
    "trace_to_csv",
    "trace_to_json",
]
