"""Trace analysis: utilisation, bottlenecks, latency-threshold checks.

§1.1: *"The Visualizer allows the designer to configure the instrumentation
probes to measure application performance, and search for problems in the
system, such as bottlenecks or violated latency thresholds."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..runtime.probes import Trace

__all__ = [
    "utilization",
    "function_busy_time",
    "find_bottleneck",
    "latency_violations",
    "communication_volume",
    "stage_breakdown",
    "latency_histogram",
    "BottleneckReport",
]


def utilization(trace: Trace, processors: int) -> List[float]:
    """Busy fraction per processor over the trace span (enter..exit spans)."""
    if processors <= 0:
        raise ValueError("processors must be positive")
    span = trace.span
    busy = [0.0] * processors
    starts: Dict[Tuple[str, int, int], Tuple[float, int]] = {}
    for e in trace:
        key = (e.function, e.thread, e.iteration)
        if e.kind == "enter":
            starts[key] = (e.time, e.processor)
        elif e.kind == "exit" and key in starts:
            t0, proc = starts.pop(key)
            if proc < processors:
                busy[proc] += e.time - t0
    if span <= 0:
        return [0.0] * processors
    return [min(1.0, b / span) for b in busy]


def function_busy_time(trace: Trace) -> Dict[str, float]:
    """Total busy seconds per function instance across threads/iterations."""
    out: Dict[str, float] = {}
    for function, _t, _k, t0, t1 in trace.spans():
        out[function] = out.get(function, 0.0) + (t1 - t0)
    return out


@dataclass
class BottleneckReport:
    """The dominant cost centre of a run."""

    function: str
    busy_time: float
    share: float  # fraction of total busy time
    comm_bytes: int
    comm_share: float  # comm bytes attributable to this function's sends


def find_bottleneck(trace: Trace) -> Optional[BottleneckReport]:
    """The function with the largest total busy time (None for empty traces)."""
    busy = function_busy_time(trace)
    if not busy:
        return None
    total_busy = sum(busy.values())
    name = max(busy, key=busy.get)
    sends = [e for e in trace.by_kind("send")]
    total_bytes = sum(e.nbytes for e in sends)
    mine = sum(e.nbytes for e in sends if e.function == name)
    return BottleneckReport(
        function=name,
        busy_time=busy[name],
        share=busy[name] / total_busy if total_busy else 0.0,
        comm_bytes=mine,
        comm_share=mine / total_bytes if total_bytes else 0.0,
    )


def latency_violations(latencies: List[float], threshold: float) -> List[Tuple[int, float]]:
    """(iteration, latency) pairs exceeding the threshold."""
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    return [(k, lat) for k, lat in enumerate(latencies) if lat > threshold]


def communication_volume(trace: Trace) -> Dict[str, int]:
    """Bytes sent per logical buffer (from send probes)."""
    out: Dict[str, int] = {}
    for e in trace.by_kind("send"):
        out[e.detail] = out.get(e.detail, 0) + e.nbytes
    return out


def stage_breakdown(trace: Trace, iteration: int) -> Dict[str, float]:
    """Busy seconds per function within one iteration (the 'where did the
    data set's time go' display)."""
    out: Dict[str, float] = {}
    for function, _t, k, t0, t1 in trace.spans():
        if k == iteration:
            out[function] = out.get(function, 0.0) + (t1 - t0)
    return out


def latency_histogram(latencies: List[float], bins: int = 10, width: int = 40) -> str:
    """ASCII histogram of per-iteration latencies (jitter display)."""
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be positive")
    if not latencies:
        return "(no latencies)"
    lo, hi = min(latencies), max(latencies)
    if hi <= lo:
        return f"all {len(latencies)} iterations at {lo * 1e3:.3f} ms"
    span = hi - lo
    counts = [0] * bins
    for lat in latencies:
        idx = min(bins - 1, int((lat - lo) / span * bins))
        counts[idx] += 1
    peak = max(counts)
    rows = []
    for i, c in enumerate(counts):
        left = (lo + i * span / bins) * 1e3
        right = (lo + (i + 1) * span / bins) * 1e3
        bar = "#" * (c * width // peak) if peak else ""
        rows.append(f"{left:9.3f}-{right:9.3f} ms |{bar:<{width}s}| {c}")
    return "\n".join(rows)
