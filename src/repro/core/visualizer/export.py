"""Trace export: CSV/JSON feeds for external analysis tools.

The real Visualizer fed graphical displays; these exporters produce the
equivalent machine-readable feeds (one row per probe event, plus a summary
document) so traces can be inspected with pandas/spreadsheets.
"""

from __future__ import annotations

import csv
import io
import json
from typing import IO, Union

from ..runtime.kernel import RunResult
from ..runtime.probes import Trace
from .analysis import communication_volume, function_busy_time, utilization

__all__ = ["trace_to_csv", "trace_to_json", "run_summary"]

_FIELDS = [
    "time",
    "kind",
    "function",
    "function_id",
    "thread",
    "processor",
    "iteration",
    "detail",
    "nbytes",
]


def trace_to_csv(trace: Trace, fp: Union[IO, None] = None) -> str:
    """Write the trace as CSV; returns the text (also writes to ``fp``)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_FIELDS)
    for e in trace:
        writer.writerow(
            [e.time, e.kind, e.function, e.function_id, e.thread, e.processor,
             e.iteration, e.detail, e.nbytes]
        )
    text = buf.getvalue()
    if fp is not None:
        fp.write(text)
    return text


def trace_to_json(trace: Trace, fp: Union[IO, None] = None) -> str:
    """Write the trace as a JSON list of event objects."""
    events = [
        {field: getattr(e, field) for field in _FIELDS} for e in trace
    ]
    text = json.dumps({"events": events, "count": len(events)}, indent=2)
    if fp is not None:
        fp.write(text)
    return text


def run_summary(result: RunResult, processors: int) -> dict:
    """A JSON-able summary of one run (the report's numbers, structured)."""
    return {
        "iterations": result.iterations,
        "mean_latency_s": result.mean_latency,
        "period_s": result.period,
        "makespan_s": result.makespan,
        "latencies_s": list(result.latencies),
        "utilization": utilization(result.trace, processors),
        "function_busy_s": function_busy_time(result.trace),
        "communication_bytes": communication_volume(result.trace),
        "probe_events": len(result.trace),
    }
