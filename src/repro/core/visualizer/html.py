"""Self-contained HTML report: the Visualizer's graphical display, exported.

Produces a single HTML file with an SVG Gantt timeline (one lane per
processor, one bar per function-thread execution, message arrows omitted
for legibility), the utilisation table, and the run statistics — no
external assets, viewable anywhere.
"""

from __future__ import annotations

import html as html_escape
from typing import List

from ..runtime.kernel import RunResult
from .analysis import function_busy_time, utilization
from .timeline import build_lanes

__all__ = ["render_html_report"]

_PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]

#: Fault-tolerance events drawn as vertical markers on the timeline, in
#: paint order: injected faults, detector verdicts, recovery milestones.
_FAULT_MARKS = {
    "fault_injected": "#d62728",
    "suspect": "#e7ba52",
    "declare_dead": "#843c39",
    "checkpoint": "#1f77b4",
    "shrink": "#9467bd",
    "restripe": "#17becf",
    "restore": "#2ca02c",
    "retry": "#ff7f0e",
    "join": "#59a14f",
    "grow": "#76b7b2",
    "migrate": "#b07aa1",
    "suspect_slow": "#bcbd22",
    "migrate_straggler": "#8c564b",
}


def _fmt(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def render_html_report(
    result: RunResult,
    processors: int,
    title: str = "SAGE Visualizer",
    width: int = 960,
    lane_height: int = 28,
) -> str:
    """Render a full standalone HTML report for one run."""
    lanes = build_lanes(result.trace, processors)
    times = [e.time for e in result.trace]
    t_min = min(times) if times else 0.0
    t_max = max(times) if times else 1.0
    span = max(t_max - t_min, 1e-12)

    functions = sorted({label.split("[")[0] for lane in lanes for _, _, label in lane.spans})
    colors = {fn: _PALETTE[i % len(_PALETTE)] for i, fn in enumerate(functions)}

    def x(t: float) -> float:
        return 80 + (t - t_min) / span * (width - 100)

    svg_height = processors * lane_height + 40
    parts: List[str] = []
    parts.append("<!DOCTYPE html><html><head><meta charset='utf-8'>")
    parts.append(f"<title>{html_escape.escape(title)}</title>")
    parts.append(
        "<style>body{font-family:monospace;margin:2em;background:#fafafa}"
        "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
        "padding:4px 10px;text-align:right}th{background:#eee}"
        ".legend span{display:inline-block;margin-right:1em}"
        ".swatch{display:inline-block;width:10px;height:10px;margin-right:4px}"
        "</style></head><body>"
    )
    parts.append(f"<h1>{html_escape.escape(title)}</h1>")
    parts.append(
        "<p>"
        f"iterations: <b>{result.iterations}</b> &nbsp; "
        f"mean latency: <b>{_fmt(result.mean_latency)}</b> &nbsp; "
        f"period: <b>{_fmt(result.period)}</b> &nbsp; "
        f"makespan: <b>{_fmt(result.makespan)}</b>"
        "</p>"
    )

    # legend
    parts.append("<div class='legend'>")
    for fn in functions:
        parts.append(
            f"<span><span class='swatch' style='background:{colors[fn]}'></span>"
            f"{html_escape.escape(fn)}</span>"
        )
    parts.append("</div>")

    # SVG timeline
    parts.append(
        f"<svg width='{width}' height='{svg_height}' "
        "style='background:#fff;border:1px solid #ccc;margin-top:1em'>"
    )
    for lane in lanes:
        y = 10 + lane.processor * lane_height
        parts.append(
            f"<text x='8' y='{y + lane_height * 0.6}' font-size='12'>"
            f"P{lane.processor}</text>"
        )
        parts.append(
            f"<line x1='80' y1='{y + lane_height - 6}' x2='{width - 20}' "
            f"y2='{y + lane_height - 6}' stroke='#eee'/>"
        )
        for t0, t1, label in lane.spans:
            fn = label.split("[")[0]
            x0, x1 = x(t0), x(t1)
            bar_width = max(x1 - x0, 1.0)
            parts.append(
                f"<rect x='{x0:.2f}' y='{y}' width='{bar_width:.2f}' "
                f"height='{lane_height - 10}' fill='{colors[fn]}' "
                f"opacity='0.85'><title>{html_escape.escape(label)} "
                f"[{_fmt(t0)} .. {_fmt(t1)}]</title></rect>"
            )
    # Fault-tolerance markers: a vertical tick in the affected processor's
    # lane (full-height when the event is cluster-wide, processor == -1).
    fault_events = [e for e in result.trace if e.kind in _FAULT_MARKS]
    for e in fault_events:
        color = _FAULT_MARKS[e.kind]
        xm = x(e.time)
        if 0 <= e.processor < processors:
            y0 = 10 + e.processor * lane_height
            y1 = y0 + lane_height - 10
        else:
            y0, y1 = 10, processors * lane_height + 4
        tip = f"{e.kind} @ {_fmt(e.time)}: {e.detail}" if e.detail else (
            f"{e.kind} @ {_fmt(e.time)}")
        parts.append(
            f"<line x1='{xm:.2f}' y1='{y0}' x2='{xm:.2f}' y2='{y1}' "
            f"stroke='{color}' stroke-width='2' stroke-dasharray='3,2'>"
            f"<title>{html_escape.escape(tip)}</title></line>"
        )
    # time axis labels
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = t_min + frac * span
        parts.append(
            f"<text x='{x(t):.1f}' y='{svg_height - 8}' font-size='10' "
            f"text-anchor='middle'>{_fmt(t)}</text>"
        )
    parts.append("</svg>")

    if fault_events:
        parts.append("<div class='legend' style='margin-top:0.5em'>")
        for kind in _FAULT_MARKS:
            if any(e.kind == kind for e in fault_events):
                parts.append(
                    f"<span><span class='swatch' style='background:"
                    f"{_FAULT_MARKS[kind]}'></span>{kind}</span>"
                )
        parts.append("</div>")
        parts.append(
            "<h2>Fault-tolerance events</h2><table><tr><th>time</th>"
            "<th>kind</th><th>node</th><th>detail</th></tr>"
        )
        for e in fault_events:
            node = f"P{e.processor}" if e.processor >= 0 else "-"
            parts.append(
                f"<tr><td>{_fmt(e.time)}</td>"
                f"<td style='text-align:left'>{e.kind}</td><td>{node}</td>"
                f"<td style='text-align:left'>"
                f"{html_escape.escape(e.detail)}</td></tr>"
            )
        parts.append("</table>")

    # utilization + busy tables
    parts.append("<h2>Processor utilization</h2><table><tr><th>CPU</th>"
                 "<th>busy</th></tr>")
    for p, u in enumerate(utilization(result.trace, processors)):
        parts.append(f"<tr><td>P{p}</td><td>{u * 100:.1f}%</td></tr>")
    parts.append("</table>")

    parts.append("<h2>Function busy time</h2><table><tr><th>function</th>"
                 "<th>busy</th></tr>")
    busy = function_busy_time(result.trace)
    for fn in sorted(busy, key=busy.get, reverse=True):
        parts.append(
            f"<tr><td style='text-align:left'>{html_escape.escape(fn)}</td>"
            f"<td>{_fmt(busy[fn])}</td></tr>"
        )
    parts.append("</table></body></html>")
    return "".join(parts)
