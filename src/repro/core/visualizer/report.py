"""Text rendering of the Visualizer's displays."""

from __future__ import annotations

from typing import List, Optional

from ..runtime.kernel import RunResult
from .analysis import (
    communication_volume,
    find_bottleneck,
    function_busy_time,
    latency_violations,
    utilization,
)
from .timeline import render_gantt

__all__ = ["run_report"]


def _fmt_time(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def run_report(
    result: RunResult,
    processors: int,
    latency_threshold: Optional[float] = None,
    gantt_width: int = 72,
) -> str:
    """The full Visualizer text report for one run."""
    lines: List[str] = []
    lines.append("=== SAGE Visualizer run report ===")
    lines.append(f"iterations       : {result.iterations}")
    lines.append(f"mean latency     : {_fmt_time(result.mean_latency)}")
    lines.append(f"period           : {_fmt_time(result.period)}")
    lines.append(f"makespan         : {_fmt_time(result.makespan)}")
    lines.append("")

    lines.append("--- processor utilization ---")
    for p, u in enumerate(utilization(result.trace, processors)):
        bar = "#" * int(u * 40)
        lines.append(f"P{p:<3d} {u * 100:5.1f}% |{bar}")
    lines.append("")

    lines.append("--- function busy time ---")
    busy = function_busy_time(result.trace)
    for fn in sorted(busy, key=busy.get, reverse=True):
        lines.append(f"{fn:<24s} {_fmt_time(busy[fn])}")
    lines.append("")

    bottleneck = find_bottleneck(result.trace)
    if bottleneck is not None:
        lines.append("--- bottleneck ---")
        lines.append(
            f"{bottleneck.function}: {bottleneck.share * 100:.1f}% of busy time, "
            f"{bottleneck.comm_bytes} bytes sent "
            f"({bottleneck.comm_share * 100:.1f}% of traffic)"
        )
        lines.append("")

    comm = communication_volume(result.trace)
    if comm:
        lines.append("--- communication volume per logical buffer ---")
        for name in sorted(comm, key=comm.get, reverse=True):
            lines.append(f"{name:<40s} {comm[name]:>12d} bytes")
        lines.append("")

    if latency_threshold is not None:
        violations = latency_violations(result.latencies, latency_threshold)
        lines.append(
            f"--- latency threshold {_fmt_time(latency_threshold)}: "
            f"{len(violations)} violation(s) ---"
        )
        for k, lat in violations[:10]:
            lines.append(f"iteration {k}: {_fmt_time(lat)}")
        lines.append("")

    lines.append("--- timeline ---")
    lines.append(render_gantt(result.trace, processors, width=gantt_width))
    return "\n".join(lines)
