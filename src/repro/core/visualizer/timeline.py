"""Timeline / Gantt rendering of execution traces.

The Visualizer's "variety of graphical displays" (§1.1), rendered as text:
per-processor lanes of function activity over virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..runtime.probes import Trace

__all__ = ["Lane", "build_lanes", "render_gantt"]


@dataclass
class Lane:
    """One processor's activity spans: (start, finish, label)."""

    processor: int
    spans: List[Tuple[float, float, str]]


def build_lanes(trace: Trace, processors: int) -> List[Lane]:
    """Group enter/exit spans by processor."""
    if processors <= 0:
        raise ValueError("processors must be positive")
    starts: Dict[Tuple[str, int, int], Tuple[float, int]] = {}
    lanes = {p: Lane(p, []) for p in range(processors)}
    for e in trace:
        key = (e.function, e.thread, e.iteration)
        if e.kind == "enter":
            starts[key] = (e.time, e.processor)
        elif e.kind == "exit" and key in starts:
            t0, proc = starts.pop(key)
            if proc in lanes:
                label = f"{e.function}[{e.thread}]#{e.iteration}"
                lanes[proc].spans.append((t0, e.time, label))
    for lane in lanes.values():
        lane.spans.sort()
    return [lanes[p] for p in range(processors)]


def render_gantt(trace: Trace, processors: int, width: int = 72) -> str:
    """ASCII Gantt chart: one row per processor, '#' where busy.

    Rows are scaled to the trace's virtual-time extent; the scale line at the
    bottom gives seconds per column.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    lanes = build_lanes(trace, processors)
    times = [e.time for e in trace]
    if not times:
        return "(empty trace)"
    t_min, t_max = min(times), max(times)
    span = t_max - t_min
    if span <= 0:
        span = 1.0

    def col(t: float) -> int:
        return min(width - 1, int((t - t_min) / span * width))

    rows = []
    for lane in lanes:
        cells = [" "] * width
        for t0, t1, _label in lane.spans:
            for c in range(col(t0), col(t1) + 1):
                cells[c] = "#"
        rows.append(f"P{lane.processor:<3d}|{''.join(cells)}|")
    scale = span / width
    rows.append(f"     {'-' * width} ")
    rows.append(f"     t0={t_min:.6g}s  span={span:.6g}s  ({scale:.3g} s/col)")
    return "\n".join(rows)
