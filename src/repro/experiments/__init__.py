"""Experiment harness: the §3.3 protocol and every table/figure regeneration."""

from .runner import (
    APP_BUILDERS,
    BENCH_PROTOCOL,
    FULL_PROTOCOL,
    Measurement,
    Protocol,
    QUICK_PROTOCOL,
    measure_hand,
    measure_sage,
)
from .table1 import Table1Row, format_table1, run_table1
from .crossvendor import CrossVendorResult, format_crossvendor, run_crossvendor
from .ablations import knob_study, optimized_glue_study, two_node_study
from .atot_study import format_atot_study, radar_chain_model, run_atot_study
from .period_latency import format_period_latency, run_period_latency
from .code_size import count_sloc, format_code_size, run_code_size
from .fault_tolerance import (
    FaultPoint,
    format_fault_tolerance,
    run_fault_tolerance,
)
from .reconfiguration import (
    DetectionPoint,
    FalsePositivePoint,
    ShrinkPoint,
    format_reconfiguration,
    run_detection_latency,
    run_false_positives,
    run_shrink_recovery,
)

__all__ = [
    "APP_BUILDERS",
    "BENCH_PROTOCOL",
    "FULL_PROTOCOL",
    "QUICK_PROTOCOL",
    "Measurement",
    "Protocol",
    "measure_hand",
    "measure_sage",
    "Table1Row",
    "format_table1",
    "run_table1",
    "CrossVendorResult",
    "format_crossvendor",
    "run_crossvendor",
    "knob_study",
    "optimized_glue_study",
    "two_node_study",
    "format_atot_study",
    "radar_chain_model",
    "run_atot_study",
    "format_period_latency",
    "run_period_latency",
    "count_sloc",
    "format_code_size",
    "run_code_size",
    "FaultPoint",
    "format_fault_tolerance",
    "run_fault_tolerance",
    "DetectionPoint",
    "FalsePositivePoint",
    "ShrinkPoint",
    "format_reconfiguration",
    "run_detection_latency",
    "run_false_positives",
    "run_shrink_recovery",
]
