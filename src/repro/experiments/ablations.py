"""Ablation experiments S34a, C2, and the run-time knob study.

* **two-node** (S34a): §3.4 — *"A performance hit was taken on a two-node
  configuration. Here, the SAGE run-time buffer management scheme assigns
  unique logical buffers to the data per function which can cause extra
  data access times."*  Sweeps the corner turn over 2/4/8 nodes and reports
  the absolute unique-buffer overhead per iteration, which grows with the
  per-node buffer size (largest at 2 nodes), plus the %-of-hand trend.
* **optimized-glue** (C2): §4 — *"Work is currently underway to improve the
  performance of the glue code generation component that will reach levels
  of 90 % of hand coded performance."*  Compares default vs optimised glue.
* **knobs**: which run-time mechanism costs what — dispatch, staging
  copies, striping bookkeeping, kernel-call efficiency — by disabling each
  in turn (the design-choice ablation DESIGN.md calls out).

Run: ``python -m repro.experiments.ablations {two-node,optimized-glue,knobs}``
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Dict, List, Optional, Sequence

from ..core.runtime import DEFAULT_CONFIG
from ..machine import get_platform
from .runner import FULL_PROTOCOL, QUICK_PROTOCOL, Protocol, measure_hand, measure_sage
from .table1 import APPS, NODE_COUNTS

__all__ = ["two_node_study", "optimized_glue_study", "knob_study", "main"]


def two_node_study(
    protocol: Protocol = QUICK_PROTOCOL, size: int = 1024
) -> List[dict]:
    """Corner-turn overhead across 2/4/8 nodes (absolute and relative)."""
    platform = get_platform("cspi")
    rows = []
    for nodes in (2, 4, 8):
        hand = measure_hand("corner_turn", platform, nodes, size, protocol)
        sage = measure_sage("corner_turn", platform, nodes, size, protocol)
        rows.append(
            {
                "nodes": nodes,
                "hand_ms": hand.latency_ms,
                "sage_ms": sage.latency_ms,
                "extra_ms": sage.latency_ms - hand.latency_ms,
                "pct_of_hand": 100.0 * hand.latency_ms / sage.latency_ms,
            }
        )
    return rows


def format_two_node(rows: List[dict]) -> str:
    lines = [
        "S34a: corner-turn buffer-management overhead vs node count (CSPI, 1024x1024)",
        f"{'nodes':>6s}{'hand (ms)':>12s}{'SAGE (ms)':>12s}"
        f"{'extra (ms)':>12s}{'% of hand':>11s}",
    ]
    for r in rows:
        lines.append(
            f"{r['nodes']:>6d}{r['hand_ms']:>12.3f}{r['sage_ms']:>12.3f}"
            f"{r['extra_ms']:>12.3f}{r['pct_of_hand']:>10.1f}%"
        )
    lines.append(
        "(the unique-logical-buffer copy scales with the per-node buffer "
        "size n^2/p: the absolute hit is largest on the 2-node configuration)"
    )
    return "\n".join(lines)


def optimized_glue_study(
    protocol: Protocol = QUICK_PROTOCOL,
    node_counts: Sequence[int] = NODE_COUNTS,
    sizes: Sequence[int] = (1024,),
) -> List[dict]:
    """Default vs §4-optimised glue, both against hand-coded."""
    platform = get_platform("cspi")
    rows = []
    for _label, app in APPS:
        for nodes in node_counts:
            for size in sizes:
                hand = measure_hand(app, platform, nodes, size, protocol)
                sage = measure_sage(app, platform, nodes, size, protocol)
                opt = measure_sage(
                    app, platform, nodes, size, protocol, optimize_buffers=True
                )
                rows.append(
                    {
                        "app": app,
                        "nodes": nodes,
                        "size": size,
                        "default_pct": 100.0 * hand.latency / sage.latency,
                        "optimized_pct": 100.0 * hand.latency / opt.latency,
                    }
                )
    return rows


def format_optimized(rows: List[dict]) -> str:
    lines = [
        "C2: default vs optimised glue generation (percent of hand-coded)",
        f"{'app':<14s}{'nodes':>6s}{'size':>6s}{'default':>10s}{'optimised':>11s}",
    ]
    for r in rows:
        lines.append(
            f"{r['app']:<14s}{r['nodes']:>6d}{r['size']:>6d}"
            f"{r['default_pct']:>9.1f}%{r['optimized_pct']:>10.1f}%"
        )
    avg_d = statistics.fmean(r["default_pct"] for r in rows)
    avg_o = statistics.fmean(r["optimized_pct"] for r in rows)
    lines.append(f"{'average':<26s}{avg_d:>9.1f}%{avg_o:>10.1f}%")
    lines.append("(§4: the improved generator targets 'levels of 90% of hand coded')")
    return "\n".join(lines)


#: knob name -> config override that disables it
KNOB_OVERRIDES: Dict[str, dict] = {
    "baseline (all on)": {},
    "no dispatch": {"dispatch_overhead": 0.0},
    "no send staging": {"send_staging": "none"},
    "no recv staging": {"recv_staging": "none"},
    "no striping ovh": {"striping_overhead_per_message": 0.0},
    "full kernel eff.": {"compute_efficiency": 1.0},
}


def knob_study(
    protocol: Protocol = QUICK_PROTOCOL,
    app: str = "fft2d",
    nodes: int = 4,
    size: int = 1024,
) -> List[dict]:
    """Disable each run-time overhead mechanism in turn."""
    platform = get_platform("cspi")
    hand = measure_hand(app, platform, nodes, size, protocol)
    rows = []
    for name, overrides in KNOB_OVERRIDES.items():
        cfg = dataclasses.replace(DEFAULT_CONFIG, **overrides)
        sage = measure_sage(app, platform, nodes, size, protocol, config=cfg)
        rows.append(
            {
                "knob": name,
                "sage_ms": sage.latency_ms,
                "pct_of_hand": 100.0 * hand.latency / sage.latency,
            }
        )
    return rows


def format_knobs(rows: List[dict], app: str, nodes: int, size: int) -> str:
    lines = [
        f"Run-time overhead knob study ({app}, {nodes} nodes, {size}x{size})",
        f"{'configuration':<20s}{'SAGE (ms)':>12s}{'% of hand':>11s}",
    ]
    for r in rows:
        lines.append(
            f"{r['knob']:<20s}{r['sage_ms']:>12.3f}{r['pct_of_hand']:>10.1f}%"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("study", choices=["two-node", "optimized-glue", "knobs"])
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)
    protocol = QUICK_PROTOCOL if args.quick else FULL_PROTOCOL
    if args.study == "two-node":
        print(format_two_node(two_node_study(protocol)))
    elif args.study == "optimized-glue":
        print(format_optimized(optimized_glue_study(protocol)))
    else:
        rows = knob_study(protocol)
        print(format_knobs(rows, "fft2d", 4, 1024))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
