"""Experiment A1: the AToT mapping-quality study.

§1.1 claims AToT's GA performs "load balancing of CPU resources, optimizing
over latency constraints, communication minimization and scheduling of CPUs
and busses".  This study quantifies those claims on a synthetic radar chain
(the workload class the paper's introduction motivates): GA mapping vs the
naive round-robin layout vs uniformly random placement, scored both by the
analytic objective and by actually running the mapped application through
the simulator.

Run: ``python -m repro.experiments.atot_study [--quick]``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.atot import GaConfig, MappingObjective, list_schedule, optimize_mapping, random_mapping
from ..core.codegen import generate_glue
from ..core.model import (
    ApplicationModel,
    DataType,
    FunctionBlock,
    Mapping,
    round_robin_mapping,
    striped,
)
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..machine import Environment, SimCluster, get_platform

__all__ = ["radar_chain_model", "run_atot_study", "format_atot_study", "main"]


def radar_chain_model(n: int = 256, threads: int = 4) -> ApplicationModel:
    """A radar front-end: window -> range FFT -> corner turn -> doppler FFT
    -> detection.  More stages (and an unbalanced one) than the Table 1.0
    kernels, so mapping quality actually matters."""
    t = DataType(f"cpi_{n}", "complex64", (n, n))
    tf = DataType(f"mag_{n}", "float32", (n, n))
    app = ApplicationModel(f"radar_chain_{n}")
    src = app.add_block(FunctionBlock("adc", kernel="matrix_source", threads=threads,
                                      params={"n": n}))
    src.add_out("out", t, striped(0))
    win = app.add_block(FunctionBlock("window", kernel="window_rows", threads=threads,
                                      params={"window": "hanning"}))
    win.add_in("in", t, striped(0))
    win.add_out("out", t, striped(0))
    rng_fft = app.add_block(FunctionBlock("range_fft", kernel="fft_rows", threads=threads))
    rng_fft.add_in("in", t, striped(0))
    rng_fft.add_out("out", t, striped(0))
    dop_fft = app.add_block(FunctionBlock("doppler_fft", kernel="fft_cols", threads=threads))
    dop_fft.add_in("in", t, striped(1))
    dop_fft.add_out("out", t, striped(1))
    det = app.add_block(FunctionBlock("detect", kernel="vmag2", threads=threads))
    det.add_in("in", t, striped(1))
    det.add_out("out", tf, striped(1))
    sink = app.add_block(FunctionBlock("sink", kernel="matrix_sink", threads=threads))
    sink.add_in("in", tf, striped(1))
    app.connect(src.port("out"), win.port("in"))
    app.connect(win.port("out"), rng_fft.port("in"))
    app.connect(rng_fft.port("out"), dop_fft.port("in"))
    app.connect(dop_fft.port("out"), det.port("in"))
    app.connect(det.port("out"), sink.port("in"))
    return app


@dataclass
class AtotStudyRow:
    strategy: str
    fitness: float
    load_imbalance: float
    comm_mbytes: float
    simulated_latency_ms: float
    schedule_makespan_ms: float


def _simulate(app, mapping: Mapping, nodes: int, platform) -> float:
    glue = generate_glue(app, mapping, num_processors=nodes)
    env = Environment()
    cluster = SimCluster.from_platform(env, platform, nodes)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    result = runtime.run(iterations=3)
    return result.mean_latency


def run_atot_study(
    nodes: int = 4,
    n: int = 256,
    generations: int = 40,
    seed: int = 1,
) -> List[AtotStudyRow]:
    platform = get_platform("cspi")
    app = radar_chain_model(n=n, threads=nodes)
    objective = MappingObjective(app, platform, nodes)

    candidates: Dict[str, Mapping] = {
        "random": random_mapping(app, nodes, seed=seed),
        "round_robin": round_robin_mapping(app, nodes),
    }
    atot = optimize_mapping(
        app, platform, nodes,
        config=GaConfig(population=40, generations=generations, seed=seed),
    )
    candidates["atot_ga"] = atot.mapping

    rows = []
    for strategy, mapping in candidates.items():
        bd = objective.breakdown(mapping)
        sched = list_schedule(app, mapping, platform, nodes)
        rows.append(
            AtotStudyRow(
                strategy=strategy,
                fitness=objective.fitness(mapping),
                load_imbalance=bd.load_imbalance,
                comm_mbytes=bd.comm_bytes / 1e6,
                simulated_latency_ms=_simulate(app, mapping, nodes, platform) * 1e3,
                schedule_makespan_ms=sched.makespan * 1e3,
            )
        )
    return rows


def format_atot_study(rows: List[AtotStudyRow]) -> str:
    lines = [
        "A1: AToT GA mapping vs baselines (radar chain, CSPI)",
        f"{'strategy':<14s}{'fitness':>10s}{'imbalance':>11s}{'comm MB':>9s}"
        f"{'sim latency':>13s}{'sched span':>12s}",
    ]
    for r in rows:
        lines.append(
            f"{r.strategy:<14s}{r.fitness:>10.4f}{r.load_imbalance:>11.2f}"
            f"{r.comm_mbytes:>9.2f}{r.simulated_latency_ms:>11.2f}ms"
            f"{r.schedule_makespan_ms:>10.2f}ms"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--nodes", type=int, default=4)
    args = parser.parse_args(argv)
    generations = 10 if args.quick else 40
    print(format_atot_study(run_atot_study(nodes=args.nodes, generations=generations)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
