"""Experiment S3-size: the §3 code-size claim.

*"It is our intention to show that an application or system engineer can
develop an application ... using SAGE quickly and that the resulting
solution is comparable both in performance and code size to hand coded
versions."*

We compare the application-specific source a developer is responsible for:

* **hand-coded**: the rank program (the MPI+ISSPL code a CSPI engineer
  writes and maintains),
* **SAGE**: the Designer model description (here, the model-builder
  function standing in for the graphical capture) — the generated glue is
  reported too but is *not* developer-maintained code.

Run: ``python -m repro.experiments.code_size``
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import List, Optional

from ..apps import corner_turn_model, corner_turn_rank, fft2d_model, fft2d_rank
from ..apps.models import benchmark_mapping
from ..core.codegen import generate_glue

__all__ = ["CodeSizeRow", "count_sloc", "run_code_size", "format_code_size", "main"]


def count_sloc(obj_or_text) -> int:
    """Source lines of code: non-blank, non-comment, docstrings excluded."""
    if isinstance(obj_or_text, str):
        text = obj_or_text
    else:
        # strip the function's docstring (documentation, not code)
        import ast
        import textwrap

        text = textwrap.dedent(inspect.getsource(obj_or_text))
        tree = ast.parse(text)
        node = tree.body[0]
        if (
            hasattr(node, "body")
            and node.body
            and isinstance(node.body[0], ast.Expr)
            and isinstance(getattr(node.body[0], "value", None), ast.Constant)
            and isinstance(node.body[0].value.value, str)
        ):
            doc = node.body[0].value.value
            text = text.replace(doc, "", 1)
    count = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if set(stripped) <= {'"'} or set(stripped) <= {"'"}:
            continue  # leftover quote marks from the removed docstring
        count += 1
    return count


@dataclass
class CodeSizeRow:
    app: str
    hand_sloc: int        # the rank program the engineer writes
    model_sloc: int       # the SAGE model description (Designer capture)
    glue_sloc: int        # auto-generated (not developer-maintained)

    @property
    def developer_ratio(self) -> float:
        """SAGE developer-written size relative to hand-coded."""
        return self.model_sloc / self.hand_sloc if self.hand_sloc else 0.0


def run_code_size(n: int = 1024, nodes: int = 8) -> List[CodeSizeRow]:
    rows = []
    for app_name, rank_program, model_builder in (
        ("2D FFT", fft2d_rank, fft2d_model),
        ("Corner Turn", corner_turn_rank, corner_turn_model),
    ):
        app = model_builder(n, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)
        rows.append(
            CodeSizeRow(
                app=app_name,
                hand_sloc=count_sloc(rank_program),
                model_sloc=count_sloc(model_builder),
                glue_sloc=count_sloc(glue.source),
            )
        )
    return rows


def format_code_size(rows: List[CodeSizeRow]) -> str:
    lines = [
        "S3-size: developer-written source lines, hand-coded vs SAGE",
        f"{'application':<14s}{'hand rank pgm':>14s}{'SAGE model':>12s}"
        f"{'ratio':>7s}{'generated glue':>16s}",
    ]
    for r in rows:
        lines.append(
            f"{r.app:<14s}{r.hand_sloc:>14d}{r.model_sloc:>12d}"
            f"{r.developer_ratio:>7.2f}{r.glue_sloc:>16d}"
        )
    lines.append(
        "(the engineer writes/maintains the model description; the glue is "
        "regenerated per target, §4's portability claim)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    print(format_code_size(run_code_size()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
