"""Experiment F1: cross-vendor parallel performance (the MITRE context).

§3.1 cites MITRE's cross-vendor measurements of the same two benchmarks on
Mercury, CSPI, SKY, and SIGI platforms at several node counts (reference
[2], Games 1999).  This experiment regenerates that comparison on the
simulated platforms: hand-coded latency vs node count per vendor, with each
vendor's own tuned all-to-all algorithm, plus an ASCII chart of the series.

Expected shape: better fabrics win the corner turn (SKY/Mercury over CSPI
over SIGI); the compute-bound 2D FFT is far less fabric-sensitive; all
curves fall with node count, with the communication-bound corner turn
scaling sub-linearly on the shared-medium machines.

Run: ``python -m repro.experiments.crossvendor [--quick]``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..machine import get_platform
from .runner import FULL_PROTOCOL, QUICK_PROTOCOL, Protocol, measure_hand

__all__ = ["CrossVendorResult", "run_crossvendor", "format_crossvendor", "main",
           "VENDORS", "NODE_COUNTS"]

VENDORS = ("mercury", "cspi", "sky", "sigi")
NODE_COUNTS = (2, 4, 8, 16)


@dataclass
class CrossVendorResult:
    """latency_ms[app][vendor][nodes]"""

    size: int
    latency_ms: Dict[str, Dict[str, Dict[int, float]]]


def run_crossvendor(
    protocol: Protocol = QUICK_PROTOCOL,
    size: int = 1024,
    vendors: Sequence[str] = VENDORS,
    node_counts: Sequence[int] = NODE_COUNTS,
    apps: Sequence[str] = ("fft2d", "corner_turn"),
) -> CrossVendorResult:
    table: Dict[str, Dict[str, Dict[int, float]]] = {}
    for app in apps:
        table[app] = {}
        for vendor in vendors:
            platform = get_platform(vendor)
            table[app][vendor] = {}
            for nodes in node_counts:
                m = measure_hand(app, platform, nodes, size, protocol)
                table[app][vendor][nodes] = m.latency_ms
    return CrossVendorResult(size=size, latency_ms=table)


def _ascii_series(series: Dict[str, Dict[int, float]], width: int = 50) -> List[str]:
    """Log-scale dot chart: one row per (vendor, nodes) point."""
    values = [v for per in series.values() for v in per.values()]
    if not values:
        return []
    import math

    lo, hi = min(values), max(values)
    span = math.log(hi / lo) if hi > lo else 1.0
    rows = []
    for vendor in series:
        for nodes, v in sorted(series[vendor].items()):
            pos = int(math.log(v / lo) / span * (width - 1)) if hi > lo else 0
            bar = "." * pos + "o"
            rows.append(f"  {vendor:<8s}{nodes:>3d}n |{bar:<{width + 1}s}| {v:9.3f} ms")
    return rows


def format_crossvendor(result: CrossVendorResult) -> str:
    lines = [
        f"Cross-vendor hand-coded latency, {result.size} x {result.size} "
        "complex matrix (after MITRE ref. [2])",
        "",
    ]
    for app, series in result.latency_ms.items():
        lines.append(f"--- {app} ---")
        header = f"{'vendor':<10s}" + "".join(f"{n:>5d}n" for n in sorted(next(iter(series.values()))))
        lines.append(header + "   (latency, ms)")
        for vendor, per_nodes in series.items():
            row = f"{vendor:<10s}" + "".join(
                f"{per_nodes[n]:>6.1f}" for n in sorted(per_nodes)
            )
            lines.append(row)
        lines.append("")
        lines.append("  latency (log scale):")
        lines.extend(_ascii_series(series))
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--size", type=int, default=1024)
    args = parser.parse_args(argv)
    protocol = QUICK_PROTOCOL if args.quick else FULL_PROTOCOL
    print(format_crossvendor(run_crossvendor(protocol, size=args.size)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
