"""Experiment R3: elastic membership — join, re-grow, live migration.

Three measurements around the join/admission protocol
(:meth:`repro.mpi.detector.FailureDetector.request_join`) and the
run-time's ``grow_restripe`` policy:

* **Join latency vs heartbeat period** — a crashed node powers back on and
  runs the admission handshake (announce over the out-of-band channel,
  coordinator ack); the time from the join request to cluster-wide
  admission is measured for a sweep of heartbeat periods, plus a lossy
  channel scenario that exercises the announce retries.
* **Elastic recovery** — 2D FFT and corner turn run on 8 nodes while 1–3
  nodes are permanently killed mid-run and replacements power on later.
  The run-time detects each loss, shrinks, runs degraded, then admits the
  replacements at an iteration boundary, migrates the moved threads'
  checkpointed buffer state back, and resumes at full striping width.  The
  table reports detection latency, join latency, the migration pause, and
  the steady-state throughput before failure, degraded, and after re-grow
  — the acceptance bar is recovery to within 5% of the pre-failure rate.
* **Incremental re-striping** — the same runs report how many messages the
  delta re-plan actually revisited versus what a from-scratch recompute
  would have visited (``striping.replan_*`` counters).

Run: ``python -m repro elasticity [--quick] [--output reports/...]``.
"""

from __future__ import annotations

import argparse
import math
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps import benchmark_mapping, corner_turn_model, fft2d_model
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..faults import FaultPlan, FaultPolicy
from ..machine import Environment, SimCluster, get_platform
from ..mpi.detector import FailureDetector, HeartbeatConfig
from ..perf.registry import REGISTRY

__all__ = [
    "JoinPoint",
    "ElasticPoint",
    "run_join_latency",
    "run_elastic_recovery",
    "format_elasticity",
    "main",
]

_APPS: Dict[str, Callable] = {
    "fft2d": fft2d_model,
    "corner_turn": corner_turn_model,
}

_SECONDS = re.compile(r"in ([0-9.eE+-]+)s")


@dataclass
class JoinPoint:
    """Admission-handshake latency for one (period, channel) setting."""

    period: float
    window: float           # detection window (miss_grace+threshold)*period
    scenario: str           # "clean" or a lossy-channel description
    latency: float          # request_join -> admitted, mean over seeds
    latency_max: float


@dataclass
class ElasticPoint:
    """One (application, replaced-node count) elastic-recovery measurement."""

    app: str
    nodes: int
    replaced: int
    completed: bool
    makespan_ms: float
    detect_ms: float        # mean crash -> declare_dead
    join_ms: float          # mean join request -> admission
    pause_ms: float         # total migration pause (quiesce -> resume)
    migrated_bytes: int     # checkpointed state shipped back
    base_rate: float        # data sets / s, fault-free same-policy run
    degraded_rate: float    # steady-state rate after shrink, no re-grow
    recovered_rate: float   # steady-state rate after re-grow
    recovery_pct: float     # recovered / base * 100 (acceptance: >= 95)
    delta_msgs: int         # messages revisited by incremental re-plans
    full_msgs: int          # messages full recomputes would have visited


# -- join latency ------------------------------------------------------------

def run_join_latency(
    periods: Sequence[float] = (5e-5, 1e-4, 2e-4),
    nodes: int = 8,
    seeds: Sequence[int] = (51, 52, 53),
    lossy: bool = True,
) -> List[JoinPoint]:
    """Crash one node, power it back on, and time the admission handshake."""
    platform = get_platform("cspi")
    scenarios: List[Tuple[str, Optional[float]]] = [("clean", None)]
    if lossy:
        scenarios.append(("loss 20%", 0.20))
    points: List[JoinPoint] = []
    for period in periods:
        config = HeartbeatConfig(period=period)
        for name, loss in scenarios:
            latencies: List[float] = []
            for seed in seeds:
                crash_at = 20 * period + seed * period / 7.0
                rejoin_at = crash_at + 30 * period
                plan = FaultPlan(seed=seed)
                if loss:
                    plan.message_loss(loss)
                plan.crash_node(nodes - 1, at=crash_at, permanent=True)
                plan.join_node(nodes - 1, at=rejoin_at)
                env = Environment()
                cluster = SimCluster.from_platform(env, platform, nodes,
                                                   fault_plan=plan)
                detector = FailureDetector(cluster, config).start()
                env.run(until=detector.death_event(nodes - 1))
                # Let the NodeJoin power-on fire, then request admission.
                env.run(until=rejoin_at + period / 100.0)
                ev = detector.request_join(nodes - 1)
                env.run(until=env.any_of([ev, env.timeout(100 * period)]))
                lat = detector.join_latency(nodes - 1)
                detector.stop()
                if lat is not None:
                    latencies.append(lat)
            points.append(JoinPoint(
                period=period,
                window=config.window,
                scenario=name,
                latency=(sum(latencies) / len(latencies)
                         if latencies else math.nan),
                latency_max=max(latencies) if latencies else math.nan,
            ))
    return points


# -- elastic recovery --------------------------------------------------------

def _steady_rate(sink_times: Sequence[float], after: float) -> float:
    """Data sets per second from the sinks completing strictly after
    ``after`` (needs two completions to define an interval)."""
    times = sorted(t for t in sink_times if t > after)
    if len(times) < 2 or times[-1] <= times[0]:
        return math.nan
    return (len(times) - 1) / (times[-1] - times[0])


def _mean_probe_seconds(events) -> float:
    vals: List[float] = []
    for ev in events:
        m = _SECONDS.search(ev.detail)
        if m:
            vals.append(float(m.group(1)))
    return sum(vals) / len(vals) if vals else math.nan


def run_elastic_recovery(
    nodes: int = 8,
    size: int = 32,
    iterations: int = 8,
    replace_counts: Sequence[int] = (1, 2, 3),
    seed: int = 61,
    apps: Optional[Sequence[str]] = None,
) -> List[ElasticPoint]:
    """Kill 1..k nodes permanently, power replacements back on, re-grow."""
    platform = get_platform("cspi")
    config = DEFAULT_CONFIG.timing_only()
    points: List[ElasticPoint] = []
    for app_name in (apps or _APPS):
        builder = _APPS[app_name]
        app = builder(size, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes),
                             num_processors=nodes)
        total_plan_msgs = _full_plan_messages(glue)

        def run_once(plan: Optional[FaultPlan], policy: FaultPolicy):
            env = Environment()
            cluster = SimCluster.from_platform(env, platform, nodes,
                                               fault_plan=plan)
            runtime = SageRuntime(glue, cluster, config=config,
                                  fault_policy=policy)
            return runtime.run(iterations=iterations)

        # Same-policy fault-free baseline so detector overheads cancel out
        # of the throughput comparison.
        base = run_once(None, FaultPolicy.grow_restripe())
        base_rate = _steady_rate(base.sink_times, -1.0)

        for k in replace_counts:
            crash_plan = FaultPlan(seed=seed)
            for i in range(k):
                crash_plan.crash_node(nodes - 1 - i,
                                      at=base.makespan * (0.22 + 0.12 * i),
                                      permanent=True)
            # Degraded reference: the same kills, never re-grown.
            degraded = run_once(
                crash_plan,
                FaultPolicy.shrink_restripe(max_restarts=k + 2))
            restripes = degraded.trace.by_kind("restripe")
            degraded_rate = _steady_rate(
                degraded.sink_times,
                max(ev.time for ev in restripes) if restripes else -1.0)

            # Elastic run: replacements power on after the losses.
            plan = FaultPlan(seed=seed)
            for i in range(k):
                plan.crash_node(nodes - 1 - i,
                                at=base.makespan * (0.22 + 0.12 * i),
                                permanent=True)
            for i in range(k):
                plan.join_node(nodes - 1 - i,
                               at=base.makespan * (0.62 + 0.05 * i))
            before = dict(REGISTRY.snapshot()["counters"])
            try:
                result = run_once(
                    plan, FaultPolicy.grow_restripe(max_restarts=k + 2))
            except Exception:
                points.append(ElasticPoint(
                    app=app_name, nodes=nodes, replaced=k, completed=False,
                    makespan_ms=math.nan, detect_ms=math.nan,
                    join_ms=math.nan, pause_ms=math.nan, migrated_bytes=0,
                    base_rate=base_rate, degraded_rate=degraded_rate,
                    recovered_rate=math.nan, recovery_pct=math.nan,
                    delta_msgs=0, full_msgs=0,
                ))
                continue
            after = dict(REGISTRY.snapshot()["counters"])

            def counted(name: str) -> int:
                return after.get(name, 0) - before.get(name, 0)

            crash_times = {
                ev.processor: ev.time
                for ev in result.trace.by_kind("fault_injected")
                if "node_crash" in ev.detail
            }
            detect = [ev.time - crash_times[ev.processor]
                      for ev in result.trace.by_kind("declare_dead")
                      if ev.processor in crash_times]
            migrates = result.trace.by_kind("migrate")
            pauses: List[float] = []
            for ev in migrates:
                m = _SECONDS.search(ev.detail)
                if m:
                    pauses.append(float(m.group(1)))
            recovered_rate = _steady_rate(
                result.sink_times,
                max(ev.time for ev in migrates) if migrates else -1.0)
            recovery = (recovered_rate / base_rate * 100.0
                        if base_rate and not math.isnan(recovered_rate)
                        else math.nan)
            points.append(ElasticPoint(
                app=app_name, nodes=nodes, replaced=k, completed=True,
                makespan_ms=result.makespan * 1e3,
                detect_ms=(sum(detect) / len(detect) * 1e3
                           if detect else math.nan),
                join_ms=_mean_probe_seconds(
                    result.trace.by_kind("join")) * 1e3,
                pause_ms=sum(pauses) * 1e3 if pauses else math.nan,
                migrated_bytes=sum(ev.nbytes for ev in migrates),
                base_rate=base_rate,
                degraded_rate=degraded_rate,
                recovered_rate=recovered_rate,
                recovery_pct=recovery,
                delta_msgs=counted("striping.replan_delta_messages"),
                full_msgs=((len(result.trace.by_kind("shrink"))
                            + len(result.trace.by_kind("grow")))
                           * total_plan_msgs),
            ))
    return points


def _full_plan_messages(glue) -> int:
    """Messages one from-scratch re-plan of every buffer would visit."""
    from ..core.runtime.buffers import RuntimeBuffer

    return sum(len(RuntimeBuffer(spec, execute_data=False).plan)
               for spec in glue.logical_buffers)


# -- formatting -------------------------------------------------------------

def format_elasticity(
    joins: List[JoinPoint],
    elastic: List[ElasticPoint],
) -> str:
    lines = [
        "R3: elastic membership — join, re-grow, live migration "
        "(CSPI, timing-only)",
        "",
        "Join latency vs heartbeat period (request_join -> admission)",
        f"{'period':>10s}{'window':>10s}  {'channel':<14s}{'mean':>10s}"
        f"{'max':>10s}",
    ]
    for p in joins:
        lines.append(
            f"{p.period * 1e6:>8.0f}us{p.window * 1e6:>8.0f}us  "
            f"{p.scenario:<14s}{p.latency * 1e6:>8.0f}us"
            f"{p.latency_max * 1e6:>8.0f}us"
        )
    lines += [
        "",
        "Elastic recovery: permanent kills then same-slot replacements "
        "under grow_restripe",
        f"{'app':<13s}{'repl':>6s}{'done':>6s}{'makespan':>11s}"
        f"{'detect':>9s}{'join':>8s}{'pause':>9s}{'moved':>9s}"
        f"{'base':>7s}{'degr':>7s}{'recov':>7s}{'recov%':>8s}",
    ]
    for p in elastic:
        if p.completed:
            lines.append(
                f"{p.app:<13s}{p.replaced}/{p.nodes:<4d}{'yes':>6s}"
                f"{p.makespan_ms:>9.3f}ms{p.detect_ms:>7.3f}ms"
                f"{p.join_ms:>6.3f}ms{p.pause_ms:>7.3f}ms"
                f"{p.migrated_bytes:>8d}B{p.base_rate:>7.0f}"
                f"{p.degraded_rate:>7.0f}{p.recovered_rate:>7.0f}"
                f"{p.recovery_pct:>7.1f}%"
            )
        else:
            lines.append(
                f"{p.app:<13s}{p.replaced}/{p.nodes:<4d}{'NO':>6s}"
                + "-".rjust(11) + "-".rjust(9) + "-".rjust(8)
                + "-".rjust(9) + "-".rjust(9)
                + f"{p.base_rate:>7.0f}{p.degraded_rate:>7.0f}"
                + "-".rjust(7) + "-".rjust(8)
            )
    lines.append(
        "(rates in data sets/s: base = fault-free same-policy run, degr = "
        "steady state on the survivors, recov = steady state after the "
        "re-grow; acceptance is recov within 5% of base)"
    )
    done = [p for p in elastic if p.completed]
    if done:
        delta = sum(p.delta_msgs for p in done)
        full = sum(p.full_msgs for p in done)
        lines += [
            "",
            f"Incremental re-striping: delta re-plans revisited {delta} "
            f"message(s); from-scratch recomputes would have visited "
            f"{full}.",
        ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro elasticity",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--size", type=int, default=32)
    parser.add_argument("--iterations", type=int, default=8)
    parser.add_argument("--quick", action="store_true",
                        help="one app, one period, a single replace count")
    parser.add_argument("-o", "--output",
                        help="also write the tables to this file")
    args = parser.parse_args(argv)

    if args.quick:
        joins = run_join_latency(periods=(1e-4,), nodes=args.nodes,
                                 seeds=(51,), lossy=False)
        elastic = run_elastic_recovery(
            nodes=args.nodes, size=args.size, iterations=args.iterations,
            replace_counts=(1,), apps=("fft2d",))
    else:
        joins = run_join_latency(nodes=args.nodes)
        elastic = run_elastic_recovery(
            nodes=args.nodes, size=args.size, iterations=args.iterations)
    text = format_elasticity(joins, elastic)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
