"""Experiment R1: fault tolerance under escalating fault rates.

Runs the two §3 benchmark applications (corner turn, 2D FFT) against
deterministic :class:`~repro.faults.FaultPlan`\\ s — transient message loss,
a mid-run node crash, a degraded link — under each run-time
:class:`~repro.faults.FaultPolicy`, and reports:

* **completion rate** — fraction of seeded runs that produced every output,
* **recovery overhead** — makespan increase over the fault-free baseline,
* **degraded-mode throughput** — data sets per second while impaired.

The point of the table is the contrast: ``fail_fast`` dies on the first
lost message, while ``retry`` absorbs transient loss for a small overhead
and ``checkpoint_restart`` survives a node crash outright.

Run: ``python -m repro fault-tolerance [--quick] [--output reports/...]``.
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..apps import benchmark_mapping, corner_turn_model, fft2d_model
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..faults import FaultPlan, FaultPolicy, RECOVERABLE_FAULTS
from ..machine import Environment, SimCluster, get_platform

__all__ = ["FaultPoint", "run_fault_tolerance", "format_fault_tolerance", "main"]

_APPS: Dict[str, Callable] = {
    "corner_turn": corner_turn_model,
    "fft2d": fft2d_model,
}


@dataclass
class FaultPoint:
    """One (application, fault scenario, policy) measurement."""

    app: str
    scenario: str
    policy: str
    completed: int          # runs that produced all outputs
    attempted: int          # seeded runs attempted
    makespan_ms: float      # mean over completed runs (nan if none)
    overhead_pct: float     # makespan increase vs fault-free (nan if none)
    throughput: float       # data sets / second over completed runs
    retries: int            # total retry probes over completed runs
    restores: int           # total checkpoint restores over completed runs

    @property
    def completion_rate(self) -> float:
        return self.completed / self.attempted if self.attempted else 0.0


def _policy_name(policy: Optional[FaultPolicy]) -> str:
    return policy.mode if policy is not None else "fail_fast"


def run_fault_tolerance(
    nodes: int = 4,
    size: int = 64,
    iterations: int = 5,
    seeds: Tuple[int, ...] = (11, 12, 13, 14, 15),
    loss_rates: Tuple[float, ...] = (0.01, 0.05, 0.10),
) -> List[FaultPoint]:
    """Measure every (app, scenario, policy) combination deterministically."""
    platform = get_platform("cspi")
    config = DEFAULT_CONFIG.timing_only()
    points: List[FaultPoint] = []

    for app_name, builder in _APPS.items():
        app = builder(size, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes),
                             num_processors=nodes)

        def run_once(plan: Optional[FaultPlan],
                     policy: Optional[FaultPolicy]):
            env = Environment()
            cluster = SimCluster.from_platform(env, platform, nodes,
                                               fault_plan=plan)
            runtime = SageRuntime(glue, cluster, config=config,
                                  fault_policy=policy)
            return runtime.run(iterations=iterations)

        def measure(scenario: str, policy: Optional[FaultPolicy],
                    make_plan: Callable[[int], Optional[FaultPlan]],
                    baseline_ms: float) -> FaultPoint:
            makespans: List[float] = []
            retries = restores = 0
            for seed in seeds:
                try:
                    result = run_once(make_plan(seed), policy)
                except RECOVERABLE_FAULTS:
                    continue  # run died: counts against the completion rate
                makespans.append(result.makespan * 1e3)
                retries += len(result.trace.by_kind("retry"))
                restores += len(result.trace.by_kind("restore"))
            mean_ms = (sum(makespans) / len(makespans)
                       if makespans else math.nan)
            overhead = ((mean_ms / baseline_ms - 1.0) * 100.0
                        if makespans and baseline_ms else math.nan)
            throughput = (iterations / (mean_ms / 1e3)
                          if makespans else 0.0)
            return FaultPoint(
                app=app_name, scenario=scenario,
                policy=_policy_name(policy),
                completed=len(makespans), attempted=len(seeds),
                makespan_ms=mean_ms, overhead_pct=overhead,
                throughput=throughput, retries=retries, restores=restores,
            )

        # Fault-free baseline (identical for every seed: the plan is empty).
        base = run_once(None, None)
        baseline_ms = base.makespan * 1e3
        points.append(FaultPoint(
            app=app_name, scenario="fault-free", policy="fail_fast",
            completed=len(seeds), attempted=len(seeds),
            makespan_ms=baseline_ms, overhead_pct=0.0,
            throughput=iterations / base.makespan, retries=0, restores=0,
        ))

        # Escalating transient message loss: fail_fast vs retry.
        for rate in loss_rates:
            scenario = f"loss {rate:.0%}"
            for policy in (None, FaultPolicy.retry(max_retries=4)):
                points.append(measure(
                    scenario, policy,
                    lambda seed, rate=rate:
                        FaultPlan(seed=seed).message_loss(rate),
                    baseline_ms,
                ))

        # A node crash mid-run: fail_fast dies, checkpoint_restart replays.
        crash_at = base.makespan * 0.4
        for policy in (None, FaultPolicy.checkpoint_restart()):
            points.append(measure(
                "node crash", policy,
                lambda seed: FaultPlan(seed=seed).crash_node(
                    nodes - 1, at=crash_at),
                baseline_ms,
            ))

        # Degraded mode: one link at quarter bandwidth for the whole run.
        points.append(measure(
            "link 0-1 @ 25%", FaultPolicy.retry(max_retries=4),
            lambda seed: FaultPlan(seed=seed).degrade_link(
                0, 1, at=0.0, factor=0.25),
            baseline_ms,
        ))

    return points


def format_fault_tolerance(points: List[FaultPoint]) -> str:
    lines = [
        "R1: fault tolerance under escalating fault rates "
        "(CSPI, timing-only)",
        f"{'app':<13s}{'scenario':<16s}{'policy':<20s}{'done':>7s}"
        f"{'makespan':>11s}{'overhead':>10s}{'sets/s':>9s}"
        f"{'retries':>9s}{'restores':>9s}",
    ]
    for p in points:
        makespan = f"{p.makespan_ms:.3f}ms" if not math.isnan(p.makespan_ms) else "-"
        overhead = f"{p.overhead_pct:+.1f}%" if not math.isnan(p.overhead_pct) else "-"
        rate = f"{p.completed}/{p.attempted}"
        throughput = f"{p.throughput:.0f}" if p.completed else "-"
        lines.append(
            f"{p.app:<13s}{p.scenario:<16s}{p.policy:<20s}{rate:>7s}"
            f"{makespan:>11s}{overhead:>10s}{throughput:>9s}"
            f"{p.retries:>9d}{p.restores:>9d}"
        )
    lines.append(
        "(fail_fast aborts on the first fault; retry absorbs transient loss; "
        "checkpoint_restart replays the iteration a crash killed)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fault-tolerance",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--size", type=int, default=64)
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="2 seeds and a single loss rate")
    parser.add_argument("-o", "--output",
                        help="also write the table to this file")
    args = parser.parse_args(argv)

    kwargs = {}
    if args.quick:
        kwargs = {"seeds": (11, 12), "loss_rates": (0.05,)}
    text = format_fault_tolerance(run_fault_tolerance(
        nodes=args.nodes, size=args.size, iterations=args.iterations,
        **kwargs,
    ))
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
