"""Generate the full reproduction record: every experiment at full protocol.

Writes one text artifact per experiment into ``reports/`` (used to fill
EXPERIMENTS.md).  Run: ``python -m repro.experiments.generate_report [outdir]``.
"""

from __future__ import annotations

import os
import sys
import time

from .ablations import (
    format_knobs,
    format_optimized,
    format_two_node,
    knob_study,
    optimized_glue_study,
    two_node_study,
)
from .atot_study import format_atot_study, run_atot_study
from .crossvendor import format_crossvendor, run_crossvendor
from .fault_tolerance import format_fault_tolerance, run_fault_tolerance
from .period_latency import format_period_latency, run_period_latency
from .runner import FULL_PROTOCOL
from .table1 import format_table1, run_table1


def _code_size_text() -> str:
    from .code_size import format_code_size, run_code_size

    return format_code_size(run_code_size())


def main(argv=None) -> int:
    outdir = (argv or sys.argv[1:] or ["reports"])[0]
    os.makedirs(outdir, exist_ok=True)
    jobs = [
        ("table1.txt", lambda: format_table1(run_table1(FULL_PROTOCOL))),
        ("two_node.txt", lambda: format_two_node(two_node_study(FULL_PROTOCOL))),
        (
            "optimized_glue.txt",
            lambda: format_optimized(optimized_glue_study(FULL_PROTOCOL)),
        ),
        (
            "knobs.txt",
            lambda: format_knobs(knob_study(FULL_PROTOCOL), "fft2d", 4, 1024),
        ),
        ("crossvendor.txt", lambda: format_crossvendor(run_crossvendor(FULL_PROTOCOL))),
        ("atot.txt", lambda: format_atot_study(run_atot_study(generations=40))),
        ("period_latency.txt", lambda: format_period_latency(run_period_latency())),
        ("code_size.txt", lambda: _code_size_text()),
        (
            "fault_tolerance.txt",
            lambda: format_fault_tolerance(run_fault_tolerance()),
        ),
    ]
    for filename, job in jobs:
        t0 = time.time()
        text = job()
        path = os.path.join(outdir, filename)
        with open(path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {path} ({time.time() - t0:.1f}s)", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
