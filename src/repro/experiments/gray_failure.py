"""Experiment R4: gray-failure resilience — detect, adapt, migrate.

Three measurements around the adaptive failure detector
(:mod:`repro.mpi.detector` with ``adaptive=True`` + RTT probes) and the
run-time's ``migrate_stragglers`` policy:

* **Slow-node detection latency** — a node starts limping (``slow_node``)
  at a known virtual time; the detector's round-robin RTT probes time the
  fixed probe benchmark on each target's CPU and raise ``suspect_slow``.
  The table reports injection-to-suspicion latency across limp factors and
  seeds.  A binary (liveness) detector never fires here at all — the node
  still heartbeats.
* **Adaptive vs fixed timeouts under degraded links** — heartbeats cross a
  lossy/degraded fabric with *no* dead node; every ``declare_dead`` is a
  false positive.  The fixed detector judges silence against
  ``miss_grace x period`` forever; the adaptive detector learns each
  peer's heartbeat inter-arrival distribution (Jacobson/Karels) and
  stretches its patience with the observed noise.  Acceptance: zero false
  positives for the adaptive detector across the sweep.
* **Straggler-migration throughput** — the slack-striped 2D FFT
  (:func:`repro.apps.fft2d_slack_model`: 28 threads on 8 nodes, so the
  striping has slack for a clean drain) runs while 1–2 nodes limp at
  0.25x speed.  Reported: steady-state throughput of the clean run, the
  limping run left alone, and the limping run under ``migrate_stragglers``
  (drain at an iteration boundary via incremental re-striping, threads
  earned back on recovery).  Acceptance: recovered throughput >= 80% of
  clean with one limping node of 8.

Run: ``python -m repro gray-failure [--quick] [-o reports/gray_failure.txt]``.
"""

from __future__ import annotations

import argparse
import math
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..apps import benchmark_mapping, fft2d_slack_model
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..faults import FaultPlan, FaultPolicy
from ..machine import Environment, SimCluster, get_platform
from ..mpi.detector import FailureDetector, HeartbeatConfig

__all__ = [
    "DetectionPoint",
    "TimeoutPoint",
    "ThroughputPoint",
    "run_detection_latency",
    "run_timeout_false_positives",
    "run_straggler_throughput",
    "format_gray_failure",
    "main",
]


@dataclass
class DetectionPoint:
    """suspect_slow latency for one (limp factor, seed) injection."""

    factor: float
    seed: int
    latency: float          # injection -> first suspect_slow (nan: missed)
    false_dead: int         # declare_dead events (should be 0 — node lives)


@dataclass
class TimeoutPoint:
    """False declare_dead counts for one degraded-link scenario."""

    scenario: str
    seed: int
    fixed_false: int
    adaptive_false: int


@dataclass
class ThroughputPoint:
    """Steady-state throughput for one limping-node configuration."""

    limping: int            # limping node count (0 = clean)
    policy: str             # "none" (left alone) or "migrate_stragglers"
    period_s: float         # steady-state seconds per data set
    ratio: float            # clean_period / period  (1.0 = full speed)
    suspects: int           # suspect_slow events
    migrations: int         # migrate_straggler events (drains + restores)
    false_dead: int         # declare_dead events (must stay 0)


# -- slow-node detection latency ---------------------------------------------

def run_detection_latency(
    factors: Sequence[float] = (0.1, 0.25, 0.4),
    seeds: Sequence[int] = (71, 72, 73),
    nodes: int = 8,
    period: float = 1e-4,
) -> List[DetectionPoint]:
    """Limp one node under the adaptive detector; time suspect_slow."""
    platform = get_platform("cspi")
    points: List[DetectionPoint] = []
    config = HeartbeatConfig(period=period, adaptive=True, rtt_probe_every=4)
    for factor in factors:
        for seed in seeds:
            slow_at = 20 * period + (seed % 7) * period / 3.0
            target = nodes - 1 - (seed % (nodes - 1))
            plan = FaultPlan(seed=seed).slow_node(target, at=slow_at,
                                                  factor=factor)
            env = Environment()
            cluster = SimCluster.from_platform(env, platform, nodes,
                                               fault_plan=plan)
            detector = FailureDetector(cluster, config).start()
            env.run(until=slow_at + 400 * period)
            detector.stop()
            suspected = [ev for ev in detector.log
                         if ev.kind == "suspect_slow" and ev.target == target]
            dead = [ev for ev in detector.log if ev.kind == "declare_dead"]
            points.append(DetectionPoint(
                factor=factor,
                seed=seed,
                latency=(suspected[0].time - slow_at if suspected
                         else math.nan),
                false_dead=len(dead),
            ))
    return points


# -- adaptive vs fixed timeouts ----------------------------------------------

def _count_false_dead(
    plan_builder,
    seed: int,
    nodes: int,
    period: float,
    horizon_periods: int,
    adaptive: bool,
) -> int:
    platform = get_platform("cspi")
    config = HeartbeatConfig(period=period, adaptive=adaptive)
    env = Environment()
    cluster = SimCluster.from_platform(env, platform, nodes,
                                       fault_plan=plan_builder(seed))
    detector = FailureDetector(cluster, config).start()
    env.run(until=horizon_periods * period)
    detector.stop()
    # No node ever dies in these scenarios: every declaration is false.
    return sum(1 for ev in detector.log if ev.kind == "declare_dead")


def run_timeout_false_positives(
    seeds: Sequence[int] = (81, 82, 83),
    nodes: int = 8,
    period: float = 1e-4,
    horizon_periods: int = 600,
) -> List[TimeoutPoint]:
    """Degraded-link sweep: count false declare_dead, fixed vs adaptive.

    Each scenario keeps every node alive; the fabric just gets worse:
    sustained heartbeat loss, a bandwidth-starved degraded link, and the
    combination.  Loss is the hard case for a fixed timeout — a streak of
    lost heartbeats is indistinguishable from death until patience has
    been *learned* from the arrival jitter the loss itself produces.
    """
    def lossy(rate: float):
        return lambda seed: FaultPlan(seed=seed).message_loss(rate)

    def degraded_lossy(factor: float, rate: float):
        def build(seed: int) -> FaultPlan:
            plan = FaultPlan(seed=seed).message_loss(rate)
            for k in range(nodes - 1):
                plan.degrade_link(k, k + 1, at=0.0, factor=factor)
            return plan
        return build

    scenarios: List[Tuple[str, object]] = [
        ("loss 10%", lossy(0.10)),
        ("loss 20%", lossy(0.20)),
        ("degrade x0.05 + loss 15%", degraded_lossy(0.05, 0.15)),
    ]
    points: List[TimeoutPoint] = []
    for name, builder in scenarios:
        for seed in seeds:
            fixed = _count_false_dead(builder, seed, nodes, period,
                                      horizon_periods, adaptive=False)
            adaptive = _count_false_dead(builder, seed, nodes, period,
                                         horizon_periods, adaptive=True)
            points.append(TimeoutPoint(
                scenario=name, seed=seed,
                fixed_false=fixed, adaptive_false=adaptive,
            ))
    return points


# -- straggler-migration throughput ------------------------------------------

def _steady_period(sink_times: Sequence[float], skip: int) -> float:
    """Steady-state seconds per data set over the tail of the run."""
    times = list(sink_times)[skip:]
    if len(times) < 2:
        return math.nan
    return (times[-1] - times[0]) / (len(times) - 1)


def run_straggler_throughput(
    nodes: int = 8,
    n: int = 56,
    threads: int = 28,
    iterations: int = 30,
    limp_counts: Sequence[int] = (1, 2),
    limp_factor: float = 0.25,
    seed: int = 91,
) -> List[ThroughputPoint]:
    """Clean vs limping vs limping-with-migration steady-state throughput."""
    platform = get_platform("cspi")
    config = DEFAULT_CONFIG.timing_only()
    app = fft2d_slack_model(n, threads)
    glue = generate_glue(app, benchmark_mapping(app, nodes),
                         num_processors=nodes)

    def run_once(plan: Optional[FaultPlan], policy: FaultPolicy):
        env = Environment()
        cluster = SimCluster.from_platform(env, platform, nodes,
                                           fault_plan=plan)
        runtime = SageRuntime(glue, cluster, config=config,
                              fault_policy=policy)
        return runtime.run(iterations=iterations)

    def limp_plan(count: int) -> FaultPlan:
        plan = FaultPlan(seed=seed)
        for i in range(count):
            plan.slow_node(3 + 2 * i, at=5e-4, factor=limp_factor)
        return plan

    # Clean reference: same checkpointing machinery, no detector probes.
    clean = run_once(None, FaultPolicy.checkpoint_restart())
    clean_period = _steady_period(clean.sink_times, skip=iterations // 3)
    points = [ThroughputPoint(
        limping=0, policy="none", period_s=clean_period, ratio=1.0,
        suspects=0, migrations=0, false_dead=0,
    )]
    tail_skip = iterations // 2
    for count in limp_counts:
        unmigrated = run_once(limp_plan(count),
                              FaultPolicy.checkpoint_restart())
        p = _steady_period(unmigrated.sink_times, tail_skip)
        points.append(ThroughputPoint(
            limping=count, policy="none", period_s=p,
            ratio=clean_period / p if p else math.nan,
            suspects=0, migrations=0, false_dead=0,
        ))
        migrated = run_once(limp_plan(count),
                            FaultPolicy.migrate_stragglers())
        p = _steady_period(migrated.sink_times, tail_skip)
        points.append(ThroughputPoint(
            limping=count, policy="migrate_stragglers", period_s=p,
            ratio=clean_period / p if p else math.nan,
            suspects=len(migrated.trace.by_kind("suspect_slow")),
            migrations=len(migrated.trace.by_kind("migrate_straggler")),
            false_dead=len(migrated.trace.by_kind("declare_dead")),
        ))
    return points


# -- formatting --------------------------------------------------------------

def format_gray_failure(
    detection: List[DetectionPoint],
    timeouts: List[TimeoutPoint],
    throughput: List[ThroughputPoint],
) -> str:
    lines = [
        "R4: gray-failure resilience — straggler detection, adaptive "
        "timeouts, proactive migration (CSPI)",
        "",
        "Slow-node detection latency (slow_node injection -> suspect_slow, "
        "adaptive detector, RTT probes)",
        f"{'limp':>8s}{'seed':>6s}{'latency':>12s}{'false dead':>12s}",
    ]
    for p in detection:
        lat = (f"{p.latency * 1e3:>10.3f}ms" if not math.isnan(p.latency)
               else "missed".rjust(12))
        lines.append(f"x{p.factor:<7.2f}{p.seed:>6d}{lat}{p.false_dead:>12d}")
    lines += [
        "(a x0.40 limp stretches CPU time 2.5x — below the slow_factor=3.0 "
        "discrimination threshold, so 'missed' there is by design: "
        "sub-threshold limps are normal variance, not stragglers)",
    ]
    lines += [
        "",
        "False declare_dead under degraded links (no node is dead; "
        "600 heartbeat periods)",
        f"{'scenario':<28s}{'seed':>6s}{'fixed':>8s}{'adaptive':>10s}",
    ]
    for p in timeouts:
        lines.append(f"{p.scenario:<28s}{p.seed:>6d}"
                     f"{p.fixed_false:>8d}{p.adaptive_false:>10d}")
    total_fixed = sum(p.fixed_false for p in timeouts)
    total_adaptive = sum(p.adaptive_false for p in timeouts)
    lines.append(f"{'total':<28s}{'':>6s}"
                 f"{total_fixed:>8d}{total_adaptive:>10d}")
    lines += [
        "",
        "Straggler-migration throughput (gray_fft2d 56x56, 28 threads on "
        "8 nodes, limp x0.25)",
        f"{'limping':>8s}  {'policy':<20s}{'period':>12s}{'vs clean':>10s}"
        f"{'suspects':>10s}{'moves':>7s}{'false dead':>12s}",
    ]
    for p in throughput:
        lines.append(
            f"{p.limping:>8d}  {p.policy:<20s}{p.period_s * 1e3:>10.4f}ms"
            f"{p.ratio * 100:>9.1f}%{p.suspects:>10d}{p.migrations:>7d}"
            f"{p.false_dead:>12d}"
        )
    lines.append(
        "(vs clean = clean-run steady-state throughput ratio; acceptance: "
        ">= 80% with 1 limping node under migrate_stragglers, and zero "
        "false declare_dead everywhere)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro gray-failure",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=30)
    parser.add_argument("--quick", action="store_true",
                        help="one factor, one seed, one limp count")
    parser.add_argument("-o", "--output",
                        help="write the tables here "
                             "(default reports/gray_failure.txt)")
    args = parser.parse_args(argv)

    if args.quick:
        detection = run_detection_latency(factors=(0.25,), seeds=(71,),
                                          nodes=args.nodes)
        timeouts = run_timeout_false_positives(seeds=(81,), nodes=args.nodes)
        throughput = run_straggler_throughput(
            nodes=args.nodes, iterations=args.iterations, limp_counts=(1,))
    else:
        detection = run_detection_latency(nodes=args.nodes)
        timeouts = run_timeout_false_positives(nodes=args.nodes)
        throughput = run_straggler_throughput(
            nodes=args.nodes, iterations=args.iterations)
    text = format_gray_failure(detection, timeouts, throughput)
    print(text)
    out = args.output
    if out is None:
        os.makedirs("reports", exist_ok=True)
        out = os.path.join("reports", "gray_failure.txt")
    with open(out, "w") as fh:
        fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
