"""Experiment A2: the §3.3 period/latency distinction.

*"a period is defined to be the time between input data sets while latency
is the time required to process a single data set"* — once the dataflow
pipeline fills, the steady-state period drops below the single-data-set
latency, bounded by the slowest stage; throttling the source below that
bound makes the period track the source interval instead.

Run: ``python -m repro.experiments.period_latency``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..apps import benchmark_mapping, fft2d_model
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..machine import Environment, SimCluster, get_platform

__all__ = ["PeriodLatencyPoint", "run_period_latency", "format_period_latency", "main"]


@dataclass
class PeriodLatencyPoint:
    mode: str
    latency_ms: float
    period_ms: float


def run_period_latency(
    nodes: int = 4, size: int = 512, iterations: int = 12
) -> List[PeriodLatencyPoint]:
    platform = get_platform("cspi")
    app = fft2d_model(size, nodes)
    glue = generate_glue(app, benchmark_mapping(app, nodes), num_processors=nodes)

    def run(config, source_interval=0.0):
        env = Environment()
        cluster = SimCluster.from_platform(env, platform, nodes)
        runtime = SageRuntime(glue, cluster, config=config)
        return runtime.run(iterations=iterations, source_interval=source_interval)

    base = DEFAULT_CONFIG.timing_only()
    points = []
    r = run(base)
    serial_latency = r.mean_latency
    points.append(PeriodLatencyPoint("serial", r.mean_latency * 1e3, r.period * 1e3))
    r = run(base.pipelined())
    points.append(PeriodLatencyPoint("pipelined-unbounded", r.mean_latency * 1e3, r.period * 1e3))
    r = run(base.pipelined(2))
    points.append(PeriodLatencyPoint("pipelined-depth2", r.mean_latency * 1e3, r.period * 1e3))
    # Throttle the source well below the pipeline's natural rate: the period
    # then tracks the source interval (the sensor's data-set cadence).
    throttle = serial_latency * 2
    r = run(base.pipelined(), source_interval=throttle)
    points.append(
        PeriodLatencyPoint("throttled-source", r.mean_latency * 1e3, r.period * 1e3)
    )
    return points


def format_period_latency(points: List[PeriodLatencyPoint]) -> str:
    lines = [
        "A2: period vs latency (2D FFT, CSPI 4 nodes, 512x512)",
        f"{'mode':<26s}{'latency':>11s}{'period':>11s}",
    ]
    for p in points:
        lines.append(f"{p.mode:<26s}{p.latency_ms:>9.2f}ms{p.period_ms:>9.2f}ms")
    lines.append("(pipelined period < latency; throttled period = source interval)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    print(format_period_latency(run_period_latency()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
