"""Experiment R2: failure detection and shrinking reconfiguration.

Three measurements around the heartbeat detector
(:mod:`repro.mpi.detector`) and the run-time's ``shrink_restripe`` policy:

* **Detection latency vs heartbeat period** — a node is crashed mid-soak
  and the time from the crash to the first cluster-wide ``declare_dead``
  verdict is measured for a sweep of heartbeat periods.  Latency tracks
  ``(miss_grace + threshold) * period``.
* **False-positive rate under degraded fabrics** — the detector soaks on a
  fault-free cluster, then on clusters with degraded links and seeded
  message loss, with *no* crashes; every declaration is by construction a
  false positive.  Defaults must yield zero fault-free false positives.
* **Shrinking recovery** — 2D FFT and corner turn run on 8 nodes while
  1–3 nodes are permanently killed mid-run.  The run-time detects each
  loss, shrinks to the survivors, re-stripes the checkpointed buffers, and
  completes at degraded throughput; the table reports detection latency,
  reconfiguration cost (declaration to restored checkpoint), makespan
  overhead, and the degraded throughput.

Run: ``python -m repro reconfiguration [--quick] [--output reports/...]``.
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps import benchmark_mapping, corner_turn_model, fft2d_model
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, SageRuntime
from ..faults import FaultPlan, FaultPolicy
from ..machine import Environment, SimCluster, get_platform
from ..mpi.detector import FailureDetector, HeartbeatConfig

__all__ = [
    "DetectionPoint",
    "FalsePositivePoint",
    "ShrinkPoint",
    "run_detection_latency",
    "run_false_positives",
    "run_shrink_recovery",
    "format_reconfiguration",
    "main",
]

_APPS: Dict[str, Callable] = {
    "fft2d": fft2d_model,
    "corner_turn": corner_turn_model,
}


@dataclass
class DetectionPoint:
    """Detection latency for one heartbeat period."""

    period: float
    window: float           # configured worst-case (miss_grace+threshold)*period
    latency: float          # crash -> first declare_dead, mean over seeds
    latency_max: float


@dataclass
class FalsePositivePoint:
    """Detector soak with no crashes: every declaration is a false positive."""

    scenario: str
    soak: float             # virtual seconds observed
    false_positives: int    # ranks wrongly declared dead
    suspects: int           # transient suspicions (recovered by a heartbeat)


@dataclass
class ShrinkPoint:
    """One (application, kill count) shrinking-recovery measurement."""

    app: str
    nodes: int
    killed: int
    completed: bool
    makespan_ms: float
    overhead_pct: float         # vs the fault-free baseline
    detect_ms: float            # mean crash -> declare_dead latency
    reconfig_ms: float          # mean declare_dead -> restored checkpoint
    restripe_bytes: int         # checkpoint bytes moved to new owners
    throughput: float           # data sets / second after completion
    baseline_throughput: float


# -- detection latency ------------------------------------------------------

def run_detection_latency(
    periods: Sequence[float] = (5e-5, 1e-4, 2e-4, 4e-4),
    nodes: int = 8,
    seeds: Sequence[int] = (21, 22, 23),
) -> List[DetectionPoint]:
    """Crash one node mid-soak; latency = crash -> first declaration."""
    platform = get_platform("cspi")
    points: List[DetectionPoint] = []
    for period in periods:
        config = HeartbeatConfig(period=period)
        latencies: List[float] = []
        for seed in seeds:
            crash_at = 20 * period + seed * period / 7.0
            env = Environment()
            plan = FaultPlan(seed=seed).crash_node(
                nodes - 1, at=crash_at, permanent=True)
            cluster = SimCluster.from_platform(env, platform, nodes,
                                               fault_plan=plan)
            detector = FailureDetector(cluster, config).start()
            declared_at, _observer = env.run(
                until=detector.death_event(nodes - 1))
            detector.stop()
            latencies.append(declared_at - crash_at)
        points.append(DetectionPoint(
            period=period,
            window=config.window,
            latency=sum(latencies) / len(latencies),
            latency_max=max(latencies),
        ))
    return points


# -- false positives --------------------------------------------------------

def run_false_positives(
    nodes: int = 8,
    soak_periods: int = 200,
    config: Optional[HeartbeatConfig] = None,
) -> List[FalsePositivePoint]:
    """Soak the detector with no crashes; count wrongful declarations."""
    config = config if config is not None else HeartbeatConfig()
    platform = get_platform("cspi")
    scenarios: List[Tuple[str, Optional[FaultPlan]]] = [
        ("fault-free", None),
        ("link 0-1 @ 10%", FaultPlan(seed=31).degrade_link(
            0, 1, at=0.0, factor=0.10)),
        ("loss 5%", FaultPlan(seed=32).message_loss(0.05)),
        ("loss 20%", FaultPlan(seed=33).message_loss(0.20)),
        ("loss 20% + link @ 10%", FaultPlan(seed=34).message_loss(0.20)
            .degrade_link(0, 1, at=0.0, factor=0.10)),
    ]
    points: List[FalsePositivePoint] = []
    for name, plan in scenarios:
        env = Environment()
        cluster = SimCluster.from_platform(env, platform, nodes,
                                           fault_plan=plan)
        detector = FailureDetector(cluster, config).start()
        soak = soak_periods * config.period
        env.run(until=soak)
        suspects = sum(1 for ev in detector.log if ev.kind == "suspect")
        fps = len(detector.declared_dead())
        detector.stop()
        points.append(FalsePositivePoint(
            scenario=name, soak=soak, false_positives=fps, suspects=suspects,
        ))
    return points


# -- shrinking recovery -----------------------------------------------------

def run_shrink_recovery(
    nodes: int = 8,
    size: int = 32,
    iterations: int = 4,
    kill_counts: Sequence[int] = (1, 2, 3),
    seed: int = 41,
) -> List[ShrinkPoint]:
    """Kill 1..k of ``nodes`` permanently mid-run under shrink_restripe."""
    platform = get_platform("cspi")
    config = DEFAULT_CONFIG.timing_only()
    points: List[ShrinkPoint] = []
    for app_name, builder in _APPS.items():
        app = builder(size, nodes)
        glue = generate_glue(app, benchmark_mapping(app, nodes),
                             num_processors=nodes)

        def run_once(plan: Optional[FaultPlan],
                     policy: Optional[FaultPolicy]):
            env = Environment()
            cluster = SimCluster.from_platform(env, platform, nodes,
                                               fault_plan=plan)
            runtime = SageRuntime(glue, cluster, config=config,
                                  fault_policy=policy)
            return runtime.run(iterations=iterations)

        base = run_once(None, None)
        baseline_ms = base.makespan * 1e3
        baseline_tp = iterations / base.makespan

        for kills in kill_counts:
            # Stagger the kills through the run; the makespan only grows
            # with each recovery, so fractions of the baseline are in-run.
            plan = FaultPlan(seed=seed)
            for i in range(kills):
                plan.crash_node(nodes - 1 - i,
                                at=base.makespan * (0.35 + 0.18 * i),
                                permanent=True)
            policy = FaultPolicy.shrink_restripe(max_restarts=kills + 2)
            try:
                result = run_once(plan, policy)
            except Exception:
                points.append(ShrinkPoint(
                    app=app_name, nodes=nodes, killed=kills, completed=False,
                    makespan_ms=math.nan, overhead_pct=math.nan,
                    detect_ms=math.nan, reconfig_ms=math.nan,
                    restripe_bytes=0, throughput=0.0,
                    baseline_throughput=baseline_tp,
                ))
                continue
            crash_times = {
                ev.processor: ev.time
                for ev in result.trace.by_kind("fault_injected")
                if "node_crash" in ev.detail
            }
            declares = result.trace.by_kind("declare_dead")
            detect = [ev.time - crash_times[ev.processor]
                      for ev in declares if ev.processor in crash_times]
            # Reconfiguration cost: declaration -> the restore that follows.
            restores = result.trace.by_kind("restore")
            reconfig = []
            for ev in declares:
                after = [r.time for r in restores if r.time >= ev.time]
                if after:
                    reconfig.append(min(after) - ev.time)
            restripe_bytes = sum(
                ev.nbytes for ev in result.trace.by_kind("restripe"))
            makespan_ms = result.makespan * 1e3
            points.append(ShrinkPoint(
                app=app_name, nodes=nodes, killed=kills, completed=True,
                makespan_ms=makespan_ms,
                overhead_pct=(makespan_ms / baseline_ms - 1.0) * 100.0,
                detect_ms=(sum(detect) / len(detect) * 1e3
                           if detect else math.nan),
                reconfig_ms=(sum(reconfig) / len(reconfig) * 1e3
                             if reconfig else math.nan),
                restripe_bytes=restripe_bytes,
                throughput=iterations / result.makespan,
                baseline_throughput=baseline_tp,
            ))
    return points


# -- formatting -------------------------------------------------------------

def format_reconfiguration(
    detection: List[DetectionPoint],
    false_positives: List[FalsePositivePoint],
    shrink: List[ShrinkPoint],
) -> str:
    lines = [
        "R2: failure detection and shrinking reconfiguration "
        "(CSPI, timing-only)",
        "",
        "Detection latency vs heartbeat period (crash -> first declare_dead)",
        f"{'period':>10s}{'window':>10s}{'mean':>10s}{'max':>10s}",
    ]
    for p in detection:
        lines.append(
            f"{p.period * 1e6:>8.0f}us{p.window * 1e6:>8.0f}us"
            f"{p.latency * 1e6:>8.0f}us{p.latency_max * 1e6:>8.0f}us"
        )
    lines += [
        "",
        "False positives during a crash-free soak (defaults: "
        "period=100us, miss_grace=2.5, threshold=3)",
        f"{'scenario':<24s}{'soak':>9s}{'suspects':>10s}{'false+':>8s}",
    ]
    for p in false_positives:
        lines.append(
            f"{p.scenario:<24s}{p.soak * 1e3:>7.1f}ms"
            f"{p.suspects:>10d}{p.false_positives:>8d}"
        )
    lines += [
        "",
        "Shrinking recovery: permanent kills mid-run under shrink_restripe",
        f"{'app':<13s}{'killed':>7s}{'done':>6s}{'makespan':>11s}"
        f"{'overhead':>10s}{'detect':>9s}{'reconfig':>10s}"
        f"{'restripe':>10s}{'sets/s':>8s}{'base':>7s}",
    ]
    for p in shrink:
        if p.completed:
            lines.append(
                f"{p.app:<13s}{p.killed}/{p.nodes:<5d}{'yes':>6s}"
                f"{p.makespan_ms:>9.3f}ms{p.overhead_pct:>+9.1f}%"
                f"{p.detect_ms:>7.3f}ms{p.reconfig_ms:>8.3f}ms"
                f"{p.restripe_bytes:>9d}B{p.throughput:>8.0f}"
                f"{p.baseline_throughput:>7.0f}"
            )
        else:
            lines.append(
                f"{p.app:<13s}{p.killed}/{p.nodes:<5d}{'NO':>6s}"
                + "-".rjust(11) + "-".rjust(10) + "-".rjust(9)
                + "-".rjust(10) + "-".rjust(10) + "-".rjust(8)
                + f"{p.baseline_throughput:>7.0f}"
            )
    lines.append(
        "(detect: crash to cluster-wide declare_dead; reconfig: declaration "
        "to restored checkpoint incl. re-striping; the app completes on the "
        "survivors at degraded throughput)"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro reconfiguration",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--size", type=int, default=32)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--quick", action="store_true",
                        help="fewer periods/seeds and a single kill count")
    parser.add_argument("-o", "--output",
                        help="also write the tables to this file")
    args = parser.parse_args(argv)

    if args.quick:
        detection = run_detection_latency(periods=(1e-4, 2e-4),
                                          nodes=args.nodes, seeds=(21,))
        fps = run_false_positives(nodes=args.nodes, soak_periods=80)
        shrink = run_shrink_recovery(nodes=args.nodes, size=args.size,
                                     iterations=args.iterations,
                                     kill_counts=(1,))
    else:
        detection = run_detection_latency(nodes=args.nodes)
        fps = run_false_positives(nodes=args.nodes)
        shrink = run_shrink_recovery(nodes=args.nodes, size=args.size,
                                     iterations=args.iterations)
    text = format_reconfiguration(detection, fps, shrink)
    print(text)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
