"""The §3.3 experiment protocol.

*"each node configuration and mapping will be executed ten times where each
execution consists of a 100 iterations. The final performance number for
that execution will average the 100*10 results into a final average result.
... a period is defined to be the time between input data sets while latency
is the time required to process a single data set."*

:func:`measure_sage` runs the auto-generated glue through the SAGE run-time;
:func:`measure_hand` runs the hand-coded rank program over the vendor MPI.
Both execute in timing mode on the same simulated platform, so the only
differences are exactly the run-time overheads under study.  The simulator
is deterministic; per-run measurement jitter (clock granularity, interrupt
skew on the real VxWorks boards) is modeled as a small seeded multiplicative
term so the 10-run averaging machinery is exercised honestly.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..apps import (
    benchmark_mapping,
    corner_turn_model,
    corner_turn_rank,
    fft2d_model,
    fft2d_rank,
)
from ..core.codegen import generate_glue
from ..core.runtime import DEFAULT_CONFIG, RuntimeConfig, SageRuntime
from ..machine import Environment, PlatformSpec, SimCluster
from ..mpi import MpiWorld

__all__ = [
    "Protocol", "Measurement", "measure_sage", "measure_hand", "APP_BUILDERS",
    "FULL_PROTOCOL", "QUICK_PROTOCOL", "BENCH_PROTOCOL",
]

#: benchmark name -> (model builder, hand-coded rank program)
APP_BUILDERS = {
    "fft2d": (fft2d_model, fft2d_rank),
    "corner_turn": (corner_turn_model, corner_turn_rank),
}


@dataclass(frozen=True)
class Protocol:
    """How many runs/iterations to execute and how to jitter them."""

    runs: int = 10
    iterations: int = 100
    jitter_sigma: float = 0.004  # ~0.4 % run-to-run spread
    seed: int = 20000316  # IPPS 2000 vintage

    def __post_init__(self):
        if self.runs < 1 or self.iterations < 1:
            raise ValueError("runs and iterations must be >= 1")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")


#: The paper's full protocol and a fast variant for CI/benchmarks.
FULL_PROTOCOL = Protocol()
QUICK_PROTOCOL = Protocol(runs=3, iterations=10)
#: The reduced protocol shared by ``benchmarks/`` (pytest-benchmark) and
#: ``python -m repro bench`` — one source of truth, so wall-clock numbers
#: from both harnesses describe the same workload.  Virtual results are
#: identical to the full 10x100 protocol modulo the seeded jitter term,
#: which is disabled here.
BENCH_PROTOCOL = Protocol(runs=1, iterations=5, jitter_sigma=0.0)


@dataclass
class Measurement:
    """An averaged latency/period measurement for one configuration."""

    app: str
    platform: str
    nodes: int
    size: int
    variant: str  # 'hand' | 'sage' | 'sage_optimized'
    run_latencies: List[float] = field(default_factory=list)
    run_periods: List[float] = field(default_factory=list)

    @property
    def latency(self) -> float:
        return statistics.fmean(self.run_latencies)

    @property
    def latency_ms(self) -> float:
        return self.latency * 1e3

    @property
    def period(self) -> float:
        return statistics.fmean(self.run_periods)

    @property
    def latency_stdev(self) -> float:
        if len(self.run_latencies) < 2:
            return 0.0
        return statistics.stdev(self.run_latencies)


def _jitter(base: float, protocol: Protocol, run: int, tag: str) -> float:
    if protocol.jitter_sigma == 0:
        return base
    rng = np.random.default_rng(
        np.random.SeedSequence([protocol.seed, run, hash(tag) & 0x7FFFFFFF])
    )
    return base * float(1.0 + protocol.jitter_sigma * rng.standard_normal())


def measure_sage(
    app: str,
    platform: PlatformSpec,
    nodes: int,
    size: int,
    protocol: Protocol = QUICK_PROTOCOL,
    config: Optional[RuntimeConfig] = None,
    optimize_buffers: bool = False,
) -> Measurement:
    """Average latency of the SAGE auto-generated code for one configuration."""
    builder, _ = _lookup(app)
    model = builder(size, nodes)
    mapping = benchmark_mapping(model, nodes)
    glue = generate_glue(
        model, mapping, num_processors=nodes, optimize_buffers=optimize_buffers
    )
    cfg = (config or DEFAULT_CONFIG).timing_only()
    variant = "sage_optimized" if (optimize_buffers or cfg.send_staging != "all") else "sage"
    meas = Measurement(app, platform.name, nodes, size, variant)
    for run in range(protocol.runs):
        env = Environment()
        cluster = SimCluster.from_platform(env, platform, nodes)
        runtime = SageRuntime(glue, cluster, config=cfg)
        result = runtime.run(iterations=protocol.iterations)
        tag = f"sage:{app}:{platform.name}:{nodes}:{size}"
        meas.run_latencies.append(_jitter(result.mean_latency, protocol, run, tag))
        meas.run_periods.append(_jitter(result.period, protocol, run, tag + ":p"))
    return meas


def measure_hand(
    app: str,
    platform: PlatformSpec,
    nodes: int,
    size: int,
    protocol: Protocol = QUICK_PROTOCOL,
    alltoall_algorithm: Optional[str] = None,
) -> Measurement:
    """Average latency of the hand-coded implementation for one configuration."""
    _, rank_program = _lookup(app)
    algorithm = alltoall_algorithm or platform.alltoall_algorithm
    meas = Measurement(app, platform.name, nodes, size, "hand")
    for run in range(protocol.runs):
        env = Environment()
        cluster = SimCluster.from_platform(env, platform, nodes)
        world = MpiWorld(cluster)
        world.spawn(
            rank_program,
            size,
            iterations=protocol.iterations,
            alltoall_algorithm=algorithm,
            execute_data=False,
        )
        timings = world.run()
        latencies = []
        for k in range(protocol.iterations):
            start = min(t.starts[k] for t in timings)
            finish = max(t.finishes[k] for t in timings)
            latencies.append(finish - start)
        base_latency = statistics.fmean(latencies)
        finish_times = [max(t.finishes[k] for t in timings) for k in range(protocol.iterations)]
        if len(finish_times) > 1:
            period = (finish_times[-1] - finish_times[0]) / (len(finish_times) - 1)
        else:
            period = base_latency
        tag = f"hand:{app}:{platform.name}:{nodes}:{size}"
        meas.run_latencies.append(_jitter(base_latency, protocol, run, tag))
        meas.run_periods.append(_jitter(period, protocol, run, tag + ":p"))
    return meas


def _lookup(app: str):
    try:
        return APP_BUILDERS[app]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {app!r}; available: {sorted(APP_BUILDERS)}"
        ) from None
