"""Experiment R5: SAGE-as-a-service under multi-tenant soak.

The paper's infrastructure compiled and ran one design at a time; the
service front end (:mod:`repro.service`) multiplexes many. This experiment
characterises that scheduler the way Table 1.0 characterised the
generated code — numbers first, then the invariants that make the numbers
trustworthy:

* **Throughput & scheduling sweep** — seeded mixed workloads (FFT2D +
  corner turn, four tenants, tight and open budgets) at several scales and
  seeds.  Reported per run: completions, typed rejections (node-quota at
  submit, queue-depth at arrival), conservative backfills, budget kills,
  shared-cluster utilization, mean queue wait, and the headline
  designs-compiled-and-simulated per host second.
* **Invariant scorecard** — each run re-checks the five soak invariants
  (standalone isolation, replay determinism, quota/no-starvation, zero
  leaked slots, telemetry consistency).  A run with any violation fails
  the experiment.
* **Per-tenant fairness** — one 300-job run broken down by tenant:
  submitted/completed/rejected and nodes-seconds consumed, showing the
  under-provisioned ``burst`` tenant is clamped by its quota while the
  open tenants share the remainder.

Run: ``python -m repro service-soak [--quick] [-o reports/service_soak.txt]``.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..service.soak import (
    SERVICE_BASELINE,
    SoakReport,
    generate_workload,
    run_soak,
)

__all__ = [
    "TenantRow",
    "run_sweep",
    "run_tenant_breakdown",
    "format_service_soak",
    "main",
]


@dataclass
class TenantRow:
    tenant: str
    submitted: int
    completed: int
    rejected: int
    node_seconds: float


def run_sweep(
    scales: Sequence[int] = (100, 300),
    seeds: Sequence[int] = (7, 21),
    nodes: int = 8,
) -> List[SoakReport]:
    """One full soak (all five invariants) per (scale, seed) point."""
    return [
        run_soak(jobs=jobs, seed=seed, nodes=nodes)
        for jobs in scales
        for seed in seeds
    ]


def run_tenant_breakdown(jobs: int = 300, seed: int = 7,
                         nodes: int = 8) -> List[TenantRow]:
    """Play one workload and account per-tenant outcomes and node-seconds."""
    from ..service.soak import _build_service, _drive

    svc = _build_service(nodes, seed)
    workload = generate_workload(jobs, seed)
    _drive(svc, workload)
    by_tenant: Dict[str, TenantRow] = {}
    for spec, _at in workload:
        row = by_tenant.setdefault(
            spec.tenant, TenantRow(spec.tenant, 0, 0, 0, 0.0))
        row.submitted += 1
    for job in svc.jobs.values():
        row = by_tenant[job.spec.tenant]
        if job.state == "completed":
            row.completed += 1
        elif job.state == "rejected":
            row.rejected += 1
    # Submit-time rejections never reach svc.jobs; infer them from totals.
    for row in by_tenant.values():
        seen = sum(1 for j in svc.jobs.values()
                   if j.spec.tenant == row.tenant)
        row.rejected += row.submitted - seen
    for lease in svc.scheduler.history:
        end = lease.t_end if lease.t_end is not None else lease.t_start
        by_tenant[lease.tenant].node_seconds += (
            lease.width * (end - lease.t_start)
        )
    return [by_tenant[t] for t in sorted(by_tenant)]


def format_service_soak(reports: List[SoakReport],
                        tenants: List[TenantRow]) -> str:
    lines = [
        "R5 — SAGE-as-a-service: multi-tenant soak over one shared "
        "simulated cluster",
        "",
        "Scheduling sweep (mixed FFT2D/corner-turn, 4 tenants, "
        "FIFO + conservative backfill)",
        f"{'jobs':>6s}{'seed':>6s}{'done':>7s}{'rej':>6s}{'bfill':>7s}"
        f"{'kill':>6s}{'util':>7s}{'wait ms':>9s}{'jobs/s':>9s}"
        f"{'invariants':>12s}",
    ]
    for r in reports:
        inv = f"{sum(r.invariants.values())}/{len(r.invariants)}"
        lines.append(
            f"{r.jobs:>6d}{r.seed:>6d}{r.completed:>7d}"
            f"{r.rejected + r.rejected_at_submit:>6d}{r.backfills:>7d}"
            f"{r.budget_kills:>6d}{r.utilization:>7.2f}"
            f"{r.mean_wait * 1e3:>9.3f}{r.jobs_per_sec:>9.1f}"
            f"{inv:>12s}"
        )
    base = SERVICE_BASELINE["jobs_per_sec"]
    lines += [
        f"(baseline {base:.1f} jobs/s at "
        f"{SERVICE_BASELINE['jobs']} jobs on "
        f"{SERVICE_BASELINE['machine']}; tracked, no wall-clock gate. "
        "invariants: isolation, determinism, quota/no-starvation, "
        "zero leaked slots, telemetry)",
        "",
        "Per-tenant fairness (300 jobs; 'burst' is quota-clamped to 2 "
        "nodes / depth 4)",
        f"{'tenant':<10s}{'submitted':>10s}{'completed':>10s}"
        f"{'rejected':>10s}{'node-sec':>12s}",
    ]
    for row in tenants:
        lines.append(
            f"{row.tenant:<10s}{row.submitted:>10d}{row.completed:>10d}"
            f"{row.rejected:>10d}{row.node_seconds:>12.4f}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro service-soak",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--quick", action="store_true",
                        help="one scale, one seed, smaller breakdown")
    parser.add_argument("-o", "--output",
                        help="write the tables here "
                             "(default reports/service_soak.txt)")
    args = parser.parse_args(argv)

    if args.quick:
        reports = run_sweep(scales=(60,), seeds=(7,), nodes=args.nodes)
        tenants = run_tenant_breakdown(jobs=60, nodes=args.nodes)
    else:
        reports = run_sweep(nodes=args.nodes)
        tenants = run_tenant_breakdown(nodes=args.nodes)
    text = format_service_soak(reports, tenants)
    print(text)
    out = args.output
    if out is None:
        os.makedirs("reports", exist_ok=True)
        out = os.path.join("reports", "service_soak.txt")
    with open(out, "w") as fh:
        fh.write(text + "\n")
    return 1 if any(not r.ok for r in reports) else 0


if __name__ == "__main__":
    raise SystemExit(main())
