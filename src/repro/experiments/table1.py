"""Experiment T1: reproduce Table 1.0.

*"Comparison of hand-coded and auto-generated code for CSPI"* — the 2D FFT
and distributed corner turn on 4- and 8-node CSPI configurations with
256/512/1024 square data sets, each cell the average of the 10x100 protocol,
reported as SAGE-as-percentage-of-hand-coded with per-application and
overall averages (the paper's headline 77.5 % / "within 75 % efficiency").

Run: ``python -m repro.experiments.table1 [--quick] [--summary]``
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..machine import get_platform
from .runner import FULL_PROTOCOL, QUICK_PROTOCOL, Protocol, measure_hand, measure_sage

__all__ = ["Table1Row", "run_table1", "format_table1", "main",
           "NODE_COUNTS", "ARRAY_SIZES", "APPS"]

NODE_COUNTS = (4, 8)
ARRAY_SIZES = (256, 512, 1024)
APPS = (("2D FFT", "fft2d"), ("Corner Turn", "corner_turn"))


@dataclass
class Table1Row:
    """One (application, array size, node count) cell of Table 1.0."""

    app_label: str
    app: str
    nodes: int
    size: int
    hand_ms: float
    sage_ms: float

    @property
    def pct_of_hand(self) -> float:
        """SAGE performance as a percentage of hand-coded (higher is better)."""
        return 100.0 * self.hand_ms / self.sage_ms

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.sage_ms / self.hand_ms - 1.0)


def run_table1(
    protocol: Protocol = QUICK_PROTOCOL,
    platform_name: str = "cspi",
    node_counts: Sequence[int] = NODE_COUNTS,
    sizes: Sequence[int] = ARRAY_SIZES,
    optimize_buffers: bool = False,
) -> List[Table1Row]:
    """Measure every cell of Table 1.0; returns rows in paper order."""
    platform = get_platform(platform_name)
    rows: List[Table1Row] = []
    for app_label, app in APPS:
        for nodes in node_counts:
            for size in sizes:
                hand = measure_hand(app, platform, nodes, size, protocol)
                sage = measure_sage(
                    app, platform, nodes, size, protocol,
                    optimize_buffers=optimize_buffers,
                )
                rows.append(
                    Table1Row(app_label, app, nodes, size,
                              hand.latency_ms, sage.latency_ms)
                )
    return rows


def averages(rows: Sequence[Table1Row]) -> Dict[str, float]:
    """Per-application and overall %-of-hand averages."""
    out: Dict[str, float] = {}
    for app_label, _app in APPS:
        cells = [r.pct_of_hand for r in rows if r.app_label == app_label]
        if cells:
            out[app_label] = statistics.fmean(cells)
    out["overall"] = statistics.fmean(r.pct_of_hand for r in rows)
    return out


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render the rows in the paper's layout."""
    lines = [
        "Table 1.0  Comparison of hand-coded and auto-generated code for CSPI",
        "",
        f"{'Application':<14s}{'Nodes':>6s}{'Array Size':>12s}"
        f"{'Hand (ms)':>12s}{'SAGE (ms)':>12s}{'% of Hand':>11s}",
        "-" * 67,
    ]
    last_app = None
    for r in rows:
        app = r.app_label if r.app_label != last_app else ""
        last_app = r.app_label
        lines.append(
            f"{app:<14s}{r.nodes:>6d}{f'{r.size} x {r.size}':>12s}"
            f"{r.hand_ms:>12.3f}{r.sage_ms:>12.3f}{r.pct_of_hand:>10.1f}%"
        )
    lines.append("-" * 67)
    for label, value in averages(rows).items():
        lines.append(f"{'Average ' + label + ':':<44s}{value:>21.1f}%")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="3 runs x 10 iterations instead of the full 10x100")
    parser.add_argument("--summary", action="store_true",
                        help="print only the averages (the §4 aggregate)")
    parser.add_argument("--optimized", action="store_true",
                        help="use the §4 optimised glue generator")
    parser.add_argument("--platform", default="cspi")
    args = parser.parse_args(argv)

    protocol = QUICK_PROTOCOL if args.quick else FULL_PROTOCOL
    rows = run_table1(protocol, platform_name=args.platform,
                      optimize_buffers=args.optimized)
    if args.summary:
        for label, value in averages(rows).items():
            print(f"{label}: {value:.1f}% of hand-coded")
    else:
        print(format_table1(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
