"""One-stop public API for the fault-injection and fault-tolerance subsystem.

The implementation spans three layers (deliberately — each layer owns the
failure modes it can observe):

* :mod:`repro.machine.faults` — the deterministic :class:`FaultPlan` /
  :class:`FaultInjector` that crash, hang, and *slow* nodes (gray
  failures), drop/degrade/jitter/flap links, and sample per-message
  loss/corruption from a seeded RNG;
* :mod:`repro.mpi` — receive/wait timeouts (:class:`MpiTimeoutError`),
  integrity checking (:class:`CorruptionError` / :class:`TruncationError`),
  :class:`RetryPolicy`-driven retransmission (:class:`DeliveryError`), the
  heartbeat :class:`FailureDetector`, and the ULFM-style failure semantics
  (:class:`ProcessFailedError`, :class:`RevokedError`, ``Communicator.
  revoke/agree/shrink``);
* :mod:`repro.core.runtime` — the :class:`FaultPolicy` governing how
  :class:`~repro.core.runtime.SageRuntime` responds: ``fail_fast``,
  ``retry``, ``checkpoint_restart``, ``shrink_restripe``, or
  ``grow_restripe`` (shrink + re-absorb replacement capacity; see
  ``docs/ELASTICITY.md``).

The full error taxonomy is documented in ``docs/FAULTS.md``; the detector
and shrinking recovery in ``docs/DETECTION.md``.

Typical use::

    from repro.faults import FaultPlan, FaultPolicy

    plan = FaultPlan(seed=7).crash_node(2, at=0.005, permanent=True)
    cluster = SimCluster.from_platform(env, platform, fault_plan=plan)
    rt = SageRuntime(glue, cluster,
                     fault_policy=FaultPolicy.shrink_restripe())
"""

from .core.runtime.kernel import RECOVERABLE_FAULTS
from .core.runtime.policy import FAIL_FAST, POLICY_MODES, FaultPolicy, TransportError
from .machine.faults import (
    CORRUPTED,
    DELIVERED,
    LOST,
    FaultError,
    FaultInjector,
    FaultPlan,
    LinkDegrade,
    LinkDrop,
    LinkFailure,
    LinkFlap,
    LinkJitter,
    NodeCrash,
    NodeFailure,
    NodeHang,
    NodeJoin,
    NodeSlow,
    TransientError,
)
from .machine.interconnect import TransferOutcome
from .mpi.comm import RetryPolicy
from .mpi.detector import FailureDetector, HeartbeatConfig
from .mpi.errors import (
    CorruptionError,
    DeliveryError,
    MpiTimeoutError,
    ProcessFailedError,
    RevokedError,
    TruncationError,
)

__all__ = [
    # machine layer
    "FaultPlan",
    "FaultInjector",
    "NodeCrash",
    "NodeHang",
    "NodeJoin",
    "NodeSlow",
    "LinkDrop",
    "LinkDegrade",
    "LinkJitter",
    "LinkFlap",
    "FaultError",
    "NodeFailure",
    "LinkFailure",
    "TransientError",
    "TransferOutcome",
    "DELIVERED",
    "LOST",
    "CORRUPTED",
    # mpi layer
    "RetryPolicy",
    "MpiTimeoutError",
    "CorruptionError",
    "TruncationError",
    "DeliveryError",
    "ProcessFailedError",
    "RevokedError",
    "FailureDetector",
    "HeartbeatConfig",
    # runtime layer
    "FaultPolicy",
    "FAIL_FAST",
    "POLICY_MODES",
    "TransportError",
    "RECOVERABLE_FAULTS",
]
