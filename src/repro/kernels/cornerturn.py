"""Corner-turn (matrix transpose / data reorganisation) kernels.

The *corner turn* is the defining data-movement operation of embedded
signal processing: after processing a data cube along one dimension (e.g.
range), the cube must be re-laid-out so the next stage can process along
another (e.g. pulse).  Locally it is a blocked transpose; distributed, it is
the all-to-all exchange benchmarked in Table 1.0.

Functions here are the *local* pieces: tile extraction for the send side and
tile assembly for the receive side, plus a cache-blocked local transpose.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = [
    "local_transpose",
    "split_row_block",
    "extract_send_tiles",
    "assemble_received_tiles",
    "row_block_bounds",
]


def local_transpose(x: np.ndarray, block: int = 64) -> np.ndarray:
    """Cache-blocked transpose of a 2-D array (always returns a new array)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {x.shape}")
    if block <= 0:
        raise ValueError("block must be positive")
    rows, cols = x.shape
    out = np.empty((cols, rows), dtype=x.dtype)
    for r0 in range(0, rows, block):
        r1 = min(r0 + block, rows)
        for c0 in range(0, cols, block):
            c1 = min(c0 + block, cols)
            out[c0:c1, r0:r1] = x[r0:r1, c0:c1].T
    return out


def row_block_bounds(n: int, parts: int) -> List[tuple]:
    """(start, stop) row bounds dividing ``n`` rows into ``parts`` blocks.

    Blocks differ in size by at most one row (remainder spread over the
    leading blocks), matching SAGE's "divided evenly" striping rule.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if n < 0:
        raise ValueError("n must be non-negative")
    base, extra = divmod(n, parts)
    bounds = []
    start = 0
    for p in range(parts):
        stop = start + base + (1 if p < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def split_row_block(x: np.ndarray, parts: int) -> List[np.ndarray]:
    """Split a 2-D array into ``parts`` row blocks (views, no copies)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {x.shape}")
    return [x[a:b] for a, b in row_block_bounds(x.shape[0], parts)]


def extract_send_tiles(local_rows: np.ndarray, parts: int) -> List[np.ndarray]:
    """Column-partition this rank's row block into per-destination tiles.

    In a distributed corner turn of an ``n x n`` matrix over ``p`` ranks with
    row-block distribution, rank *s* holds rows ``[s*n/p, (s+1)*n/p)``.  The
    tile destined for rank *d* is the column slice ``[d*n/p, (d+1)*n/p)`` of
    that block, *pre-transposed* so the receiver can assemble contiguously.
    """
    local_rows = np.asarray(local_rows)
    if local_rows.ndim != 2:
        raise ValueError(f"expected 2-D array, got shape {local_rows.shape}")
    tiles = []
    for a, b in row_block_bounds(local_rows.shape[1], parts):
        tiles.append(np.ascontiguousarray(local_rows[:, a:b].T))
    return tiles


def assemble_received_tiles(tiles: Sequence[np.ndarray], n_cols_total: int) -> np.ndarray:
    """Concatenate pre-transposed tiles (one per source rank) column-wise.

    After the all-to-all, rank *d* holds, from each source *s*, the
    pre-transposed tile whose columns are the *rows* ``s`` owned.  Stacking
    them left-to-right in source order yields this rank's row block of the
    transposed matrix.
    """
    if not tiles:
        raise ValueError("no tiles to assemble")
    out = np.concatenate(list(tiles), axis=1)
    if out.shape[1] != n_cols_total:
        raise ValueError(
            f"assembled {out.shape[1]} columns, expected {n_cols_total}"
        )
    return np.ascontiguousarray(out)
