"""Fast Fourier transform kernels (ISSPL-style).

The CSPI benchmarks linked against the vendor's ISSPL math library; we supply
our own implementation: an iterative radix-2 decimation-in-time FFT,
vectorised across a batch dimension so that "FFT all rows of a matrix" — the
building block of the parallel 2D FFT — is a single call.  Results are
validated against ``numpy.fft`` in the test suite; ``numpy`` remains available
as a fast backend for large benchmark runs.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "bit_reverse_permutation",
    "fft",
    "ifft",
    "fft_rows",
    "ifft_rows",
    "fft2d",
    "ifft2d",
]


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation that bit-reverses ``log2(n)``-bit indices."""
    if n <= 0 or n & (n - 1):
        raise ValueError(f"n must be a positive power of two, got {n}")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def _fft_impl(x: np.ndarray, inverse: bool) -> np.ndarray:
    """Iterative radix-2 DIT FFT along the last axis of a 2-D array."""
    rows, n = x.shape
    if n & (n - 1):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    out = np.ascontiguousarray(x[:, bit_reverse_permutation(n)], dtype=np.complex128)
    sign = 1.0 if inverse else -1.0
    length = 2
    while length <= n:
        half = length // 2
        # Twiddle factors for this stage.
        w = np.exp(sign * 2j * math.pi * np.arange(half) / length)
        blocks = out.reshape(rows, n // length, length)
        even = blocks[:, :, :half]
        odd = blocks[:, :, half:] * w
        upper = even + odd
        lower = even - odd
        blocks[:, :, :half] = upper
        blocks[:, :, half:] = lower
        length *= 2
    if inverse:
        out /= n
    return out


def fft(x: np.ndarray) -> np.ndarray:
    """Complex FFT of a 1-D array (power-of-two length)."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"fft expects a 1-D array, got shape {x.shape}")
    return _fft_impl(x[np.newaxis, :], inverse=False)[0]


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse complex FFT of a 1-D array."""
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"ifft expects a 1-D array, got shape {x.shape}")
    return _fft_impl(x[np.newaxis, :], inverse=True)[0]


def fft_rows(x: np.ndarray, backend: str = "own") -> np.ndarray:
    """FFT every row of a 2-D array.

    ``backend='own'`` uses the radix-2 implementation above (the default, and
    what the correctness tests exercise); ``backend='numpy'`` delegates to
    ``numpy.fft.fft`` for speed in large benchmark sweeps — the modeled cost
    charged by the simulator is identical either way.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"fft_rows expects a 2-D array, got shape {x.shape}")
    if backend == "own":
        return _fft_impl(x, inverse=False)
    if backend == "numpy":
        return np.fft.fft(x, axis=1)
    raise ValueError(f"unknown backend {backend!r}")


def ifft_rows(x: np.ndarray, backend: str = "own") -> np.ndarray:
    """Inverse FFT of every row of a 2-D array."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"ifft_rows expects a 2-D array, got shape {x.shape}")
    if backend == "own":
        return _fft_impl(x, inverse=True)
    if backend == "numpy":
        return np.fft.ifft(x, axis=1)
    raise ValueError(f"unknown backend {backend!r}")


def fft2d(x: np.ndarray, backend: str = "own") -> np.ndarray:
    """Full 2-D FFT: row pass, transpose (corner turn), column-as-row pass.

    Mirrors the distributed algorithm's structure exactly so the single-node
    reference and the parallel version are the same arithmetic.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"fft2d expects a 2-D array, got shape {x.shape}")
    step1 = fft_rows(x, backend=backend)
    turned = np.ascontiguousarray(step1.T)
    step2 = fft_rows(turned, backend=backend)
    return np.ascontiguousarray(step2.T)


def ifft2d(x: np.ndarray, backend: str = "own") -> np.ndarray:
    """Inverse 2-D FFT (row pass, corner turn, column pass)."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"ifft2d expects a 2-D array, got shape {x.shape}")
    step1 = ifft_rows(x, backend=backend)
    turned = np.ascontiguousarray(step1.T)
    step2 = ifft_rows(turned, backend=backend)
    return np.ascontiguousarray(step2.T)
