"""Image-processing kernels (§1: "image processing, computer vision,
pattern recognition").

2-D convolution both direct and via the FFT (the crossover between them is
a classic HPC trade), plus the small filters an embedded vision chain
composes.  Validated against scipy in the tests.
"""

from __future__ import annotations


import numpy as np

from .fft import fft2d, ifft2d
from .signal import KernelInfo, register_kernel

__all__ = [
    "conv2d_direct",
    "conv2d_fft",
    "sobel_magnitude",
    "box_blur",
    "threshold_segment",
    "conv2d_fft_flops",
]


def conv2d_direct(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Circular 2-D convolution by direct summation (reference/small kernels)."""
    image, kernel = np.asarray(image), np.asarray(kernel)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("conv2d expects 2-D image and kernel")
    h, w = image.shape
    kh, kw = kernel.shape
    if kh > h or kw > w:
        raise ValueError(f"kernel {kernel.shape} larger than image {image.shape}")
    out = np.zeros((h, w), dtype=np.result_type(image, kernel, np.float64))
    for di in range(kh):
        for dj in range(kw):
            out += kernel[di, dj] * np.roll(np.roll(image, di, axis=0), dj, axis=1)
    return out


def conv2d_fft(image: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Circular 2-D convolution via the FFT (power-of-two images).

    ``out = IFFT2( FFT2(image) * FFT2(pad(kernel)) )`` — identical to
    :func:`conv2d_direct` up to rounding.
    """
    image, kernel = np.asarray(image), np.asarray(kernel)
    if image.ndim != 2 or kernel.ndim != 2:
        raise ValueError("conv2d expects 2-D image and kernel")
    h, w = image.shape
    kh, kw = kernel.shape
    if kh > h or kw > w:
        raise ValueError(f"kernel {kernel.shape} larger than image {image.shape}")
    padded = np.zeros((h, w), dtype=complex)
    padded[:kh, :kw] = kernel
    out = ifft2d(fft2d(image.astype(complex)) * fft2d(padded))
    if not (np.iscomplexobj(image) or np.iscomplexobj(kernel)):
        return out.real
    return out


def conv2d_fft_flops(n: int) -> float:
    """Flops of an n x n FFT convolution: 3 transforms + spectrum multiply."""
    if n <= 0 or n & (n - 1):
        raise ValueError("n must be a positive power of two")
    import math

    fft2 = 2 * n * 5 * n * math.log2(n)
    return 3 * fft2 + 6.0 * n * n


def sobel_magnitude(image: np.ndarray) -> np.ndarray:
    """Gradient magnitude via the Sobel operator (circular boundaries)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("sobel expects a 2-D image")
    gx_kernel = np.array([[1, 0, -1], [2, 0, -2], [1, 0, -1]], dtype=float)
    gy_kernel = gx_kernel.T
    gx = conv2d_direct(image, gx_kernel)
    gy = conv2d_direct(image, gy_kernel)
    return np.hypot(gx, gy)


def box_blur(image: np.ndarray, size: int = 3) -> np.ndarray:
    """Mean filter of odd ``size`` (circular boundaries)."""
    if size < 1 or size % 2 == 0:
        raise ValueError("size must be odd and >= 1")
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("box_blur expects a 2-D image")
    kernel = np.full((size, size), 1.0 / (size * size))
    return conv2d_direct(image, kernel)


def threshold_segment(image: np.ndarray, quantile: float = 0.9) -> np.ndarray:
    """Boolean mask of pixels above the given intensity quantile."""
    if not (0.0 < quantile < 1.0):
        raise ValueError("quantile must be in (0, 1)")
    image = np.asarray(image)
    return image > np.quantile(image, quantile)


register_kernel(
    KernelInfo(
        "conv2d",
        conv2d_fft,
        # per-element charge assuming an n x n image flattened to n^2 elems
        lambda n: 30.0 * n * (np.log2(n) / 2 if n > 1 else 0.0),
        "FFT-based 2-D convolution",
    )
)
register_kernel(
    KernelInfo("sobel", sobel_magnitude, lambda n: 24.0 * n, "Sobel gradient magnitude")
)
