"""Dense linear-algebra kernels for the ISSPL shelf.

Blocked matrix multiply and related primitives, each with the flop count the
performance model charges.  Validated against numpy in the tests.
"""

from __future__ import annotations


import numpy as np

from .signal import KernelInfo, register_kernel

__all__ = ["matmul", "matmul_blocked", "outer", "matvec", "cholesky_flops"]


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain matrix multiply with shape checking."""
    a, b = np.asarray(a), np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    return a @ b


def matmul_blocked(a: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Cache-blocked matrix multiply (identical result, tiled access)."""
    a, b = np.asarray(a), np.asarray(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("matmul expects 2-D operands")
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"inner dimensions differ: {a.shape} x {b.shape}")
    if block <= 0:
        raise ValueError("block must be positive")
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.result_type(a, b))
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            for l0 in range(0, k, block):
                l1 = min(l0 + block, k)
                out[i0:i1, j0:j1] += a[i0:i1, l0:l1] @ b[l0:l1, j0:j1]
    return out


def matvec(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix-vector product."""
    a, x = np.asarray(a), np.asarray(x)
    if a.ndim != 2 or x.ndim != 1 or a.shape[1] != x.shape[0]:
        raise ValueError(f"bad matvec shapes: {a.shape} x {x.shape}")
    return a @ x


def outer(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Outer product (covariance estimation building block)."""
    x, y = np.asarray(x), np.asarray(y)
    if x.ndim != 1 or y.ndim != 1:
        raise ValueError("outer expects 1-D operands")
    return np.outer(x, np.conj(y))


def cholesky_flops(n: int) -> float:
    """Flop count of an n x n Cholesky factorisation (n^3/3)."""
    if n <= 0:
        raise ValueError("n must be positive")
    return n**3 / 3.0


register_kernel(
    KernelInfo(
        "matmul",
        matmul,
        # n elements of output at ~2k flops each is not expressible from a
        # single size; charge per output element assuming square operands.
        lambda n: 2.0 * n * (n ** 0.5),
        "dense matrix multiply",
    )
)
register_kernel(KernelInfo("matvec", matvec, lambda n: 2.0 * n, "matrix-vector product"))
register_kernel(KernelInfo("outer", outer, lambda n: 6.0 * n, "outer product"))
