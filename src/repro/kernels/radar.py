"""Radar signal-processing kernels (the §1 application class).

Pulse compression, Doppler processing, and CFAR detection — the stages of
the "radar, signal and image processing" chains the paper's introduction
motivates, built from the FFT and vector primitives of this library.
Validated against direct/scipy computations in the tests.
"""

from __future__ import annotations

import math

import numpy as np

from .fft import fft, fft_rows, ifft
from .signal import KernelInfo, register_kernel, vmag2

__all__ = [
    "chirp_waveform",
    "pulse_compress",
    "pulse_compress_rows",
    "doppler_process",
    "cfar_threshold",
    "cfar_detect",
]


def chirp_waveform(n: int, bandwidth_frac: float = 0.5) -> np.ndarray:
    """A linear FM (chirp) pulse of ``n`` samples, unit amplitude.

    ``bandwidth_frac`` is the swept bandwidth as a fraction of the sample
    rate (0 < frac <= 1).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not (0 < bandwidth_frac <= 1):
        raise ValueError("bandwidth_frac must be in (0, 1]")
    t = np.arange(n) / n
    phase = math.pi * bandwidth_frac * n * t * t
    return np.exp(1j * phase).astype(np.complex128)


def pulse_compress(echo: np.ndarray, waveform: np.ndarray) -> np.ndarray:
    """Matched-filter pulse compression via the frequency domain.

    ``y = IFFT( FFT(echo) * conj(FFT(waveform)) )`` — circular correlation
    with the transmitted waveform.  Lengths must match (power of two).
    """
    echo, waveform = np.asarray(echo), np.asarray(waveform)
    if echo.shape != waveform.shape or echo.ndim != 1:
        raise ValueError(
            f"echo and waveform must be equal-length 1-D, got {echo.shape} vs "
            f"{waveform.shape}"
        )
    spectrum = fft(echo) * np.conj(fft(waveform))
    return ifft(spectrum)


def pulse_compress_rows(echoes: np.ndarray, waveform: np.ndarray) -> np.ndarray:
    """Pulse-compress every row (every pulse) of a 2-D data matrix."""
    echoes = np.asarray(echoes)
    if echoes.ndim != 2:
        raise ValueError("expected a pulses x range 2-D matrix")
    wf_spec = np.conj(fft(np.asarray(waveform)))
    spectra = fft_rows(echoes) * wf_spec[np.newaxis, :]
    # inverse via forward FFT of conjugate (avoids an ifft_rows dependency)
    out = np.conj(fft_rows(np.conj(spectra))) / echoes.shape[1]
    return out


def doppler_process(cpi: np.ndarray, window: np.ndarray = None) -> np.ndarray:
    """Doppler filter bank: windowed FFT along the pulse (first) axis.

    Input: pulses x range CPI matrix.  Output: doppler x range map.
    """
    cpi = np.asarray(cpi)
    if cpi.ndim != 2:
        raise ValueError("expected a pulses x range 2-D matrix")
    data = cpi
    if window is not None:
        window = np.asarray(window)
        if window.shape[0] != cpi.shape[0]:
            raise ValueError("window length must equal the pulse count")
        data = cpi * window[:, np.newaxis]
    return np.ascontiguousarray(fft_rows(np.ascontiguousarray(data.T)).T)


def cfar_threshold(power: np.ndarray, guard: int = 2, train: int = 8,
                   scale: float = 10.0) -> np.ndarray:
    """Cell-averaging CFAR threshold along the last axis.

    For each cell, the threshold is ``scale`` times the mean of the
    ``train`` cells on each side, excluding ``guard`` cells adjacent to the
    cell under test.  Edges use the available cells only.
    """
    power = np.asarray(power, dtype=np.float64)
    if guard < 0 or train <= 0:
        raise ValueError("guard must be >= 0 and train > 0")
    n = power.shape[-1]
    out = np.empty_like(power)
    flat = power.reshape(-1, n)
    thr = out.reshape(-1, n)
    for row in range(flat.shape[0]):
        p = flat[row]
        csum = np.concatenate([[0.0], np.cumsum(p)])

        def window_sum(a: int, b: int) -> float:
            a, b = max(0, a), min(n, b)
            if b <= a:
                return 0.0
            return csum[b] - csum[a]

        for i in range(n):
            left = window_sum(i - guard - train, i - guard)
            right = window_sum(i + guard + 1, i + guard + 1 + train)
            left_n = min(train, max(0, i - guard))
            right_n = min(train, max(0, n - (i + guard + 1)))
            count = left_n + right_n
            noise = (left + right) / count if count else np.inf
            thr[row, i] = scale * noise
    return out


def cfar_detect(cells: np.ndarray, guard: int = 2, train: int = 8,
                scale: float = 10.0) -> np.ndarray:
    """Boolean detection map: squared magnitude above the CA-CFAR threshold."""
    power = vmag2(np.asarray(cells))
    return power > cfar_threshold(power, guard=guard, train=train, scale=scale)


register_kernel(
    KernelInfo(
        "pulse_compress",
        pulse_compress_rows,
        lambda n: 15.0 * n * (math.log2(n) if n > 1 else 0.0),
        "matched-filter pulse compression per row",
    )
)
register_kernel(
    KernelInfo(
        "cfar",
        cfar_detect,
        lambda n: 8.0 * n,
        "cell-averaging CFAR detection",
    )
)
