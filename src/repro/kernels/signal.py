"""ISSPL-style signal processing primitives.

The CSPI port of SAGE captured "the ISSPL function libraries on to the
appropriate shelves" (§3.2).  This module supplies the shelf contents: the
vector/window/filter primitives a radar or image chain composes, each with a
flop count used by the performance model.  Every function is a pure numpy
computation validated against scipy in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

__all__ = [
    "vadd",
    "vmul",
    "vsmul",
    "vmag2",
    "dot",
    "fir_filter",
    "hanning_window",
    "hamming_window",
    "blackman_window",
    "apply_window",
    "magnitude_db",
    "KernelInfo",
    "KERNEL_REGISTRY",
    "register_kernel",
    "get_kernel",
]


def vadd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise vector add."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a + b


def vmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise vector multiply."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a * b


def vsmul(a: np.ndarray, s: complex) -> np.ndarray:
    """Vector-scalar multiply."""
    return np.asarray(a) * s


def vmag2(a: np.ndarray) -> np.ndarray:
    """Elementwise squared magnitude (detection)."""
    a = np.asarray(a)
    return (a * np.conj(a)).real


def dot(a: np.ndarray, b: np.ndarray) -> complex:
    """Inner product."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return complex(np.dot(np.conj(a), b))


def fir_filter(x: np.ndarray, taps: np.ndarray) -> np.ndarray:
    """Direct-form FIR filter, 'same' alignment with zero history.

    Output ``y[i] = sum_k taps[k] * x[i-k]`` (x treated as zero for i-k < 0),
    matching ``scipy.signal.lfilter(taps, 1, x)``.
    """
    x, taps = np.asarray(x, dtype=np.complex128), np.asarray(taps, dtype=np.complex128)
    if x.ndim != 1 or taps.ndim != 1:
        raise ValueError("fir_filter expects 1-D signal and taps")
    if taps.size == 0:
        raise ValueError("taps must be non-empty")
    full = np.convolve(x, taps)
    return full[: x.size]


def hanning_window(n: int) -> np.ndarray:
    """Periodic-symmetric Hann window of length n (matches numpy.hanning)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.5 - 0.5 * np.cos(2 * math.pi * k / (n - 1))


def hamming_window(n: int) -> np.ndarray:
    """Hamming window of length n (matches numpy.hamming)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    return 0.54 - 0.46 * np.cos(2 * math.pi * k / (n - 1))


def blackman_window(n: int) -> np.ndarray:
    """Blackman window of length n (matches numpy.blackman)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return np.ones(1)
    k = np.arange(n)
    t = 2 * math.pi * k / (n - 1)
    return 0.42 - 0.5 * np.cos(t) + 0.08 * np.cos(2 * t)


def apply_window(x: np.ndarray, window: np.ndarray) -> np.ndarray:
    """Apply a window along the last axis (broadcasts over leading axes)."""
    x, window = np.asarray(x), np.asarray(window)
    if x.shape[-1] != window.shape[0]:
        raise ValueError(
            f"window length {window.shape[0]} != signal length {x.shape[-1]}"
        )
    return x * window


def magnitude_db(x: np.ndarray, floor_db: float = -300.0) -> np.ndarray:
    """20*log10(|x|) with a numerical floor."""
    mag = np.abs(np.asarray(x))
    floor = 10.0 ** (floor_db / 20.0)
    return 20.0 * np.log10(np.maximum(mag, floor))


# ---------------------------------------------------------------------------
# Kernel registry: the "software shelf" contents the glue code binds against.
# Each entry carries a flop-count model consumed by the run-time.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KernelInfo:
    """A shelf entry: callable plus its analytic flop count.

    ``flops(total_elems)`` maps the number of elements processed to real
    floating-point operations for the performance model.
    """

    name: str
    fn: Callable
    flops: Callable[[int], float]
    description: str = ""


KERNEL_REGISTRY: Dict[str, KernelInfo] = {}


def register_kernel(info: KernelInfo) -> KernelInfo:
    """Add a kernel to the shelf; name collisions are an error."""
    if info.name in KERNEL_REGISTRY:
        raise ValueError(f"kernel {info.name!r} already registered")
    KERNEL_REGISTRY[info.name] = info
    return info


def get_kernel(name: str) -> KernelInfo:
    try:
        return KERNEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; shelf has: {sorted(KERNEL_REGISTRY)}"
        ) from None


def _log2(n: int) -> float:
    return math.log2(n) if n > 1 else 0.0


register_kernel(KernelInfo("vadd", vadd, lambda n: 2.0 * n, "complex vector add"))
register_kernel(KernelInfo("vmul", vmul, lambda n: 6.0 * n, "complex vector multiply"))
register_kernel(KernelInfo("vsmul", vsmul, lambda n: 6.0 * n, "vector-scalar multiply"))
register_kernel(KernelInfo("vmag2", vmag2, lambda n: 3.0 * n, "squared magnitude"))
register_kernel(
    KernelInfo("apply_window", apply_window, lambda n: 6.0 * n, "window multiply")
)
register_kernel(
    KernelInfo(
        "fft_row",
        None,  # bound by the runtime to kernels.fft.fft_rows
        lambda n: 5.0 * n * _log2(n),
        "per-row complex FFT (flops per row of length n)",
    )
)
