"""Simulated hardware substrate: discrete-event engine, nodes, fabrics, platforms."""

from .simulator import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Resource,
    SimulationError,
    Store,
    Timeout,
)
from .node import CpuSpec, SimNode
from .interconnect import Fabric, FabricSpec, LinkSpec, TransferOutcome
from .cluster import SimCluster
from .faults import (
    FaultError,
    FaultInjector,
    FaultPlan,
    LinkFailure,
    NodeFailure,
    TransientError,
)
from .platforms import PLATFORMS, PlatformSpec, cspi, get_platform, mercury, sigi, sky
from . import perfmodel

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "CpuSpec",
    "SimNode",
    "Fabric",
    "FabricSpec",
    "LinkSpec",
    "TransferOutcome",
    "SimCluster",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "LinkFailure",
    "NodeFailure",
    "TransientError",
    "PLATFORMS",
    "PlatformSpec",
    "cspi",
    "mercury",
    "sigi",
    "sky",
    "get_platform",
    "perfmodel",
]
