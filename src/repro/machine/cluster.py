"""Simulated cluster: nodes + fabric bound to one simulation environment.

A :class:`SimCluster` is the substrate everything above it runs on.  It can be
built directly from a :class:`~repro.machine.platforms.PlatformSpec` (the
common path for the paper's experiments) or from a SAGE hardware model
(:func:`repro.core.model.hardware.build_cluster`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .faults import FaultInjector, FaultPlan
from .interconnect import Fabric, FabricSpec
from .node import CpuSpec, SimNode
from .platforms import PlatformSpec
from .simulator import Environment

__all__ = ["SimCluster"]


class SimCluster:
    """``nodes`` simulated processors over a shared fabric.

    ``cpu`` may be a single :class:`CpuSpec` (homogeneous machine, the
    common case) or a sequence of per-node specs (heterogeneous machine —
    AToT's mapping objectives account for the differing node speeds).
    """

    def __init__(
        self,
        env: Environment,
        cpu: Union[CpuSpec, Sequence[CpuSpec]],
        fabric_spec: FabricSpec,
        nodes: int,
        board_map: Optional[Dict[int, int]] = None,
        name: str = "cluster",
        fault_plan: Optional[FaultPlan] = None,
    ):
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        self.env = env
        self.name = name
        boards = board_map or {i: 0 for i in range(nodes)}
        missing = set(range(nodes)) - set(boards)
        if missing:
            raise ValueError(f"board_map missing node indices: {sorted(missing)}")
        if isinstance(cpu, CpuSpec):
            specs: List[CpuSpec] = [cpu] * nodes
        else:
            specs = list(cpu)
            if len(specs) != nodes:
                raise ValueError(
                    f"{len(specs)} CPU specs supplied for a {nodes}-node cluster"
                )
        self.nodes: List[SimNode] = [
            SimNode(index=i, spec=specs[i], env=env, board=boards[i])
            for i in range(nodes)
        ]
        self.fabric = Fabric(env, fabric_spec, boards)
        self.faults: Optional[FaultInjector] = None
        if fault_plan is not None and not fault_plan.is_empty:
            FaultInjector(env, fault_plan).install(self)

    @property
    def is_heterogeneous(self) -> bool:
        first = self.nodes[0].spec
        return any(node.spec != first for node in self.nodes)

    @classmethod
    def from_platform(
        cls, env: Environment, platform: PlatformSpec, nodes: int,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "SimCluster":
        return cls(
            env=env,
            cpu=platform.cpu,
            fabric_spec=platform.fabric,
            nodes=nodes,
            board_map=platform.board_map(nodes),
            name=platform.name,
            fault_plan=fault_plan,
        )

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, index: int) -> SimNode:
        try:
            return self.nodes[index]
        except IndexError:
            raise IndexError(
                f"node index {index} out of range for {len(self.nodes)}-node cluster"
            ) from None

    def transfer(self, src: int, dst: int, nbytes: float):
        """Generator: fabric transfer between two node indices.

        Returns the fabric's :class:`~repro.machine.interconnect.TransferOutcome`
        (always a clean delivery unless a fault plan is installed).
        """
        outcome = yield from self.fabric.transfer(src, dst, nbytes)
        return outcome
