"""Simulated cluster: nodes + fabric bound to one simulation environment.

A :class:`SimCluster` is the substrate everything above it runs on.  It can be
built directly from a :class:`~repro.machine.platforms.PlatformSpec` (the
common path for the paper's experiments) or from a SAGE hardware model
(:func:`repro.core.model.hardware.build_cluster`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .faults import FaultInjector, FaultPlan
from .interconnect import Fabric, FabricSpec
from .node import CpuSpec, SimNode
from .platforms import PlatformSpec
from .simulator import Environment

__all__ = ["SimCluster"]


class SimCluster:
    """``nodes`` simulated processors over a shared fabric.

    ``cpu`` may be a single :class:`CpuSpec` (homogeneous machine, the
    common case) or a sequence of per-node specs (heterogeneous machine —
    AToT's mapping objectives account for the differing node speeds).
    """

    def __init__(
        self,
        env: Environment,
        cpu: Union[CpuSpec, Sequence[CpuSpec]],
        fabric_spec: FabricSpec,
        nodes: int,
        board_map: Optional[Dict[int, int]] = None,
        name: str = "cluster",
        fault_plan: Optional[FaultPlan] = None,
    ):
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        self.env = env
        self.name = name
        boards = board_map or {i: 0 for i in range(nodes)}
        missing = set(range(nodes)) - set(boards)
        if missing:
            raise ValueError(f"board_map missing node indices: {sorted(missing)}")
        if isinstance(cpu, CpuSpec):
            specs: List[CpuSpec] = [cpu] * nodes
        else:
            specs = list(cpu)
            if len(specs) != nodes:
                raise ValueError(
                    f"{len(specs)} CPU specs supplied for a {nodes}-node cluster"
                )
        self.nodes: List[SimNode] = [
            SimNode(index=i, spec=specs[i], env=env, board=boards[i])
            for i in range(nodes)
        ]
        self.fabric = Fabric(env, fabric_spec, boards)
        self.faults: Optional[FaultInjector] = None
        if fault_plan is not None and not fault_plan.is_empty:
            FaultInjector(env, fault_plan).install(self)

    @property
    def is_heterogeneous(self) -> bool:
        first = self.nodes[0].spec
        return any(node.spec != first for node in self.nodes)

    @classmethod
    def from_platform(
        cls, env: Environment, platform: PlatformSpec, nodes: int,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "SimCluster":
        return cls(
            env=env,
            cpu=platform.cpu,
            fabric_spec=platform.fabric,
            nodes=nodes,
            board_map=platform.board_map(nodes),
            name=platform.name,
            fault_plan=fault_plan,
        )

    def __len__(self) -> int:
        return len(self.nodes)

    # -- elastic membership ---------------------------------------------
    def add_node(
        self,
        index: Optional[int] = None,
        spec: Optional[CpuSpec] = None,
        board: Optional[int] = None,
    ) -> SimNode:
        """Bring a node online: new capacity, or replacement hardware.

        With ``index`` beyond the current size (or omitted), a brand-new node
        is appended; ``board`` defaults to a fresh board of its own, the
        conservative choice for a card slotted into a spare chassis slot.
        With an existing ``index``, the slot is treated as *replaced*: the
        node object is reset to power-on state (idle CPU, zero allocations)
        and its NIC ports are recreated, so stale holders from the previous
        occupant cannot leak into the new one.  The node index is the node's
        identity at every layer above, so replacement hardware at the same
        index inherits the board slot (same locality) but nothing else.
        """
        if index is None:
            index = len(self.nodes)
        if index < 0:
            raise ValueError("node index must be non-negative")
        if index < len(self.nodes):
            node = self.nodes[index]
            if spec is not None and spec != node.spec:
                node.spec = spec
            node.reset()
            self.fabric.detach_node(index)
            board = self.fabric.boards.get(index, 0) if board is None else board
            self.fabric.attach_node(index, board)
            node.faults = self.faults
            return node
        if index != len(self.nodes):
            raise ValueError(
                f"node index {index} would leave a gap in a "
                f"{len(self.nodes)}-node cluster"
            )
        if spec is None:
            spec = self.nodes[0].spec
        if board is None:
            board = max(self.fabric.boards.values(), default=-1) + 1
        node = SimNode(index=index, spec=spec, env=self.env, board=board)
        node.faults = self.faults
        self.nodes.append(node)
        self.fabric.attach_node(index, board)
        return node

    def remove_node(self, index: int) -> int:
        """Take a node's hardware out of the machine (e.g. a pulled board).

        The index stays valid — node identity is positional — but the slot's
        CPU resource and NIC ports are forcibly reset so that stranded holders
        from work interrupted mid-transfer do not survive into replacement
        hardware added later at the same index.  Returns the number of
        stranded resource slots/queued requests that were dropped.
        """
        node = self.node(index)
        dropped = node.reset()
        dropped += self.fabric.detach_node(index)
        # Board registration survives: a re-added node at this index slots
        # back into the same chassis position unless add_node overrides it.
        return dropped

    # -- slot leasing (service layer) -----------------------------------
    def acquire_slot(self, index: int) -> None:
        """Hold the node's CPU slot on behalf of a lease.

        The service's :class:`~repro.service.scheduler.ClusterScheduler`
        accounts leases through the same :class:`Resource` that serialises
        simulated work, so the chaos leak checks (every slot back to zero,
        nobody queued) apply to the service unchanged.  A lease must only
        ever take a *free* slot — double-leasing a node is a scheduler bug
        and raises instead of queueing.
        """
        node = self.node(index)
        if node.cpu.count >= node.cpu.capacity:
            raise ValueError(
                f"node {index} CPU slot already held; leases must be disjoint"
            )
        node.cpu.request()  # free slot: grants synchronously

    def release_slot(self, index: int) -> None:
        """Return a leased node's CPU slot to the free state."""
        self.node(index).cpu.release()

    def slot_census(self) -> Dict[int, int]:
        """Held-slot count per node index, for leak assertions (a clean
        service leaves this all-zero)."""
        return {node.index: node.cpu.count for node in self.nodes}

    def node(self, index: int) -> SimNode:
        try:
            return self.nodes[index]
        except IndexError:
            raise IndexError(
                f"node index {index} out of range for {len(self.nodes)}-node cluster"
            ) from None

    def transfer(self, src: int, dst: int, nbytes: float):
        """Generator: fabric transfer between two node indices.

        Returns the fabric's :class:`~repro.machine.interconnect.TransferOutcome`
        (always a clean delivery unless a fault plan is installed).
        """
        outcome = yield from self.fabric.transfer(src, dst, nbytes)
        return outcome
