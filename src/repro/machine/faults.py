"""Deterministic fault injection for the simulated machine.

The paper's target systems — VxWorks signal processors on embedded fabrics —
treat node and fabric failures as first-class design concerns.  This module
lets a simulation declare the faults a deployment would have to survive:

* **Node crash** — the processor dies at virtual time *t*; every subsequent
  (or in-progress) operation charged to it raises :class:`NodeFailure`.
  Crashes are revivable by a recovery layer (modelling a process restart)
  unless declared ``permanent``.
* **Node hang** — the processor freezes for a duration: its CPU resource is
  held, so all work charged to it stalls and then resumes (transient).
* **Link drop** — the (undirected) link between two nodes goes down, either
  forever or for a duration; transfers over it raise :class:`LinkFailure`.
* **Link degradation** — the link's bandwidth is multiplied by a factor in
  (0, 1]; transfers complete but slower (degraded mode).
* **Message loss / corruption** — each fabric transfer is independently
  lost or corrupted with a configured probability, drawn from a seeded RNG.
* **Node slowdown** — a *gray* failure: the processor keeps answering but
  its CPU runs at a fraction of nominal rate (a "limping" node, distinct
  from a binary hang).  Liveness checks pass; only progress measurement
  notices.
* **Link jitter** — each transfer over the link pays extra latency drawn
  from a seeded exponential distribution (mean ``sigma``); the link is up,
  just noisy.
* **Link flap** — seeded degrade/restore cycles: the link alternates
  between degraded (or fully down, ``factor=0``) and healthy every half
  ``period`` for ``cycles`` cycles.

Determinism
-----------
A :class:`FaultPlan` is pure data plus a seed.  Scheduled faults fire at
exact virtual times through the simulator's totally-ordered event queue, and
probabilistic draws happen in simulation event order from a private
``random.Random(seed)`` — so two runs of the same plan on the same workload
produce bit-identical timelines, traces, and reports.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from .simulator import Environment

__all__ = [
    "FaultError",
    "NodeFailure",
    "LinkFailure",
    "TransientError",
    "NodeCrash",
    "NodeHang",
    "NodeJoin",
    "NodeSlow",
    "LinkDrop",
    "LinkDegrade",
    "LinkJitter",
    "LinkFlap",
    "FaultPlan",
    "FaultInjector",
    "DELIVERED",
    "LOST",
    "CORRUPTED",
]

#: Delivery verdicts returned by :meth:`FaultInjector.sample_delivery`.
DELIVERED = "delivered"
LOST = "lost"
CORRUPTED = "corrupted"


class FaultError(RuntimeError):
    """Base class for injected-fault failures."""


class NodeFailure(FaultError):
    """An operation touched a crashed node."""

    def __init__(self, node: int, failed_at: float, observed_at: float):
        super().__init__(
            f"node {node} crashed at t={failed_at:.6f} "
            f"(observed at t={observed_at:.6f})"
        )
        self.node = node
        self.failed_at = failed_at
        self.observed_at = observed_at


class LinkFailure(FaultError):
    """A transfer was attempted over a downed link."""

    def __init__(self, src: int, dst: int, down_since: float, observed_at: float):
        super().__init__(
            f"link {src}<->{dst} down since t={down_since:.6f} "
            f"(observed at t={observed_at:.6f})"
        )
        self.src = src
        self.dst = dst
        self.down_since = down_since
        self.observed_at = observed_at


class TransientError(FaultError):
    """A recoverable, retry-worthy failure (e.g. a flaky kernel invocation)."""


def _check_time(at: float) -> float:
    if at < 0:
        raise ValueError(f"fault time must be non-negative, got {at!r}")
    return float(at)


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` dies at time ``at``; revivable unless ``permanent``."""

    node: int
    at: float
    permanent: bool = False

    def __post_init__(self):
        _check_time(self.at)


@dataclass(frozen=True)
class NodeHang:
    """Node ``node`` freezes at ``at`` for ``duration`` seconds."""

    node: int
    at: float
    duration: float

    def __post_init__(self):
        _check_time(self.at)
        if self.duration <= 0:
            raise ValueError("hang duration must be positive")


@dataclass(frozen=True)
class NodeJoin:
    """Node ``node`` becomes available at ``at``.

    Two cases, distinguished by the state of the index when the event fires:
    an index holding a (permanently) crashed node models *replacement
    hardware* slotted into the same chassis position — the old occupant's
    fault state is discharged and the node resets to power-on state; an index
    beyond the current cluster size models brand-new capacity.  Either way the
    hardware merely becomes reachable: admission into the running application
    is the membership protocol's job (see ``FailureDetector.request_join``).
    """

    node: int
    at: float

    def __post_init__(self):
        _check_time(self.at)


@dataclass(frozen=True)
class NodeSlow:
    """Node ``node`` limps at ``factor`` × nominal CPU rate from ``at``.

    A gray failure: the node still heartbeats, acks, and completes work —
    just slowly.  ``duration=None`` means the slowdown is sustained until
    the node is replaced (or the run ends); otherwise it recovers after
    ``duration`` seconds.  Operations *in flight* when the slowdown starts
    complete at their original rate (the modelled cost was already
    committed to the event queue); everything dispatched afterwards pays.
    """

    node: int
    at: float
    factor: float
    duration: Optional[float] = None

    def __post_init__(self):
        _check_time(self.at)
        if not (0 < self.factor <= 1):
            raise ValueError("slow factor must be in (0, 1]")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("slow duration must be positive or None")


@dataclass(frozen=True)
class LinkDrop:
    """The ``a``–``b`` link goes down at ``at`` (forever if duration None)."""

    a: int
    b: int
    at: float
    duration: Optional[float] = None

    def __post_init__(self):
        _check_time(self.at)
        if self.duration is not None and self.duration <= 0:
            raise ValueError("drop duration must be positive or None")


@dataclass(frozen=True)
class LinkDegrade:
    """The ``a``–``b`` link's bandwidth is multiplied by ``factor``."""

    a: int
    b: int
    at: float
    factor: float
    duration: Optional[float] = None

    def __post_init__(self):
        _check_time(self.at)
        if not (0 < self.factor <= 1):
            raise ValueError("degrade factor must be in (0, 1]")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("degrade duration must be positive or None")


@dataclass(frozen=True)
class LinkJitter:
    """Transfers over ``a``–``b`` pay extra seeded latency (mean ``sigma``).

    Each transfer draws an exponential extra delay with mean ``sigma``
    seconds from the injector's gray-failure RNG — a separate stream from
    the loss/corruption RNG, so arming jitter never perturbs the delivery
    draws of an existing plan.
    """

    a: int
    b: int
    at: float
    sigma: float
    duration: Optional[float] = None

    def __post_init__(self):
        _check_time(self.at)
        if self.sigma <= 0:
            raise ValueError("jitter sigma must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("jitter duration must be positive or None")


@dataclass(frozen=True)
class LinkFlap:
    """The ``a``–``b`` link flaps: degraded/healthy cycles from ``at``.

    Each cycle lasts ``period`` seconds: down-phase first (bandwidth ×
    ``factor``; ``factor=0`` means fully down) for half the period, then
    healthy for the other half, repeated ``cycles`` times.
    """

    a: int
    b: int
    at: float
    period: float
    factor: float = 0.0
    cycles: int = 3

    def __post_init__(self):
        _check_time(self.at)
        if self.period <= 0:
            raise ValueError("flap period must be positive")
        if not (0 <= self.factor <= 1):
            raise ValueError("flap factor must be in [0, 1]")
        if self.cycles < 1:
            raise ValueError("flap cycles must be >= 1")


class FaultPlan:
    """A seeded, declarative schedule of faults to inject into one run.

    Builder methods chain::

        plan = (FaultPlan(seed=7)
                .crash_node(2, at=0.5)
                .degrade_link(0, 1, at=0.0, factor=0.25)
                .message_loss(0.05))
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self.events: List[Any] = []
        self.loss_rate: float = 0.0
        self.corruption_rate: float = 0.0

    # -- builders --------------------------------------------------------
    def crash_node(self, node: int, at: float, permanent: bool = False) -> "FaultPlan":
        self.events.append(NodeCrash(node, at, permanent))
        return self

    def hang_node(self, node: int, at: float, duration: float) -> "FaultPlan":
        self.events.append(NodeHang(node, at, duration))
        return self

    def join_node(self, node: int, at: float) -> "FaultPlan":
        """Replacement/new hardware at ``node`` powers on at time ``at``."""
        self.events.append(NodeJoin(node, at))
        return self

    def slow_node(self, node: int, at: float, factor: float,
                  duration: Optional[float] = None) -> "FaultPlan":
        """Node limps at ``factor`` × nominal CPU rate (gray failure)."""
        self.events.append(NodeSlow(node, at, factor, duration))
        return self

    def drop_link(self, a: int, b: int, at: float,
                  duration: Optional[float] = None) -> "FaultPlan":
        self.events.append(LinkDrop(a, b, at, duration))
        return self

    def jitter_link(self, a: int, b: int, at: float, sigma: float,
                    duration: Optional[float] = None) -> "FaultPlan":
        """Seeded exponential extra latency (mean ``sigma``) per transfer."""
        self.events.append(LinkJitter(a, b, at, sigma, duration))
        return self

    def flap_link(self, a: int, b: int, at: float, period: float,
                  factor: float = 0.0, cycles: int = 3) -> "FaultPlan":
        """Degrade/restore cycles every half ``period``, ``cycles`` times."""
        self.events.append(LinkFlap(a, b, at, period, factor, cycles))
        return self

    def degrade_link(self, a: int, b: int, at: float, factor: float,
                     duration: Optional[float] = None) -> "FaultPlan":
        self.events.append(LinkDegrade(a, b, at, factor, duration))
        return self

    def message_loss(self, rate: float) -> "FaultPlan":
        if not (0 <= rate < 1):
            raise ValueError("loss rate must be in [0, 1)")
        self.loss_rate = float(rate)
        return self

    def message_corruption(self, rate: float) -> "FaultPlan":
        if not (0 <= rate < 1):
            raise ValueError("corruption rate must be in [0, 1)")
        self.corruption_rate = float(rate)
        return self

    @property
    def is_empty(self) -> bool:
        return not self.events and not self.loss_rate and not self.corruption_rate

    def describe(self) -> str:
        parts = [type(e).__name__ for e in self.events]
        if self.loss_rate:
            parts.append(f"loss={self.loss_rate:g}")
        if self.corruption_rate:
            parts.append(f"corrupt={self.corruption_rate:g}")
        return f"FaultPlan(seed={self.seed}, {', '.join(parts) or 'empty'})"


def _link_key(a: int, b: int) -> Tuple[int, int]:
    """Links are undirected: both directions share fault state."""
    return (a, b) if a <= b else (b, a)


class FaultInjector:
    """Live fault state for one simulation, driven by a :class:`FaultPlan`.

    The cluster installs the injector; nodes and the fabric then consult it
    on every operation.  ``log`` records every applied fault (and every
    sampled loss/corruption) as ``(time, kind, detail)`` tuples, and
    listeners subscribed via :meth:`subscribe` are called synchronously —
    the runtime uses this to emit ``fault_injected`` trace probes.
    """

    def __init__(self, env: Environment, plan: FaultPlan):
        self.env = env
        self.plan = plan
        self._rng = random.Random(plan.seed)
        # Gray-failure draws (jitter) come from a *separate* seeded stream
        # so arming them never perturbs the loss/corruption draw order of
        # an existing plan (golden traces stay byte-identical).
        self._gray_rng = random.Random(plan.seed ^ 0x9E3779B9)
        self._dead: dict = {}        # node -> (failed_at, permanent)
        self._down: dict = {}        # link key -> down_since
        self._degrade: dict = {}     # link key -> factor
        self._slow: dict = {}        # node -> cpu factor
        self._jitter: dict = {}      # link key -> mean extra latency (s)
        self.log: List[Tuple[float, str, str]] = []
        self._listeners: List[Callable[[float, str, str, int], None]] = []
        self.cluster = None
        #: Node indices whose NodeJoin events have fired, in event order.
        self.joined: List[int] = []

    # -- wiring ----------------------------------------------------------
    def install(self, cluster) -> None:
        """Bind to a cluster and start the fault schedule."""
        self.cluster = cluster
        cluster.faults = self
        cluster.fabric.faults = self
        for node in cluster.nodes:
            node.faults = self
        actions = []
        for order, ev in enumerate(self.plan.events):
            if isinstance(ev, NodeCrash):
                actions.append((ev.at, order, lambda e=ev: self._apply_crash(e)))
            elif isinstance(ev, NodeHang):
                actions.append((ev.at, order, lambda e=ev: self._apply_hang(e)))
            elif isinstance(ev, NodeJoin):
                actions.append((ev.at, order, lambda e=ev: self._apply_join(e)))
            elif isinstance(ev, LinkDrop):
                actions.append((ev.at, order, lambda e=ev: self._apply_drop(e)))
                if ev.duration is not None:
                    actions.append(
                        (ev.at + ev.duration, order,
                         lambda e=ev: self._clear_drop(e))
                    )
            elif isinstance(ev, LinkDegrade):
                actions.append((ev.at, order, lambda e=ev: self._apply_degrade(e)))
                if ev.duration is not None:
                    actions.append(
                        (ev.at + ev.duration, order,
                         lambda e=ev: self._clear_degrade(e))
                    )
            elif isinstance(ev, NodeSlow):
                actions.append((ev.at, order, lambda e=ev: self._apply_slow(e)))
                if ev.duration is not None:
                    actions.append(
                        (ev.at + ev.duration, order,
                         lambda e=ev: self._clear_slow(e))
                    )
            elif isinstance(ev, LinkJitter):
                actions.append((ev.at, order, lambda e=ev: self._apply_jitter(e)))
                if ev.duration is not None:
                    actions.append(
                        (ev.at + ev.duration, order,
                         lambda e=ev: self._clear_jitter(e))
                    )
            elif isinstance(ev, LinkFlap):
                half = ev.period / 2.0
                for cycle in range(ev.cycles):
                    start = ev.at + cycle * ev.period
                    actions.append(
                        (start, order,
                         lambda e=ev, c=cycle: self._apply_flap_down(e, c))
                    )
                    actions.append(
                        (start + half, order,
                         lambda e=ev, c=cycle: self._apply_flap_up(e, c))
                    )
            else:  # pragma: no cover - plan builders prevent this
                raise TypeError(f"unknown fault event {ev!r}")
        if actions:
            actions.sort(key=lambda a: (a[0], a[1]))
            self.env.process(self._run_schedule(actions), name="fault-injector")

    def subscribe(self, fn: Callable[[float, str, str, int], None]) -> None:
        """``fn(time, kind, detail, node)`` is called for every applied fault."""
        self._listeners.append(fn)

    def _record(self, kind: str, detail: str, node: int = -1) -> None:
        now = self.env.now
        self.log.append((now, kind, detail))
        for fn in self._listeners:
            fn(now, kind, detail, node)

    # -- schedule execution ----------------------------------------------
    def _run_schedule(self, actions):
        for at, _order, fn in actions:
            if at > self.env.now:
                yield self.env.timeout(at - self.env.now)
            fn()

    def _apply_crash(self, ev: NodeCrash) -> None:
        self._dead[ev.node] = (self.env.now, ev.permanent)
        self._record(
            "node_crash",
            f"node {ev.node}{' (permanent)' if ev.permanent else ''}",
            ev.node,
        )

    def _apply_join(self, ev: NodeJoin) -> None:
        detail = f"node {ev.node}"
        replacement = ev.node in self._dead
        if replacement:
            # Replacement hardware at a dead index discharges the crash.
            del self._dead[ev.node]
            detail += " (replacement)"
        # Fresh hardware in the slot never inherits a limp.
        self._slow.pop(ev.node, None)
        if self.cluster is not None:
            if ev.node >= len(self.cluster):
                self.cluster.add_node(index=ev.node)
                detail += " (new capacity)"
            elif replacement:
                # Reset the slot; a join for a healthy index is a no-op
                # beyond the announcement (never clobber live hardware).
                self.cluster.add_node(index=ev.node)
        self.joined.append(ev.node)
        self._record("node_join", detail, ev.node)

    def _apply_hang(self, ev: NodeHang) -> None:
        node = self.cluster.node(ev.node)
        self._record("node_hang", f"node {ev.node} for {ev.duration:g}s", ev.node)
        self.env.process(self._hold_cpu(node, ev.duration),
                         name=f"hang:node{ev.node}")

    def _hold_cpu(self, node, duration: float):
        req = node.cpu.request()
        try:
            yield req
        except BaseException:
            node.cpu.cancel(req)
            raise
        try:
            yield self.env.timeout(duration)
        finally:
            node.cpu.release()

    def _apply_slow(self, ev: NodeSlow) -> None:
        self._slow[ev.node] = ev.factor
        self._record("node_slow", f"node {ev.node} x{ev.factor:g}", ev.node)

    def _clear_slow(self, ev: NodeSlow) -> None:
        self._slow.pop(ev.node, None)
        self._record("node_recover", f"node {ev.node}", ev.node)

    def _apply_jitter(self, ev: LinkJitter) -> None:
        self._jitter[_link_key(ev.a, ev.b)] = ev.sigma
        self._record(
            "link_jitter", f"link {ev.a}<->{ev.b} sigma={ev.sigma:g}s", ev.a
        )

    def _clear_jitter(self, ev: LinkJitter) -> None:
        self._jitter.pop(_link_key(ev.a, ev.b), None)
        self._record("link_restore", f"link {ev.a}<->{ev.b} jitter", ev.a)

    def _apply_flap_down(self, ev: LinkFlap, cycle: int) -> None:
        key = _link_key(ev.a, ev.b)
        if ev.factor == 0:
            self._down[key] = self.env.now
        else:
            self._degrade[key] = ev.factor
        self._record(
            "link_flap",
            f"link {ev.a}<->{ev.b} down (cycle {cycle + 1}/{ev.cycles})",
            ev.a,
        )

    def _apply_flap_up(self, ev: LinkFlap, cycle: int) -> None:
        key = _link_key(ev.a, ev.b)
        if ev.factor == 0:
            self._down.pop(key, None)
        else:
            self._degrade.pop(key, None)
        self._record(
            "link_restore",
            f"link {ev.a}<->{ev.b} flap (cycle {cycle + 1}/{ev.cycles})",
            ev.a,
        )

    def _apply_drop(self, ev: LinkDrop) -> None:
        self._down[_link_key(ev.a, ev.b)] = self.env.now
        self._record("link_drop", f"link {ev.a}<->{ev.b}", ev.a)

    def _clear_drop(self, ev: LinkDrop) -> None:
        self._down.pop(_link_key(ev.a, ev.b), None)
        self._record("link_restore", f"link {ev.a}<->{ev.b}", ev.a)

    def _apply_degrade(self, ev: LinkDegrade) -> None:
        self._degrade[_link_key(ev.a, ev.b)] = ev.factor
        self._record(
            "link_degrade", f"link {ev.a}<->{ev.b} x{ev.factor:g}", ev.a
        )

    def _clear_degrade(self, ev: LinkDegrade) -> None:
        self._degrade.pop(_link_key(ev.a, ev.b), None)
        self._record("link_restore", f"link {ev.a}<->{ev.b} bandwidth", ev.a)

    # -- queries used by nodes / fabric ----------------------------------
    def alive(self, node: int) -> bool:
        return node not in self._dead

    def check_node(self, node: int) -> None:
        info = self._dead.get(node)
        if info is not None:
            raise NodeFailure(node, info[0], self.env.now)

    def check_link(self, src: int, dst: int) -> None:
        since = self._down.get(_link_key(src, dst))
        if since is not None:
            raise LinkFailure(src, dst, since, self.env.now)

    def link_up(self, src: int, dst: int) -> bool:
        return _link_key(src, dst) not in self._down

    def link_factor(self, src: int, dst: int) -> float:
        return self._degrade.get(_link_key(src, dst), 1.0)

    def cpu_factor(self, node: int) -> float:
        """Current CPU rate multiplier for ``node`` (1.0 = full speed)."""
        return self._slow.get(node, 1.0)

    @property
    def slow_nodes(self) -> List[int]:
        return sorted(self._slow)

    def sample_jitter(self, src: int, dst: int) -> float:
        """Seeded extra latency for one transfer over ``src``–``dst``.

        Returns 0.0 — without consuming a draw — when the link has no
        jitter armed, so un-jittered plans are RNG-order-identical to
        pre-gray-failure builds.
        """
        sigma = self._jitter.get(_link_key(src, dst))
        if not sigma:
            return 0.0
        return self._gray_rng.expovariate(1.0 / sigma)

    def sample_delivery(self, src: int, dst: int, nbytes: float) -> str:
        """Deterministic per-transfer loss/corruption draw."""
        if self.plan.loss_rate and self._rng.random() < self.plan.loss_rate:
            self._record(
                "message_loss", f"{src}->{dst} {int(nbytes)}B", src
            )
            return LOST
        if (self.plan.corruption_rate
                and self._rng.random() < self.plan.corruption_rate):
            self._record(
                "message_corruption", f"{src}->{dst} {int(nbytes)}B", src
            )
            return CORRUPTED
        return DELIVERED

    # -- recovery hooks ---------------------------------------------------
    def revive(self, node: int) -> bool:
        """Bring a crashed node back (a restarted process); False if permanent."""
        info = self._dead.get(node)
        if info is None:
            return True
        if info[1]:  # permanent
            return False
        del self._dead[node]
        self._record("node_revive", f"node {node}", node)
        return True

    def revive_all(self) -> List[int]:
        """Revive every non-permanently crashed node; returns the revived."""
        revived = [n for n in sorted(self._dead) if not self._dead[n][1]]
        for n in revived:
            self.revive(n)
        return revived

    @property
    def dead_nodes(self) -> List[int]:
        return sorted(self._dead)
