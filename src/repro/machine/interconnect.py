"""Interconnect fabric cost model.

Models the 1999-era embedded fabrics the paper's benchmarks ran on:
Myrinet (CSPI), RACEway (Mercury), SKYchannel (SKY).  A fabric is a set of
point-to-point *links* with latency, bandwidth, and per-message software
overhead; each link is a simulator :class:`Resource`, so concurrent messages
over the same link serialise (contention), while disjoint pairs proceed in
parallel — the property that makes pairwise-exchange all-to-all algorithms
profitable.

Two locality tiers are modeled, matching the CSPI target machine description
(§3.2): *intra-board* transfers between processors on the same quad-PPC board
are faster than *inter-board* transfers across the Myrinet fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .simulator import Environment, Resource

__all__ = ["LinkSpec", "FabricSpec", "Fabric", "TransferOutcome"]


@dataclass(frozen=True)
class TransferOutcome:
    """What happened to one fabric transfer (fault layer verdict).

    ``delivered`` is False when the payload was lost in transit (injected
    message loss, or the destination node died mid-flight); ``corrupted``
    marks a delivered-but-damaged payload.  ``reason`` is a short human
    label for the failure mode.
    """

    delivered: bool = True
    corrupted: bool = False
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.delivered and not self.corrupted


#: The common case: no fault layer, clean delivery.
_CLEAN = TransferOutcome()


@dataclass(frozen=True)
class LinkSpec:
    """Cost parameters for one class of link.

    ``time(nbytes) = sw_overhead + latency + nbytes / bandwidth``
    """

    latency: float        # wire + switch latency, seconds
    bandwidth: float      # bytes / second
    sw_overhead: float    # per-message protocol/software cost, seconds

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0 or self.sw_overhead < 0:
            raise ValueError("latency and sw_overhead must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.sw_overhead + self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class FabricSpec:
    """Static description of an interconnect fabric."""

    name: str
    inter_board: LinkSpec
    intra_board: LinkSpec
    #: True if the fabric is a full crossbar (per-pair links); False models a
    #: shared medium where all inter-board traffic contends on one resource.
    crossbar: bool = True
    #: Maximum simultaneous inter-board transfers when crossbar is False.
    shared_channels: int = 1

    def link_for(self, same_board: bool) -> LinkSpec:
        return self.intra_board if same_board else self.inter_board


class Fabric:
    """A fabric instance bound to a simulation environment.

    ``transfer(src, dst, nbytes)`` is a process generator charging the modeled
    time on the (possibly contended) link between two node indices.
    """

    def __init__(self, env: Environment, spec: FabricSpec, boards: Dict[int, int]):
        """``boards`` maps node index -> board index (locality tiers)."""
        self.env = env
        self.spec = spec
        self.boards = dict(boards)
        # Per-node injection/ejection ports: a node's NIC moves one message in
        # each direction at a time (full duplex), so fan-out sends serialise
        # at the sender — the property that makes pairwise-exchange all-to-all
        # competitive with naive flooding.
        self._inject: Dict[int, Resource] = {}
        self._eject: Dict[int, Resource] = {}
        self._shared: Resource = Resource(env, capacity=max(1, spec.shared_channels))
        #: Optional FaultInjector consulted on every transfer.
        self.faults = None

    def same_board(self, src: int, dst: int) -> bool:
        return self.boards.get(src) == self.boards.get(dst)

    def attach_node(self, node: int, board: int) -> None:
        """Register (or re-register) a node's locality; ports stay lazy."""
        self.boards[node] = board

    def detach_node(self, node: int) -> int:
        """Drop a removed node's NIC ports, forcing fresh (idle) Resources on
        re-attach.  In-flight transfers through the old ports keep their held
        slots in the orphaned objects, so replacement hardware at the same
        index starts with clean port capacity.  Returns the number of stranded
        slots/queued requests discarded with the old ports."""
        stranded = 0
        for table in (self._inject, self._eject):
            port = table.pop(node, None)
            if port is not None:
                stranded += port.count + port.queue_length
        return stranded

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Uncontended transfer time between two nodes."""
        if src == dst:
            # Loopback: charged by the caller as a memory copy, not here.
            return 0.0
        return self.spec.link_for(self.same_board(src, dst)).transfer_time(nbytes)

    def _port(self, table: Dict[int, Resource], node: int) -> Resource:
        port = table.get(node)
        if port is None:
            port = Resource(self.env, capacity=1)
            table[node] = port
        return port

    def _acquire(self, resource: Resource):
        """Sub-generator: interrupt-safe resource acquisition.

        An exception thrown while suspended on the request (fault-recovery
        interrupts) cancels the request so the port is never leaked.
        """
        req = resource.request()
        try:
            yield req
        except BaseException:
            resource.cancel(req)
            raise

    def transfer(self, src: int, dst: int, nbytes: float):
        """Generator: move ``nbytes`` from ``src`` to ``dst``, with contention.

        Acquisition order is inject -> shared medium -> eject (a fixed
        hierarchy, so concurrent transfers can never deadlock); the message
        holds all its resources for the full wire time, modelling wormhole
        head-of-line blocking.

        Returns a :class:`TransferOutcome`.  With a fault layer installed,
        the transfer may raise :class:`~repro.machine.faults.NodeFailure` /
        :class:`~repro.machine.faults.LinkFailure` at injection time, run
        slower over a degraded link, or come back undelivered/corrupted.
        """
        faults = self.faults
        if faults is not None:
            faults.check_node(src)
            faults.check_node(dst)
            faults.check_link(src, dst)
        if src == dst:
            # Loopback: charged by the caller as a memory copy, not here.
            return _CLEAN
        link = self.spec.link_for(self.same_board(src, dst))
        factor = faults.link_factor(src, dst) if faults is not None else 1.0
        duration = link.sw_overhead + link.latency + nbytes / (link.bandwidth * factor)
        if faults is not None:
            # Gray-failure jitter: seeded extra wire latency on noisy links.
            duration += faults.sample_jitter(src, dst)
        inject = self._port(self._inject, src)
        eject = self._port(self._eject, dst)
        shared = (
            self._shared
            if (not self.spec.crossbar and not self.same_board(src, dst))
            else None
        )
        yield from self._acquire(inject)
        try:
            if shared is not None:
                yield from self._acquire(shared)
            try:
                yield from self._acquire(eject)
                try:
                    yield self.env.timeout(duration)
                finally:
                    eject.release()
            finally:
                if shared is not None:
                    shared.release()
        finally:
            inject.release()
        if faults is None:
            return _CLEAN
        if not faults.alive(dst):
            return TransferOutcome(delivered=False, reason=f"node {dst} died in flight")
        if not faults.link_up(src, dst):
            return TransferOutcome(
                delivered=False, reason=f"link {src}<->{dst} dropped in flight"
            )
        verdict = faults.sample_delivery(src, dst, nbytes)
        if verdict == "lost":
            return TransferOutcome(delivered=False, reason="message lost")
        if verdict == "corrupted":
            return TransferOutcome(corrupted=True, reason="message corrupted")
        return _CLEAN
