"""Interconnect fabric cost model.

Models the 1999-era embedded fabrics the paper's benchmarks ran on:
Myrinet (CSPI), RACEway (Mercury), SKYchannel (SKY).  A fabric is a set of
point-to-point *links* with latency, bandwidth, and per-message software
overhead; each link is a simulator :class:`Resource`, so concurrent messages
over the same link serialise (contention), while disjoint pairs proceed in
parallel — the property that makes pairwise-exchange all-to-all algorithms
profitable.

Two locality tiers are modeled, matching the CSPI target machine description
(§3.2): *intra-board* transfers between processors on the same quad-PPC board
are faster than *inter-board* transfers across the Myrinet fabric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .simulator import Environment, Resource

__all__ = ["LinkSpec", "FabricSpec", "Fabric"]


@dataclass(frozen=True)
class LinkSpec:
    """Cost parameters for one class of link.

    ``time(nbytes) = sw_overhead + latency + nbytes / bandwidth``
    """

    latency: float        # wire + switch latency, seconds
    bandwidth: float      # bytes / second
    sw_overhead: float    # per-message protocol/software cost, seconds

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency < 0 or self.sw_overhead < 0:
            raise ValueError("latency and sw_overhead must be non-negative")

    def transfer_time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.sw_overhead + self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class FabricSpec:
    """Static description of an interconnect fabric."""

    name: str
    inter_board: LinkSpec
    intra_board: LinkSpec
    #: True if the fabric is a full crossbar (per-pair links); False models a
    #: shared medium where all inter-board traffic contends on one resource.
    crossbar: bool = True
    #: Maximum simultaneous inter-board transfers when crossbar is False.
    shared_channels: int = 1

    def link_for(self, same_board: bool) -> LinkSpec:
        return self.intra_board if same_board else self.inter_board


class Fabric:
    """A fabric instance bound to a simulation environment.

    ``transfer(src, dst, nbytes)`` is a process generator charging the modeled
    time on the (possibly contended) link between two node indices.
    """

    def __init__(self, env: Environment, spec: FabricSpec, boards: Dict[int, int]):
        """``boards`` maps node index -> board index (locality tiers)."""
        self.env = env
        self.spec = spec
        self.boards = dict(boards)
        # Per-node injection/ejection ports: a node's NIC moves one message in
        # each direction at a time (full duplex), so fan-out sends serialise
        # at the sender — the property that makes pairwise-exchange all-to-all
        # competitive with naive flooding.
        self._inject: Dict[int, Resource] = {}
        self._eject: Dict[int, Resource] = {}
        self._shared: Resource = Resource(env, capacity=max(1, spec.shared_channels))

    def same_board(self, src: int, dst: int) -> bool:
        return self.boards.get(src) == self.boards.get(dst)

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Uncontended transfer time between two nodes."""
        if src == dst:
            # Loopback: charged by the caller as a memory copy, not here.
            return 0.0
        return self.spec.link_for(self.same_board(src, dst)).transfer_time(nbytes)

    def _port(self, table: Dict[int, Resource], node: int) -> Resource:
        port = table.get(node)
        if port is None:
            port = Resource(self.env, capacity=1)
            table[node] = port
        return port

    def transfer(self, src: int, dst: int, nbytes: float):
        """Generator: move ``nbytes`` from ``src`` to ``dst``, with contention.

        Acquisition order is inject -> shared medium -> eject (a fixed
        hierarchy, so concurrent transfers can never deadlock); the message
        holds all its resources for the full wire time, modelling wormhole
        head-of-line blocking.
        """
        duration = self.transfer_time(src, dst, nbytes)
        if duration == 0.0:
            return
        inject = self._port(self._inject, src)
        eject = self._port(self._eject, dst)
        shared = (
            self._shared
            if (not self.spec.crossbar and not self.same_board(src, dst))
            else None
        )
        yield inject.request()
        try:
            if shared is not None:
                yield shared.request()
            try:
                yield eject.request()
                try:
                    yield self.env.timeout(duration)
                finally:
                    eject.release()
            finally:
                if shared is not None:
                    shared.release()
        finally:
            inject.release()
