"""Compute-node cost model.

Models a single processor (e.g. the 200 MHz PowerPC 603e on the CSPI boards)
as an analytic cost source: floating-point work is charged at a sustained
MFLOPS rate, memory copies at a copy bandwidth, and every kernel invocation
pays a fixed call overhead.  The node owns a :class:`~repro.machine.simulator.Resource`
so that two threads mapped to the same processor serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .simulator import Environment, Resource

__all__ = ["CpuSpec", "SimNode"]


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a processor's performance characteristics.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"PowerPC 603e"``.
    clock_mhz:
        Core clock in MHz.
    mflops:
        Sustained double-issue FP rate for FFT-like kernels, in MFLOP/s.
        1999-era PPC 603e at 200 MHz sustained roughly 60-120 MFLOPS on
        vendor FFT libraries; we use the vendor-library figure per platform.
    copy_bw:
        Memory-to-memory copy bandwidth in bytes/s.
    call_overhead:
        Fixed cost of invoking a library kernel, in seconds.
    memory_bytes:
        DRAM capacity (64 MB on the CSPI boards).
    """

    name: str
    clock_mhz: float
    mflops: float
    copy_bw: float
    call_overhead: float = 2e-6
    memory_bytes: int = 64 * 1024 * 1024

    def __post_init__(self):
        if self.clock_mhz <= 0 or self.mflops <= 0 or self.copy_bw <= 0:
            raise ValueError("CPU rates must be positive")
        if self.call_overhead < 0:
            raise ValueError("call_overhead must be non-negative")

    def compute_time(self, flops: float) -> float:
        """Seconds to execute ``flops`` floating point operations."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if flops == 0:
            return 0.0
        return self.call_overhead + flops / (self.mflops * 1e6)

    def copy_time(self, nbytes: float) -> float:
        """Seconds to copy ``nbytes`` through memory."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.call_overhead + nbytes / self.copy_bw


@dataclass
class SimNode:
    """A processor instance inside a simulated cluster.

    The ``cpu`` resource serialises all work charged to this node; memory
    allocation is tracked so over-subscription raises, mirroring the 64 MB
    limit of the paper's target boards.
    """

    index: int
    spec: CpuSpec
    env: Environment
    board: int = 0
    cpu: Resource = field(init=False)
    _allocated: int = field(init=False, default=0)

    def __post_init__(self):
        self.cpu = Resource(self.env, capacity=1)
        #: Optional FaultInjector consulted before/after every operation.
        self.faults = None

    def _check_alive(self) -> None:
        if self.faults is not None:
            self.faults.check_node(self.index)

    def _rate_scaled(self, duration: float) -> float:
        """Stretch a modeled duration by the node's current CPU slowdown.

        A limping node (gray failure) runs at ``cpu_factor`` × nominal
        rate, so every operation dispatched while slow takes
        ``duration / cpu_factor`` seconds.  Work already in flight when a
        slowdown begins completes at its original rate — the cost was
        committed to the event queue at dispatch.
        """
        if self.faults is not None:
            factor = self.faults.cpu_factor(self.index)
            if factor != 1.0:
                return duration / factor
        return duration

    def cpu_time_of(self, seconds: float) -> float:
        """CPU time a nominal ``seconds`` workload consumes at the current
        rate — the ``getrusage`` view a self-timing benchmark observes.

        Unlike wall time this excludes queueing behind co-mapped work, so
        it isolates the node's execution *rate*: the failure detector's RTT
        probes use it to keep a limping node visible even when the node is
        otherwise idle, without false-positiving on merely busy ones.
        """
        return self._rate_scaled(seconds)

    def reset(self) -> int:
        """Return the node to power-on state: idle CPU, no allocations.

        Used when replacement hardware is slotted in at this node's index: a
        crash can strand CPU slots held by interrupted work and buffer
        accounting from the dead program, neither of which the new board
        inherits.  Returns the number of stranded CPU slots/queued requests
        that were dropped.
        """
        dropped = self.cpu.reset()
        self._allocated = 0
        return dropped

    @property
    def allocated_bytes(self) -> int:
        return self._allocated

    def allocate(self, nbytes: int) -> None:
        """Account for a buffer allocation; raises MemoryError when full."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._allocated + nbytes > self.spec.memory_bytes:
            raise MemoryError(
                f"node {self.index}: allocation of {nbytes} bytes exceeds "
                f"{self.spec.memory_bytes} byte DRAM "
                f"({self._allocated} already allocated)"
            )
        self._allocated += nbytes

    def free(self, nbytes: int) -> None:
        if nbytes < 0 or nbytes > self._allocated:
            raise ValueError("free() does not match outstanding allocations")
        self._allocated -= nbytes

    def compute(self, flops: float, label: Optional[str] = None):
        """Generator: occupy the CPU for the modeled duration of ``flops``."""
        self._check_alive()
        duration = self._rate_scaled(self.spec.compute_time(flops))
        yield from self.cpu.use(duration)
        # A crash that lands mid-operation surfaces when the work "completes".
        self._check_alive()

    def copy(self, nbytes: float, label: Optional[str] = None):
        """Generator: occupy the CPU for a memory copy of ``nbytes``."""
        self._check_alive()
        duration = self._rate_scaled(self.spec.copy_time(nbytes))
        yield from self.cpu.use(duration)
        self._check_alive()

    def busy(self, seconds: float):
        """Generator: occupy the CPU for an explicit duration."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self._check_alive()
        yield from self.cpu.use(self._rate_scaled(seconds))
        self._check_alive()
