"""Analytic cost helpers shared by kernels, runtime, and benchmarks.

The flop counts use the standard conventions of the FFT benchmarking
literature (e.g. the MITRE/RT-HPC reports referenced by the paper):
a complex length-N FFT is ``5 N log2 N`` real flops.
"""

from __future__ import annotations

import math

__all__ = [
    "fft_flops",
    "fft2d_flops",
    "fft_rows_flops",
    "transpose_bytes",
    "corner_turn_message_bytes",
    "COMPLEX64_BYTES",
    "COMPLEX128_BYTES",
    "FLOAT32_BYTES",
]

COMPLEX64_BYTES = 8
COMPLEX128_BYTES = 16
FLOAT32_BYTES = 4


def fft_flops(n: int) -> float:
    """Real flops for one complex FFT of length ``n`` (5 N log2 N)."""
    if n <= 0:
        raise ValueError("n must be positive")
    if n == 1:
        return 0.0
    if n & (n - 1):
        raise ValueError(f"FFT length must be a power of two, got {n}")
    return 5.0 * n * math.log2(n)


def fft_rows_flops(rows: int, n: int) -> float:
    """Flops for ``rows`` independent length-``n`` FFTs."""
    if rows < 0:
        raise ValueError("rows must be non-negative")
    return rows * fft_flops(n)


def fft2d_flops(n: int) -> float:
    """Flops for a full n x n 2D complex FFT (row pass + column pass)."""
    return 2.0 * fft_rows_flops(n, n)


def transpose_bytes(n: int, elem_bytes: int = COMPLEX64_BYTES) -> int:
    """Bytes moved by an n x n corner turn (read once, write once -> count payload once)."""
    if n <= 0 or elem_bytes <= 0:
        raise ValueError("n and elem_bytes must be positive")
    return n * n * elem_bytes


def corner_turn_message_bytes(n: int, nodes: int, elem_bytes: int = COMPLEX64_BYTES) -> int:
    """Payload of one all-to-all message in a distributed n x n corner turn.

    With row-block distribution over ``nodes`` ranks, each rank sends each
    other rank an (n/nodes) x (n/nodes) tile.
    """
    if nodes <= 0:
        raise ValueError("nodes must be positive")
    if n % nodes:
        raise ValueError(f"matrix size {n} not divisible by node count {nodes}")
    tile = n // nodes
    return tile * tile * elem_bytes
