"""Platform presets for the machines named in the paper.

§3.1-3.2 names four COTS embedded HPC vendors benchmarked by MITRE:
**CSPI** (the SAGE target: quad 200 MHz PowerPC 603e boards, 64 MB per CPU,
160 MB/s Myrinet, VxWorks, vendor MPI + ISSPL), **Mercury** (RACEway),
**SKY** (SKYchannel), and **SIGI**.  Exact microbenchmark numbers for these
fabrics are not in the paper; the figures below are calibrated from the
public era literature (RACEway 267 MB/s, SKYchannel 320 MB/s, Myrinet
160 MB/s full duplex; sub-10 us put latencies) so that *relative* ordering
and crossover shapes are faithful.  Absolute milliseconds are modeled, not
measured — see EXPERIMENTS.md.

The SAGE run-time overhead knobs (`dispatch_overhead`, glue buffer copies
charged at ``copy_bw``) are what Table 1.0 measures; they are properties of
the run-time, configured in :mod:`repro.core.runtime`, not of the platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .interconnect import FabricSpec, LinkSpec
from .node import CpuSpec

__all__ = ["PlatformSpec", "PLATFORMS", "get_platform", "cspi", "mercury", "sky", "sigi"]


@dataclass(frozen=True)
class PlatformSpec:
    """A vendor platform: CPU spec + fabric spec + board topology rule."""

    name: str
    cpu: CpuSpec
    fabric: FabricSpec
    cpus_per_board: int
    #: Which all-to-all algorithm the vendor's tuned MPI uses (§3.1: "each
    #: vendor implemented their own version tailored to their hardware").
    alltoall_algorithm: str = "pairwise"

    def board_of(self, node_index: int) -> int:
        return node_index // self.cpus_per_board

    def board_map(self, nodes: int) -> Dict[int, int]:
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        return {i: self.board_of(i) for i in range(nodes)}


def _ppc603e(mflops: float, copy_bw: float) -> CpuSpec:
    return CpuSpec(
        name="PowerPC 603e",
        clock_mhz=200.0,
        mflops=mflops,
        copy_bw=copy_bw,
        call_overhead=2e-6,
        memory_bytes=64 * 1024 * 1024,
    )


def cspi() -> PlatformSpec:
    """CSPI target machine of §3.2: 2 quad-PPC boards, Myrinet 160 MB/s."""
    return PlatformSpec(
        name="CSPI",
        cpu=_ppc603e(mflops=90.0, copy_bw=180e6),
        fabric=FabricSpec(
            name="Myrinet",
            inter_board=LinkSpec(latency=9e-6, bandwidth=160e6, sw_overhead=11e-6),
            intra_board=LinkSpec(latency=2e-6, bandwidth=220e6, sw_overhead=6e-6),
            crossbar=True,
        ),
        cpus_per_board=4,
        alltoall_algorithm="pairwise",
    )


def mercury() -> PlatformSpec:
    """Mercury RACE: PPC daughtercards on a 267 MB/s RACEway crossbar."""
    return PlatformSpec(
        name="Mercury",
        cpu=_ppc603e(mflops=100.0, copy_bw=200e6),
        fabric=FabricSpec(
            name="RACEway",
            inter_board=LinkSpec(latency=5e-6, bandwidth=267e6, sw_overhead=8e-6),
            intra_board=LinkSpec(latency=1.5e-6, bandwidth=267e6, sw_overhead=5e-6),
            crossbar=True,
        ),
        cpus_per_board=2,
        alltoall_algorithm="direct",
    )


def sky() -> PlatformSpec:
    """SKY: SKYchannel packet bus, 320 MB/s backplane."""
    return PlatformSpec(
        name="SKY",
        cpu=_ppc603e(mflops=95.0, copy_bw=190e6),
        fabric=FabricSpec(
            name="SKYchannel",
            inter_board=LinkSpec(latency=6e-6, bandwidth=320e6, sw_overhead=9e-6),
            intra_board=LinkSpec(latency=2e-6, bandwidth=320e6, sw_overhead=6e-6),
            crossbar=False,
            shared_channels=4,
        ),
        cpus_per_board=4,
        alltoall_algorithm="ring",
    )


def sigi() -> PlatformSpec:
    """SIGI: modeled as a smaller shared-bus machine (weakest fabric)."""
    return PlatformSpec(
        name="SIGI",
        cpu=_ppc603e(mflops=85.0, copy_bw=170e6),
        fabric=FabricSpec(
            name="SIGIbus",
            inter_board=LinkSpec(latency=12e-6, bandwidth=120e6, sw_overhead=14e-6),
            intra_board=LinkSpec(latency=3e-6, bandwidth=160e6, sw_overhead=8e-6),
            crossbar=False,
            shared_channels=2,
        ),
        cpus_per_board=4,
        alltoall_algorithm="recursive_doubling",
    )


PLATFORMS = {
    "cspi": cspi,
    "mercury": mercury,
    "sky": sky,
    "sigi": sigi,
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform preset by case-insensitive name."""
    try:
        return PLATFORMS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
