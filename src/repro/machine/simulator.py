"""Discrete-event simulation engine.

A small, self-contained, SimPy-flavoured kernel used by every timed layer of
the reproduction: the simulated cluster, the message-passing library, and the
SAGE run-time.  Processes are Python generators that ``yield`` *events*; the
:class:`Environment` advances a virtual clock and resumes processes when the
events they wait on fire.

Design notes
------------
* Events are totally ordered by ``(time, priority, sequence)`` so runs are
  deterministic: two events scheduled for the same instant fire in schedule
  order.
* Fast path: the vast majority of schedule operations are zero-delay (an
  event firing at the current instant — every ``succeed``/``fail``, process
  start, and post-processing callback).  Those never enter the heap; they go
  to two deques holding only current-instant entries (priority 0 for
  callback hand-offs, priority 1 for events), and :meth:`Environment.step`
  merges deques and heap in exact ``(time, priority, sequence)`` order.
  Only real timeouts pay ``heappush``/``heappop``.
* A process may yield:
    - :class:`Timeout`     -- resume after a virtual delay,
    - :class:`Event`       -- resume when someone triggers it,
    - :class:`Process`     -- resume when the child process terminates
      (its value is the child's return value),
    - :class:`AllOf`       -- resume when every sub-event has fired.
* :class:`Store` is an unbounded FIFO channel with blocking ``get``;
  :class:`Resource` is a counted lock used to model link/bus contention.

The engine never consults the wall clock; all time is virtual seconds.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Store",
    "Resource",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* at most once, with an optional value.  Callbacks
    registered before the trigger run when it fires; callbacks registered
    after it fired are scheduled immediately.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "triggered", "processed")

    #: sentinel meaning "no value yet"
    _PENDING = object()

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = Event._PENDING
        self._ok = True
        self.triggered = False
        self.processed = False

    # -- inspection ------------------------------------------------------
    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event has not been triggered")
        return self._value

    @property
    def ok(self) -> bool:
        return self._ok

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self._ok = True
        self._value = value
        env = self.env  # inlined zero-delay _schedule (hottest call site)
        env._imm1.append((next(env._seq), self))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception that will be raised in waiters."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._ok = False
        self._value = exc
        env = self.env
        env._imm1.append((next(env._seq), self))
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run at the current instant.
            self.env._schedule_callback(fn, self)
        else:
            self.callbacks.append(fn)


class Timeout(Event):
    """An event that fires automatically after a virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = float(delay)
        self.triggered = True
        self._ok = True
        self._value = value
        if self.delay == 0.0:
            env._imm1.append((next(env._seq), self))
        else:
            heapq.heappush(
                env._queue, (env._now + self.delay, 1, next(env._seq), self)
            )


class Process(Event):
    """A running generator; also an event that fires when the generator ends."""

    __slots__ = ("generator", "name", "_target")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        # Kick off at the current instant.  Equivalent to creating an Event,
        # succeeding it and registering _resume, but without the method-call
        # overhead — process starts are one of the hottest schedule sites.
        init = Event(env)
        init.triggered = True
        init._value = None
        init.callbacks.append(self._resume)
        env._imm1.append((next(env._seq), init))

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._target is not None and self.env._active_proc is not self:
            # Detach from whatever it was waiting on.
            target = self._target
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._target = None
        kick = Event(self.env)
        kick.triggered = True
        kick._ok = True
        kick._value = Interrupt(cause)
        self.env._schedule(kick)
        kick.callbacks = []
        kick.add_callback(self._resume_interrupt)

    # -- stepping --------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if self.triggered:
            return  # finished in the meantime
        # The process may have resumed and re-suspended on a new event since
        # interrupt() detached it (e.g. it was waiting on an already-processed
        # event whose queued resume could not be cancelled).  Detach from the
        # current target too, or the stale callback would resume the process a
        # second time after the Interrupt is delivered.
        if self._target is not None:
            target = self._target
            if target.callbacks is not None and self._resume in target.callbacks:
                target.callbacks.remove(self._resume)
            self._target = None
        self._step(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return  # already finished (e.g. killed by an interrupt)
        self._target = None
        self._step(event._value, throw=not event._ok)

    def _step(self, value: Any, throw: bool) -> None:
        env = self.env
        prev = env._active_proc
        env._active_proc = self
        try:
            if throw:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            env._active_proc = prev
            self.triggered = True
            self._ok = True
            self._value = stop.value
            env._schedule(self)
            return
        except BaseException as exc:
            env._active_proc = prev
            self.triggered = True
            self._ok = False
            self._value = exc
            if not self.callbacks:
                env._active_proc = prev
                raise
            env._schedule(self)
            return
        env._active_proc = prev
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        if target.env is not env:
            raise SimulationError("cannot wait on an event from another Environment")
        self._target = target
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires when every sub-event has fired; value is the list of values."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev.value for ev in self.events])


class AnyOf(Event):
    """Fires when the first sub-event fires; value is ``(index, value)``.

    Late stragglers are ignored (their values are simply dropped), so the
    classic receive-with-timeout pattern is::

        which, value = yield env.any_of([data_event, env.timeout(1.0)])
        if which == 1: ...  # timed out
    """

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            raise SimulationError("any_of needs at least one event")
        for index, ev in enumerate(self.events):
            ev.add_callback(self._make_callback(index))

    def _make_callback(self, index: int):
        def on_child(event: Event) -> None:
            if self.triggered:
                return
            if not event.ok:
                self.fail(event.value)
                return
            self.succeed((index, event.value))

        return on_child


class Environment:
    """The simulation driver: virtual clock plus the event queues.

    Scheduling state is split three ways (see the module docstring):

    * ``_queue``  -- heap of future entries ``(time, priority, seq, event)``,
    * ``_imm0``   -- deque of ``(seq, event, fn)`` callback hand-offs at the
      current instant (priority 0),
    * ``_imm1``   -- deque of ``(seq, event)`` triggered events at the
      current instant (priority 1).

    The split preserves the exact ``(time, priority, sequence)`` total order
    of the single-heap implementation: deque entries are always stamped with
    the current time, the clock only advances when both deques are empty, and
    :meth:`step` compares sequence numbers against the heap top to interleave
    same-instant heap entries correctly.
    """

    __slots__ = ("_now", "_queue", "_imm0", "_imm1", "_seq", "_active_proc",
                 "events_processed")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Any] = []
        self._imm0: deque = deque()
        self._imm1: deque = deque()
        self._seq = itertools.count()
        self._active_proc: Optional[Process] = None
        #: number of queue entries processed so far (wall-clock perf metric)
        self.events_processed = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_proc

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> "AnyOf":
        return AnyOf(self, events)

    # -- scheduling internals ---------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if delay == 0.0 and priority == 1:
            # Zero-delay fast path: never touches the heap.
            self._imm1.append((next(self._seq), event))
        else:
            heapq.heappush(
                self._queue, (self._now + delay, priority, next(self._seq), event)
            )

    def _schedule_callback(self, fn: Callable, event: Event) -> None:
        # Callback hand-offs always run at the current instant, priority 0.
        self._imm0.append((next(self._seq), event, fn))

    # -- running ----------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled entry in ``(time, priority, seq)`` order."""
        imm0 = self._imm0
        if imm0:
            # Priority-0 hand-offs at the current instant always sort ahead
            # of priority-1 entries, and the heap never holds priority 0.
            _seq, event, fn = imm0.popleft()
            self.events_processed += 1
            fn(event)
            return
        imm1 = self._imm1
        queue = self._queue
        event = None
        if imm1:
            if queue:
                head = queue[0]
                # A same-instant heap entry with a smaller key was scheduled
                # before the deque head and must fire first.
                if head[0] <= self._now and (head[1], head[2]) < (1, imm1[0][0]):
                    heapq.heappop(queue)
                    self._now = head[0]
                    event = head[3]
            if event is None:
                event = imm1.popleft()[1]
        else:
            if not queue:
                raise SimulationError("no more events")
            when, _prio, _seq, event = heapq.heappop(queue)
            self._now = when
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        event.processed = True
        for cb in callbacks or ():
            cb(event)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain all events), a number (run up to that
        virtual time), or an :class:`Event` (run until it fires, returning its
        value / raising its exception).
        """
        step = self.step
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not (self._imm0 or self._imm1 or self._queue):
                    raise SimulationError(
                        "simulation ran out of events before 'until' fired "
                        "(deadlock: a process is waiting on an event nobody "
                        "will trigger)"
                    )
                step()
            if stop.ok:
                return stop.value
            raise stop.value
        if until is None:
            while self._imm0 or self._imm1 or self._queue:
                step()
            return None
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError("'until' is in the past")
        while (self._imm0 or self._imm1
               or (self._queue and self._queue[0][0] <= horizon)):
            step()
        self._now = horizon
        return None


class Store:
    """Unbounded FIFO channel with blocking ``get`` (and optional capacity)."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise SimulationError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._getters: List[Event] = []
        self._putters: List[tuple] = []  # (event, item)

    def put(self, item: Any) -> Event:
        """Return an event that fires once the item is accepted."""
        ev = Event(self.env)
        if self.capacity is not None and len(self.items) >= self.capacity:
            self._putters.append((ev, item))
            return ev
        self._accept(item)
        ev.succeed()
        return ev

    def get(self) -> Event:
        """Return an event carrying the next item once one is available."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.pop(0))
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    # -- internals --------------------------------------------------------
    def _accept(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self.items.append(item)

    def _drain_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            ev, item = self._putters.pop(0)
            self._accept(item)
            ev.succeed()

    def __len__(self) -> int:
        return len(self.items)


class Resource:
    """A counted lock: at most ``capacity`` holders at a time (FIFO queue)."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: List[Event] = []

    @property
    def count(self) -> int:
        """Number of current holders."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when the caller holds the resource."""
        ev = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use == 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.pop(0).succeed()
        else:
            self._in_use -= 1

    def cancel(self, request: Event) -> None:
        """Abandon a pending or granted (but unconsumed) request.

        Needed when the requesting process is interrupted while suspended on
        the request event: a granted slot must be released and a queued
        request withdrawn, or the resource leaks and every later requester
        deadlocks.
        """
        if request.triggered:
            # The slot was granted (possibly not yet observed): give it back.
            self.release()
            return
        try:
            self._waiters.remove(request)
        except ValueError:
            pass

    def reset(self) -> int:
        """Forcibly return the resource to its idle state.

        Used when the hardware behind the resource is removed (a node pulled
        mid-transfer): holders never release, and queued requests belong to
        processes that are being torn down.  Pending waiter events fail with
        :class:`SimulationError` so any still-live requester surfaces the
        removal instead of deadlocking.  Returns the number of slots and
        queued requests that were dropped, for diagnostics.
        """
        dropped = self._in_use + len(self._waiters)
        self._in_use = 0
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            if not ev.triggered:
                ev.fail(SimulationError("resource reset: node removed"))
        return dropped

    def use(self, duration: float):
        """Generator helper: hold the resource for ``duration``.

        Interrupt-safe: an :class:`Interrupt` (or any exception) thrown while
        suspended on the request is translated into a cancellation, so the
        slot is never leaked.
        """
        req = self.request()
        try:
            yield req
        except BaseException:
            self.cancel(req)
            raise
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()
