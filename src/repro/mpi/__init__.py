"""In-process message-passing library over the simulated cluster.

Mirrors the vendor MPI implementations of the paper's target platforms:
point-to-point (blocking and nonblocking), the standard collectives, and the
vendor-tuned all-to-all algorithms that dominate the corner-turn benchmark.
"""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    Message,
    MpiWorld,
    Request,
    RetryPolicy,
)
from .detector import FailureDetector, HeartbeatConfig
from .errors import (
    CorruptionError,
    DeliveryError,
    MpiError,
    MpiTimeoutError,
    ProcessFailedError,
    RankError,
    RevokedError,
    TruncationError,
)
from .datatypes import copy_payload, payload_nbytes
from . import collectives  # noqa: F401  (binds collective methods onto Communicator)
from .vendor import ALGORITHMS, get_algorithm

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Message",
    "MpiWorld",
    "Request",
    "RetryPolicy",
    "FailureDetector",
    "HeartbeatConfig",
    "MpiError",
    "RankError",
    "TruncationError",
    "MpiTimeoutError",
    "CorruptionError",
    "DeliveryError",
    "ProcessFailedError",
    "RevokedError",
    "copy_payload",
    "payload_nbytes",
    "ALGORITHMS",
    "get_algorithm",
]
