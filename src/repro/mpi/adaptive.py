"""Adaptive latency estimation for gray-failure detection (Jacobson/Karels).

Fixed timeouts are tuned for a healthy fabric: degrade a link to a quarter
of its bandwidth and every deadline derived from the clean-link RTT starts
false-positiving, even though messages still arrive.  The classic fix —
TCP's Jacobson/Karels retransmission-timer estimator, and its descendant,
the phi-accrual failure detector — is to *measure* latency and derive
deadlines from the observed mean and deviation instead of a constant.

:class:`RttEstimator` is the scalar core: exponentially-weighted moving
average of samples (``srtt``) plus a mean-deviation estimate (``rttvar``),
with the standard ``mean + k * dev`` deadline rule.  :class:`AdaptiveTimeout`
wraps a per-source estimator table for the MPI receive path; the failure
detector keeps per-peer estimators of heartbeat inter-arrival times and RTT
probe round trips (see :mod:`repro.mpi.detector`).

Everything here is pure arithmetic on observed virtual-time samples — no
randomness, no simulator state — so determinism is inherited from the
sample stream.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["RttEstimator", "AdaptiveTimeout"]


class RttEstimator:
    """EWMA mean + mean-deviation estimator (Jacobson/Karels).

    ``alpha`` weights the mean update, ``beta`` the deviation update; the
    TCP defaults (1/8 and 1/4) are kept.  The first sample initialises the
    mean exactly (dev = sample / 2, as in RFC 6298).

    The estimator also keeps a decaying *peak* watermark: the largest
    recent sample, relaxing toward the mean with a ~32-sample time
    constant.  ``mean + k * dev`` alone is blind to rare-but-recurring
    spikes — under random message loss the deviation estimate converges
    back toward the per-sample jitter while the occasional loss *streak*
    still produces a multi-period gap.  A deadline floored at the peak
    treats any gap the channel has already survived once as survivable.
    """

    __slots__ = ("mean", "dev", "peak", "samples", "alpha", "beta",
                 "peak_decay")

    #: Default per-sample decay of the peak watermark toward the mean.
    #: 1/32 keeps a spike relevant for roughly a hundred samples — long
    #: enough to bridge recurring loss streaks, short enough to forget a
    #: one-off outage after the fabric heals.  An estimator pooled over
    #: ``m`` streams should divide this by ``m``: decay is per *sample*,
    #: and a pool sees ``m`` samples in the time one stream sees one.
    PEAK_DECAY = 1.0 / 32.0

    def __init__(self, alpha: float = 0.125, beta: float = 0.25,
                 peak_decay: Optional[float] = None):
        if not (0 < alpha <= 1) or not (0 < beta <= 1):
            raise ValueError("alpha and beta must be in (0, 1]")
        if peak_decay is None:
            peak_decay = self.PEAK_DECAY
        if not (0 < peak_decay <= 1):
            raise ValueError("peak_decay must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.peak_decay = peak_decay
        self.mean = 0.0
        self.dev = 0.0
        self.peak = 0.0
        self.samples = 0

    def observe(self, sample: float) -> None:
        """Fold one latency sample into the estimate."""
        if sample < 0:
            raise ValueError("latency samples must be non-negative")
        if self.samples == 0:
            self.mean = sample
            self.dev = sample / 2.0
            self.peak = sample
        else:
            err = sample - self.mean
            self.mean += self.alpha * err
            self.dev += self.beta * (abs(err) - self.dev)
            decayed = self.mean + (self.peak - self.mean) * (1.0 - self.peak_decay)
            self.peak = max(sample, decayed)
        self.samples += 1

    def deadline(self, k: float = 4.0) -> float:
        """The classic ``mean + k * dev`` timeout rule."""
        return self.mean + k * self.dev

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RttEstimator(mean={self.mean:.3g}, dev={self.dev:.3g}, "
            f"n={self.samples})"
        )


class AdaptiveTimeout:
    """Per-source adaptive receive deadlines for the MPI layer.

    Feed it every matched message's observed delivery latency
    (``arrived_at - sent_at``); :meth:`deadline` then returns a deadline
    that tracks the fabric's *current* behaviour — degraded links stretch
    the deadline instead of tripping it.

    ``margin`` scales the estimate to absorb sender-side compute skew (a
    receive waits for the sender to *produce* the payload, not just for the
    wire), ``phi`` is the deviation multiplier, and ``floor`` / ``cap``
    clamp the result.  With fewer than ``warmup`` samples for a source,
    :meth:`deadline` returns ``None`` and the caller falls back to its
    fixed default.
    """

    def __init__(self, floor: float = 0.0, cap: Optional[float] = None,
                 margin: float = 3.0, phi: float = 4.0, warmup: int = 2):
        if margin <= 0 or phi < 0:
            raise ValueError("margin must be positive and phi non-negative")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        if cap is not None and cap <= 0:
            raise ValueError("cap must be positive or None")
        self.floor = float(floor)
        self.cap = cap
        self.margin = float(margin)
        self.phi = float(phi)
        self.warmup = int(warmup)
        self._by_source: Dict[int, RttEstimator] = {}

    def observe(self, source: int, latency: float) -> None:
        est = self._by_source.get(source)
        if est is None:
            est = self._by_source[source] = RttEstimator()
        est.observe(latency)

    def estimator(self, source: int) -> Optional[RttEstimator]:
        return self._by_source.get(source)

    def _clamp(self, value: float) -> float:
        value = max(value, self.floor)
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def deadline(self, source: Optional[int] = None) -> Optional[float]:
        """Adaptive deadline for a receive from ``source``.

        ``source=None`` (ANY_SOURCE) uses the slowest warmed-up source, so
        a wildcard receive never times out on its laggiest healthy sender.
        Returns ``None`` when no source has enough samples.
        """
        if source is not None:
            est = self._by_source.get(source)
            if est is None or est.samples < self.warmup:
                return None
            return self._clamp(self.margin * est.deadline(self.phi))
        warmed = [
            e for e in self._by_source.values() if e.samples >= self.warmup
        ]
        if not warmed:
            return None
        return self._clamp(
            max(self.margin * e.deadline(self.phi) for e in warmed)
        )
