"""Collective operations over the point-to-point layer.

All collectives are sub-generators: call them as
``result = yield from comm.bcast(data, root=0)``.  As in MPI, every rank of
the world must call the same collectives in the same order; a private tag
space keyed by a per-rank collective sequence number keeps concurrent
collectives from cross-matching with user point-to-point traffic.

Algorithms are the textbook ones the 1999-era vendor MPIs used:
binomial-tree broadcast/reduce, dissemination barrier, linear scatter/gather
from the root, ring allgather, and (for all-to-all) the vendor-specific
algorithms in :mod:`repro.mpi.vendor` — §3.1 notes each vendor shipped its
own tuned ``MPI_All_to_All`` because the corner-turn benchmark is dominated
by it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .comm import Communicator
from .errors import MpiError, RankError

__all__ = ["REDUCE_OPS"]

#: Base of the reserved collective tag space (user tags must stay below this).
_COLL_TAG_BASE = 1 << 20

#: op name -> (pairwise combiner, flops charged per element combined)
REDUCE_OPS = {
    "sum": (lambda a, b: a + b, 1.0),
    "prod": (lambda a, b: a * b, 1.0),
    "max": (lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b), 1.0),
    "min": (lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b), 1.0),
}


def _coll_tag(comm: Communicator, op_id: int) -> int:
    """Allocate the tag for this rank's next collective call."""
    seq = getattr(comm, "_coll_seq", 0)
    comm._coll_seq = seq + 1
    return _COLL_TAG_BASE + (seq % (1 << 16)) * 32 + op_id


def _check_root(comm: Communicator, root: int) -> None:
    if not (0 <= root < comm.size):
        raise RankError(f"root {root} out of range [0, {comm.size})")


# ---------------------------------------------------------------------------
# barrier: dissemination algorithm, ceil(log2 p) rounds
# ---------------------------------------------------------------------------

def barrier(comm: Communicator):
    """Block until every rank has entered the barrier."""
    tag = _coll_tag(comm, 0)
    size, rank = comm.size, comm.rank
    dist = 1
    while dist < size:
        dest = (rank + dist) % size
        src = (rank - dist) % size
        req = comm.isend(None, dest, tag=tag + 0)
        yield from comm.recv(source=src, tag=tag + 0)
        yield from req.wait()
        dist *= 2
    return None


# ---------------------------------------------------------------------------
# bcast: binomial tree rooted at `root`
# ---------------------------------------------------------------------------

def bcast(comm: Communicator, data: Any = None, root: int = 0):
    """Broadcast ``data`` from ``root``; every rank returns the value."""
    _check_root(comm, root)
    tag = _coll_tag(comm, 1)
    size = comm.size
    vrank = (comm.rank - root) % size  # virtual rank: root becomes 0

    # Receive phase: wait for the parent (clear-lowest-set-bit ancestor).
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            data = yield from comm.recv(source=parent, tag=tag)
            break
        mask <<= 1
    # Send phase: forward to children vrank+mask for descending mask.
    mask >>= 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < size:
            yield from comm.send(data, (child_v + root) % size, tag=tag)
        mask >>= 1
    return data


# ---------------------------------------------------------------------------
# scatter / gather: linear from/to root (what small embedded MPIs shipped)
# ---------------------------------------------------------------------------

def scatter(comm: Communicator, chunks: Optional[Sequence[Any]] = None, root: int = 0):
    """Root distributes ``chunks[i]`` to rank ``i``; each rank returns its chunk."""
    _check_root(comm, root)
    tag = _coll_tag(comm, 2)
    if comm.rank == root:
        if chunks is None or len(chunks) != comm.size:
            raise MpiError(
                f"scatter root needs exactly {comm.size} chunks, "
                f"got {None if chunks is None else len(chunks)}"
            )
        reqs = []
        for dest, chunk in enumerate(chunks):
            if dest == root:
                continue
            reqs.append(comm.isend(chunk, dest, tag=tag))
        for req in reqs:
            yield from req.wait()
        # Local chunk still pays a copy (MPI semantics: buffers don't alias).
        yield from comm.copy(_nbytes(chunks[root]))
        return chunks[root]
    data = yield from comm.recv(source=root, tag=tag)
    return data


def gather(comm: Communicator, data: Any, root: int = 0):
    """Each rank contributes ``data``; root returns the list, others None."""
    _check_root(comm, root)
    tag = _coll_tag(comm, 3)
    if comm.rank == root:
        out: List[Any] = [None] * comm.size
        yield from comm.copy(_nbytes(data))
        out[root] = data
        for _ in range(comm.size - 1):
            msg = yield from comm.recv_msg(tag=tag)
            out[msg.source] = msg.data
        return out
    yield from comm.send(data, root, tag=tag)
    return None


def allgather(comm: Communicator, data: Any):
    """Ring allgather; every rank returns the list of all contributions."""
    tag = _coll_tag(comm, 4)
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    out[rank] = data
    right = (rank + 1) % size
    left = (rank - 1) % size
    current = data
    for step in range(size - 1):
        current = yield from comm.sendrecv(
            current, dest=right, source=left, sendtag=tag, recvtag=tag
        )
        out[(rank - step - 1) % size] = current
    return out


# ---------------------------------------------------------------------------
# reduce / allreduce
# ---------------------------------------------------------------------------

def _combine(comm: Communicator, op: str, a: Any, b: Any):
    try:
        fn, flops_per_elem = REDUCE_OPS[op]
    except KeyError:
        raise MpiError(f"unknown reduce op {op!r}; available: {sorted(REDUCE_OPS)}") from None
    n = a.size if isinstance(a, np.ndarray) else 1
    yield from comm.compute(n * flops_per_elem)
    return fn(a, b)


def reduce(comm: Communicator, data: Any, op: str = "sum", root: int = 0):
    """Binomial-tree reduction to ``root``; root returns the result, others None."""
    _check_root(comm, root)
    tag = _coll_tag(comm, 5)
    size = comm.size
    vrank = (comm.rank - root) % size
    acc = data
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from comm.send(acc, parent, tag=tag)
            acc = None
            break
        partner_v = vrank | mask
        if partner_v < size:
            other = yield from comm.recv(source=(partner_v + root) % size, tag=tag)
            acc = yield from _combine(comm, op, acc, other)
        mask <<= 1
    return acc if comm.rank == root else None


def allreduce(comm: Communicator, data: Any, op: str = "sum"):
    """Recursive-doubling allreduce (power-of-two), else reduce+bcast."""
    size = comm.size
    if size & (size - 1) == 0 and size > 1:
        tag = _coll_tag(comm, 6)
        acc = data
        mask = 1
        while mask < size:
            partner = comm.rank ^ mask
            other = yield from comm.sendrecv(
                acc, dest=partner, source=partner, sendtag=tag, recvtag=tag
            )
            # Combine in a fixed order so all ranks get bit-identical results.
            lo, hi = (acc, other) if comm.rank < partner else (other, acc)
            acc = yield from _combine(comm, op, lo, hi)
            mask <<= 1
        return acc
    result = yield from reduce(comm, data, op=op, root=0)
    result = yield from bcast(comm, result, root=0)
    return result


def scan(comm: Communicator, data: Any, op: str = "sum"):
    """Inclusive prefix reduction: rank r returns op(data_0, ..., data_r).

    Linear chain (rank r receives the prefix from r-1, combines, forwards) —
    the implementation small embedded MPIs shipped.
    """
    tag = _coll_tag(comm, 7)
    acc = data
    if comm.rank > 0:
        prefix = yield from comm.recv(source=comm.rank - 1, tag=tag)
        acc = yield from _combine(comm, op, prefix, acc)
    if comm.rank < comm.size - 1:
        yield from comm.send(acc, comm.rank + 1, tag=tag)
    return acc


def reduce_scatter(comm: Communicator, blocks: Sequence[Any], op: str = "sum"):
    """Reduce ``blocks[i]`` across ranks, scattering result ``i`` to rank ``i``.

    Implemented as alltoall + local reduction (the classic bandwidth-optimal
    structure for the corner-turn-plus-combine stages of STAP chains).
    """
    if len(blocks) != comm.size:
        raise MpiError(f"reduce_scatter needs {comm.size} blocks, got {len(blocks)}")
    received = yield from alltoall(comm, list(blocks))
    acc = received[0]
    for other in received[1:]:
        acc = yield from _combine(comm, op, acc, other)
    return acc


def scatterv(comm: Communicator, chunks: Optional[Sequence[Any]] = None, root: int = 0):
    """Variable-size scatter: like :func:`scatter` but chunks may differ in
    size/shape (MPI_Scatterv).  Chunk count must still equal world size."""
    result = yield from scatter(comm, chunks, root=root)
    return result


def gatherv(comm: Communicator, data: Any, root: int = 0):
    """Variable-size gather (MPI_Gatherv); contributions may differ in size."""
    result = yield from gather(comm, data, root=root)
    return result


def alltoallv(comm: Communicator, blocks: Sequence[Any], algorithm: str = "pairwise"):
    """Variable-size all-to-all: blocks may differ per destination.

    The vendor algorithms already carry per-message sizes from the payloads
    themselves, so this shares their implementation; it exists as a separate
    entry point to mirror the MPI API (and to document the intent).
    """
    result = yield from alltoall(comm, blocks, algorithm=algorithm)
    return result


# ---------------------------------------------------------------------------
# alltoall: dispatches to the vendor algorithm (see vendor.py)
# ---------------------------------------------------------------------------

def alltoall(comm: Communicator, blocks: Sequence[Any], algorithm: str = "pairwise"):
    """Each rank sends ``blocks[d]`` to rank ``d``; returns the received list.

    ``algorithm`` selects the vendor implementation (§3.1): ``direct``,
    ``pairwise``, ``ring``, or ``recursive_doubling`` (Bruck).
    """
    from . import vendor  # late import to avoid a cycle

    if len(blocks) != comm.size:
        raise MpiError(f"alltoall needs {comm.size} blocks, got {len(blocks)}")
    result = yield from vendor.get_algorithm(algorithm)(comm, list(blocks))
    return result


def _nbytes(data: Any) -> int:
    from .datatypes import payload_nbytes

    return payload_nbytes(data)


# ---------------------------------------------------------------------------
# Bind the collectives onto Communicator so user code reads naturally:
#   yield from comm.bcast(...), yield from comm.alltoall(...)
# ---------------------------------------------------------------------------

def _bind(fn):
    def method(self, *args, **kwargs):
        return fn(self, *args, **kwargs)

    method.__name__ = fn.__name__
    method.__doc__ = fn.__doc__
    return method


for _fn in (barrier, bcast, scatter, gather, allgather, reduce, allreduce,
            alltoall, scan, reduce_scatter, scatterv, gatherv, alltoallv):
    setattr(Communicator, _fn.__name__, _bind(_fn))
