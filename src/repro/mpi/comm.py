"""Point-to-point message passing over the simulated cluster.

The programming model mirrors mpi4py, adapted to the discrete-event engine:
rank programs are *generators* and every communication call is either

* a sub-generator used with ``yield from`` (blocking calls returning values),
  e.g. ``data = yield from comm.recv(source=0)``, or
* an immediate call returning a :class:`Request` whose ``wait()`` is itself a
  sub-generator (nonblocking calls), e.g.::

      req = comm.isend(x, dest=1)
      ...
      yield from req.wait()

Timing model
------------
A message from rank *s* to rank *d* charges the fabric link between the two
nodes (holding it, so concurrent messages over the same pair serialise) for
``sw_overhead + latency + nbytes/bandwidth``.  Loopback messages (``s == d``)
charge the node's memory-copy cost instead.  Blocking ``send`` returns once
the payload is on the wire and buffered at the receiver (buffered-send
semantics, like the small-message eager protocol of the vendor MPIs in §3.1);
``recv`` blocks until a matching message has fully arrived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..machine.cluster import SimCluster
from ..machine.simulator import Environment, Event, Process
from .datatypes import ANY_SOURCE, ANY_TAG, copy_payload, payload_nbytes
from .errors import (
    CorruptionError,
    DeliveryError,
    MpiError,
    MpiTimeoutError,
    RankError,
    TruncationError,
)

__all__ = [
    "Message",
    "Request",
    "RetryPolicy",
    "Communicator",
    "MpiWorld",
    "ANY_SOURCE",
    "ANY_TAG",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff for p2p sends over lossy links.

    A send governed by a policy re-transmits when the fabric reports the
    payload lost (or the link transiently down), sleeping ``backoff``
    seconds before the first retry and multiplying by ``factor`` each
    attempt.  After ``max_attempts`` total transmissions it raises
    :class:`~repro.mpi.errors.DeliveryError`.
    """

    max_attempts: int = 4
    backoff: float = 1e-4
    factor: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.factor < 1:
            raise ValueError("backoff must be >= 0 and factor >= 1")


class Message:
    """An in-flight or buffered message."""

    __slots__ = ("source", "dest", "tag", "data", "nbytes", "sent_at",
                 "arrived_at", "corrupted")

    def __init__(self, source: int, dest: int, tag: int, data: Any, sent_at: float):
        self.source = source
        self.dest = dest
        self.tag = tag
        self.data = data
        self.nbytes = payload_nbytes(data)
        self.sent_at = sent_at
        self.arrived_at: Optional[float] = None
        self.corrupted = False

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


class Request:
    """Handle for a nonblocking operation; ``wait()`` is a sub-generator."""

    def __init__(self, env: Environment, event: Event):
        self._env = env
        self._event = event

    @property
    def complete(self) -> bool:
        return self._event.processed

    def wait(self, timeout: Optional[float] = None) -> Generator:
        """Sub-generator: block until the operation finishes; returns its value.

        With ``timeout`` set, raises
        :class:`~repro.mpi.errors.MpiTimeoutError` if the operation has not
        completed within ``timeout`` virtual seconds (the operation itself
        keeps running in the background).
        """
        if timeout is None:
            value = yield self._event
            return value
        if timeout <= 0:
            raise MpiError("timeout must be positive")
        which, value = yield self._env.any_of(
            [self._event, self._env.timeout(timeout)]
        )
        if which == 0:
            return value
        if self._event.triggered:  # completed at the same instant
            if not self._event.ok:
                raise self._event.value
            return self._event.value
        raise MpiTimeoutError(
            f"request did not complete within {timeout:g}s "
            f"(t={self._env.now:.6f})"
        )

    def test(self) -> Tuple[bool, Any]:
        """Nonblocking completion probe (flag, value-or-None).

        Like ``MPI_Test``, a failed operation surfaces here: if the
        underlying operation raised, ``test()`` re-raises that exception
        rather than returning the exception object as a value.
        """
        if self._event.processed:
            if not self._event.ok:
                raise self._event.value
            return True, self._event.value
        return False, None

    @staticmethod
    def waitall(requests: List["Request"]) -> Generator:
        """Sub-generator: wait for every request; returns their values."""
        values = []
        for req in requests:
            values.append((yield from req.wait()))
        return values


class _Mailbox:
    """Per-rank store of arrived-but-unmatched messages plus pending receivers."""

    def __init__(self):
        self.unexpected: List[Message] = []
        # (source, tag, event) for receivers waiting on a match
        self.waiting: List[Tuple[int, int, Event]] = []

    def deliver(self, msg: Message) -> None:
        for i, (source, tag, event) in enumerate(self.waiting):
            if msg.matches(source, tag):
                del self.waiting[i]
                event.succeed(msg)
                return
        self.unexpected.append(msg)

    def match(self, source: int, tag: int, event: Event) -> None:
        for i, msg in enumerate(self.unexpected):
            if msg.matches(source, tag):
                del self.unexpected[i]
                event.succeed(msg)
                return
        self.waiting.append((source, tag, event))

    def cancel(self, event: Event) -> None:
        """Withdraw a pending receive (timeout path)."""
        self.waiting = [entry for entry in self.waiting if entry[2] is not event]

    def probe(self, source: int, tag: int) -> Optional[Message]:
        for msg in self.unexpected:
            if msg.matches(source, tag):
                return msg
        return None


class Communicator:
    """One rank's endpoint into a communication context.

    The world communicator has ``members=None`` (ranks are global node
    indices, context 0); communicators produced by :meth:`split` carry a
    member list mapping their dense local ranks onto global ranks, plus a
    private context whose mailboxes are isolated from every other
    communicator's traffic (so tags never collide across groups).
    """

    def __init__(self, world: "MpiWorld", rank: int,
                 members: Optional[List[int]] = None, context: int = 0):
        self.world = world
        self.rank = rank
        self.members = list(members) if members is not None else None
        self.context = context
        self.size = len(self.members) if self.members is not None else world.size
        self.bytes_sent = 0
        self.messages_sent = 0
        #: Deadline applied to every recv/wait (and hence every collective)
        #: when the call itself passes no explicit timeout.  None = block
        #: forever (the pre-fault-tolerance behaviour).
        self.default_timeout: Optional[float] = None
        #: Default :class:`RetryPolicy` for p2p sends (None = fire and forget).
        self.retry_policy: Optional[RetryPolicy] = None

    # -- small helpers ----------------------------------------------------
    @property
    def env(self) -> Environment:
        return self.world.env

    @property
    def global_rank(self) -> int:
        """This endpoint's node index in the world."""
        if self.members is None:
            return self.rank
        return self.members[self.rank]

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise RankError(f"{what} rank {r} out of range [0, {self.size})")

    def _g(self, r: int) -> int:
        """Local rank -> global rank (with range check)."""
        self._check_rank(r, "peer")
        return self.members[r] if self.members is not None else r

    def _g_source(self, r: int) -> int:
        return ANY_SOURCE if r == ANY_SOURCE else self._g(r)

    def _localize(self, msg: Message) -> Message:
        """Rewrite a received envelope's source into this comm's rank space."""
        if self.members is not None:
            msg.source = self.members.index(msg.source)
        return msg

    def _effective_timeout(self, timeout: Optional[float]) -> Optional[float]:
        return self.default_timeout if timeout is None else timeout

    # -- point-to-point ----------------------------------------------------
    def send(self, data: Any, dest: int, tag: int = 0,
             retry: Optional[RetryPolicy] = None) -> Generator:
        """Blocking buffered send (sub-generator).

        Without a retry policy the send is fire-and-forget: over a lossy
        fabric the payload may silently vanish (the receiver's timeout
        machinery is then the only detector).  With ``retry`` (or a
        communicator-level ``retry_policy``) the sender observes the
        delivery outcome and re-transmits with exponential backoff, raising
        :class:`~repro.mpi.errors.DeliveryError` once attempts are
        exhausted.
        """
        policy = retry if retry is not None else self.retry_policy
        dest_g = self._g(dest)
        if policy is None:
            yield from self.world._send(
                self.global_rank, dest_g, tag, data, comm=self, context=self.context
            )
            return
        from ..machine.faults import LinkFailure

        delay = policy.backoff
        failure = "undelivered"
        for attempt in range(policy.max_attempts):
            if attempt:
                if delay > 0:
                    yield self.env.timeout(delay)
                delay *= policy.factor
            try:
                outcome = yield from self.world._send(
                    self.global_rank, dest_g, tag, data,
                    comm=self, context=self.context,
                )
            except LinkFailure as exc:
                failure = str(exc)  # transient outage: back off and retry
                continue
            if outcome is None or outcome.delivered:
                return
            failure = outcome.reason or "message lost"
        raise DeliveryError(
            f"rank {self.rank}: send to rank {dest} tag {tag} failed after "
            f"{policy.max_attempts} attempt(s) at t={self.env.now:.6f}: {failure}"
        )

    def isend(self, data: Any, dest: int, tag: int = 0,
              retry: Optional[RetryPolicy] = None) -> Request:
        """Nonblocking send; the transfer proceeds as a background process."""
        proc = self.env.process(
            self.send(data, dest, tag=tag, retry=retry),
            name=f"isend r{self.rank}->r{dest} tag{tag}",
        )
        return Request(self.env, proc)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None,
             max_bytes: Optional[int] = None) -> Generator:
        """Blocking receive (sub-generator returning the payload).

        ``timeout`` (or the communicator's ``default_timeout``) bounds the
        wait, raising :class:`~repro.mpi.errors.MpiTimeoutError` on expiry
        instead of wedging the event loop.  ``max_bytes`` models a sized
        receive buffer: a matched message larger than it raises
        :class:`~repro.mpi.errors.TruncationError`.
        """
        msg = yield from self.world._recv(
            self.global_rank, self._g_source(source), tag, self.context,
            timeout=self._effective_timeout(timeout), max_bytes=max_bytes,
        )
        return msg.data

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                 timeout: Optional[float] = None) -> Generator:
        """Like :meth:`recv` but returns the full :class:`Message` envelope."""
        msg = yield from self.world._recv(
            self.global_rank, self._g_source(source), tag, self.context,
            timeout=self._effective_timeout(timeout),
        )
        return self._localize(msg)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              max_bytes: Optional[int] = None) -> Request:
        """Nonblocking receive; ``wait()`` returns the payload.

        Truncation and corruption checks run when the message is matched, so
        the resulting errors propagate through ``wait()``/``test()``.
        """
        done = self.env.event()
        self.world._mailbox(self.global_rank, self.context).match(
            self._g_source(source), tag, done
        )
        rank = self.rank

        def unwrap():
            msg = yield done
            _check_integrity(msg, rank, max_bytes)
            return msg.data

        proc = self.env.process(unwrap(), name=f"irecv r{self.rank} tag{tag}")
        return Request(self.env, proc)

    def sendrecv(
        self,
        senddata: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator:
        """Simultaneous send + receive (deadlock-free pair exchange)."""
        req = self.isend(senddata, dest, tag=sendtag)
        data = yield from self.recv(source=source, tag=recvtag)
        yield from req.wait()
        return data

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Nonblocking probe of the unexpected-message queue."""
        return self.world._mailbox(self.global_rank, self.context).probe(
            self._g_source(source), tag
        )

    def recv_timeout(
        self, timeout: float, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator:
        """Receive with a deadline (sub-generator).

        Returns ``(data, True)`` when a matching message arrives within
        ``timeout`` seconds, ``(None, False)`` otherwise.  On timeout the
        pending receive is withdrawn, so a late message stays queued for the
        next receive rather than vanishing.
        """
        if timeout <= 0:
            raise MpiError("timeout must be positive")
        done = self.env.event()
        box = self.world._mailbox(self.global_rank, self.context)
        box.match(self._g_source(source), tag, done)
        which, value = yield self.env.any_of([done, self.env.timeout(timeout)])
        if which == 0:
            _check_integrity(value, self.rank, None)
            return value.data, True
        if done.triggered:  # arrived at the same instant the clock expired
            _check_integrity(done.value, self.rank, None)
            return done.value.data, True
        box.cancel(done)
        return None, False

    # -- clock / node access -------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def compute(self, flops: float) -> Generator:
        """Charge floating-point work to this rank's processor."""
        yield from self.world.cluster.node(self.global_rank).compute(flops)

    def copy(self, nbytes: float) -> Generator:
        """Charge a local memory copy to this rank's processor."""
        yield from self.world.cluster.node(self.global_rank).copy(nbytes)

    # -- sub-communicators ------------------------------------------------------
    def split(self, color: Optional[int], key: Optional[int] = None) -> Generator:
        """Collective: partition this communicator by ``color`` (MPI_Comm_split).

        Every rank must call it.  Ranks passing the same color form a new
        communicator whose ranks are ordered by ``key`` (default: current
        rank); a ``None`` color returns None (MPI_UNDEFINED).  Sub-generator::

            row_comm = yield from comm.split(color=comm.rank // 4)
        """
        sort_key = self.rank if key is None else key
        entries = yield from self.allgather((color, sort_key, self.global_rank))
        if color is None:
            return None
        members = [
            g for c, k, g in sorted(
                (e for e in entries if e[0] == color), key=lambda e: (e[1], e[2])
            )
        ]
        context = self.world._intern_context(
            (self.context, color, tuple(members))
        )
        sub = Communicator(
            self.world, members.index(self.global_rank), members=members,
            context=context,
        )
        sub.default_timeout = self.default_timeout
        sub.retry_policy = self.retry_policy
        return sub

    # -- collectives (implemented in collectives.py, bound here) -------------
    # These are assigned at import time at the bottom of collectives.py to
    # keep the two files separately readable; see that module for semantics.


def _check_integrity(msg: Message, rank: int, max_bytes: Optional[int]) -> None:
    """Receiver-side checks: sized-buffer truncation and corruption detect."""
    if max_bytes is not None and msg.nbytes > max_bytes:
        raise TruncationError(
            f"rank {rank}: matched message of {msg.nbytes} bytes exceeds "
            f"receive buffer of {max_bytes} bytes "
            f"(source {msg.source}, tag {msg.tag})"
        )
    if msg.corrupted:
        raise CorruptionError(
            f"rank {rank}: message from rank {msg.source} tag {msg.tag} "
            f"failed integrity check (corrupted in transit)"
        )


class MpiWorld:
    """The set of ranks over a simulated cluster.

    ``default_timeout`` / ``retry_policy`` seed every rank communicator's
    fault-tolerance defaults (see :class:`Communicator`).
    """

    def __init__(self, cluster: SimCluster,
                 default_timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.size = len(cluster)
        self._mailboxes: Dict[Tuple[int, int], _Mailbox] = {}
        self._contexts: Dict[Any, int] = {}
        self._procs: List[Process] = []
        self.comms: List[Communicator] = [Communicator(self, r) for r in range(self.size)]
        for comm in self.comms:
            comm.default_timeout = default_timeout
            comm.retry_policy = retry_policy
        self.total_bytes = 0
        self.total_messages = 0

    # -- rank management ----------------------------------------------------
    def spawn(self, program: Callable[[Communicator], Generator], *args, **kwargs) -> None:
        """Launch ``program(comm, *args, **kwargs)`` on every rank."""
        for rank in range(self.size):
            self.spawn_rank(rank, program, *args, **kwargs)

    def spawn_rank(
        self, rank: int, program: Callable[[Communicator], Generator], *args, **kwargs
    ) -> Process:
        """Launch a program on one rank only."""
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} out of range [0, {self.size})")
        gen = program(self.comms[rank], *args, **kwargs)
        proc = self.env.process(gen, name=f"rank{rank}:{getattr(program, '__name__', 'prog')}")
        self._procs.append(proc)
        return proc

    def run(self, until: Any = None) -> List[Any]:
        """Run the simulation until all spawned rank programs finish.

        Returns the per-rank return values in spawn order.
        """
        if not self._procs:
            raise MpiError("no rank programs spawned")
        done = self.env.all_of(self._procs)
        if until is None:
            values = self.env.run(until=done)
        else:
            self.env.run(until=until)
            if not done.processed:
                raise MpiError("rank programs did not finish before 'until'")
            values = done.value
        return values

    # -- internals ------------------------------------------------------------
    def _mailbox(self, rank: int, context: int = 0) -> _Mailbox:
        key = (rank, context)
        box = self._mailboxes.get(key)
        if box is None:
            box = _Mailbox()
            self._mailboxes[key] = box
        return box

    def _intern_context(self, key: Any) -> int:
        """A deterministic context id shared by all members of a split."""
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = len(self._contexts) + 1
            self._contexts[key] = ctx
        return ctx

    def _send(self, src: int, dest: int, tag: int, data: Any,
              comm: Communicator, context: int = 0):
        if not (0 <= dest < self.size):
            raise RankError(f"destination rank {dest} out of range [0, {self.size})")
        msg = Message(src, dest, tag, copy_payload(data), sent_at=self.env.now)
        comm.bytes_sent += msg.nbytes
        comm.messages_sent += 1
        self.total_bytes += msg.nbytes
        self.total_messages += 1
        outcome = None
        if src == dest:
            # Loopback: one memory copy on the local node.
            yield from self.cluster.node(src).copy(msg.nbytes)
        else:
            outcome = yield from self.cluster.transfer(src, dest, msg.nbytes)
            if outcome is not None and not outcome.delivered:
                # Lost in transit: the wire time was spent, nothing arrives.
                return outcome
            if outcome is not None and outcome.corrupted:
                msg.corrupted = True
        msg.arrived_at = self.env.now
        self._mailbox(dest, context).deliver(msg)
        return outcome

    def _recv(self, rank: int, source: int, tag: int, context: int = 0,
              timeout: Optional[float] = None,
              max_bytes: Optional[int] = None):
        if source != ANY_SOURCE and not (0 <= source < self.size):
            raise RankError(f"source rank {source} out of range [0, {self.size})")
        box = self._mailbox(rank, context)
        done = self.env.event()
        box.match(source, tag, done)
        if timeout is None:
            msg = yield done
        else:
            if timeout <= 0:
                raise MpiError("timeout must be positive")
            which, value = yield self.env.any_of([done, self.env.timeout(timeout)])
            if which == 0:
                msg = value
            elif done.triggered:  # matched at the same instant the clock expired
                msg = done.value
            else:
                box.cancel(done)
                src_label = "ANY_SOURCE" if source == ANY_SOURCE else source
                raise MpiTimeoutError(
                    f"rank {rank}: recv(source={src_label}, tag={tag}) timed "
                    f"out after {timeout:g}s at t={self.env.now:.6f}"
                )
        _check_integrity(msg, rank, max_bytes)
        return msg
