"""Point-to-point message passing over the simulated cluster.

The programming model mirrors mpi4py, adapted to the discrete-event engine:
rank programs are *generators* and every communication call is either

* a sub-generator used with ``yield from`` (blocking calls returning values),
  e.g. ``data = yield from comm.recv(source=0)``, or
* an immediate call returning a :class:`Request` whose ``wait()`` is itself a
  sub-generator (nonblocking calls), e.g.::

      req = comm.isend(x, dest=1)
      ...
      yield from req.wait()

Timing model
------------
A message from rank *s* to rank *d* charges the fabric link between the two
nodes (holding it, so concurrent messages over the same pair serialise) for
``sw_overhead + latency + nbytes/bandwidth``.  Loopback messages (``s == d``)
charge the node's memory-copy cost instead.  Blocking ``send`` returns once
the payload is on the wire and buffered at the receiver (buffered-send
semantics, like the small-message eager protocol of the vendor MPIs in §3.1);
``recv`` blocks until a matching message has fully arrived.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..machine.cluster import SimCluster
from ..machine.simulator import Environment, Event, Process
from .datatypes import ANY_SOURCE, ANY_TAG, copy_payload, payload_nbytes
from .errors import MpiError, RankError

__all__ = ["Message", "Request", "Communicator", "MpiWorld", "ANY_SOURCE", "ANY_TAG"]


class Message:
    """An in-flight or buffered message."""

    __slots__ = ("source", "dest", "tag", "data", "nbytes", "sent_at", "arrived_at")

    def __init__(self, source: int, dest: int, tag: int, data: Any, sent_at: float):
        self.source = source
        self.dest = dest
        self.tag = tag
        self.data = data
        self.nbytes = payload_nbytes(data)
        self.sent_at = sent_at
        self.arrived_at: Optional[float] = None

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


class Request:
    """Handle for a nonblocking operation; ``wait()`` is a sub-generator."""

    def __init__(self, env: Environment, event: Event):
        self._env = env
        self._event = event

    @property
    def complete(self) -> bool:
        return self._event.processed

    def wait(self) -> Generator:
        """Sub-generator: block until the operation finishes; returns its value."""
        value = yield self._event
        return value

    def test(self) -> Tuple[bool, Any]:
        """Nonblocking completion probe (flag, value-or-None)."""
        if self._event.processed:
            return True, self._event.value
        return False, None

    @staticmethod
    def waitall(requests: List["Request"]) -> Generator:
        """Sub-generator: wait for every request; returns their values."""
        values = []
        for req in requests:
            values.append((yield from req.wait()))
        return values


class _Mailbox:
    """Per-rank store of arrived-but-unmatched messages plus pending receivers."""

    def __init__(self):
        self.unexpected: List[Message] = []
        # (source, tag, event) for receivers waiting on a match
        self.waiting: List[Tuple[int, int, Event]] = []

    def deliver(self, msg: Message) -> None:
        for i, (source, tag, event) in enumerate(self.waiting):
            if msg.matches(source, tag):
                del self.waiting[i]
                event.succeed(msg)
                return
        self.unexpected.append(msg)

    def match(self, source: int, tag: int, event: Event) -> None:
        for i, msg in enumerate(self.unexpected):
            if msg.matches(source, tag):
                del self.unexpected[i]
                event.succeed(msg)
                return
        self.waiting.append((source, tag, event))

    def cancel(self, event: Event) -> None:
        """Withdraw a pending receive (timeout path)."""
        self.waiting = [entry for entry in self.waiting if entry[2] is not event]

    def probe(self, source: int, tag: int) -> Optional[Message]:
        for msg in self.unexpected:
            if msg.matches(source, tag):
                return msg
        return None


class Communicator:
    """One rank's endpoint into a communication context.

    The world communicator has ``members=None`` (ranks are global node
    indices, context 0); communicators produced by :meth:`split` carry a
    member list mapping their dense local ranks onto global ranks, plus a
    private context whose mailboxes are isolated from every other
    communicator's traffic (so tags never collide across groups).
    """

    def __init__(self, world: "MpiWorld", rank: int,
                 members: Optional[List[int]] = None, context: int = 0):
        self.world = world
        self.rank = rank
        self.members = list(members) if members is not None else None
        self.context = context
        self.size = len(self.members) if self.members is not None else world.size
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- small helpers ----------------------------------------------------
    @property
    def env(self) -> Environment:
        return self.world.env

    @property
    def global_rank(self) -> int:
        """This endpoint's node index in the world."""
        if self.members is None:
            return self.rank
        return self.members[self.rank]

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise RankError(f"{what} rank {r} out of range [0, {self.size})")

    def _g(self, r: int) -> int:
        """Local rank -> global rank (with range check)."""
        self._check_rank(r, "peer")
        return self.members[r] if self.members is not None else r

    def _g_source(self, r: int) -> int:
        return ANY_SOURCE if r == ANY_SOURCE else self._g(r)

    def _localize(self, msg: Message) -> Message:
        """Rewrite a received envelope's source into this comm's rank space."""
        if self.members is not None:
            msg.source = self.members.index(msg.source)
        return msg

    # -- point-to-point ----------------------------------------------------
    def send(self, data: Any, dest: int, tag: int = 0) -> Generator:
        """Blocking buffered send (sub-generator)."""
        yield from self.world._send(
            self.global_rank, self._g(dest), tag, data, comm=self, context=self.context
        )

    def isend(self, data: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; the transfer proceeds as a background process."""
        dest_g = self._g(dest)
        proc = self.env.process(
            self.world._send(
                self.global_rank, dest_g, tag, data, comm=self, context=self.context
            ),
            name=f"isend r{self.rank}->r{dest} tag{tag}",
        )
        return Request(self.env, proc)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Blocking receive (sub-generator returning the payload)."""
        msg = yield from self.world._recv(
            self.global_rank, self._g_source(source), tag, self.context
        )
        return msg.data

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Generator:
        """Like :meth:`recv` but returns the full :class:`Message` envelope."""
        msg = yield from self.world._recv(
            self.global_rank, self._g_source(source), tag, self.context
        )
        return self._localize(msg)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``wait()`` returns the payload."""
        done = self.env.event()
        self.world._mailbox(self.global_rank, self.context).match(
            self._g_source(source), tag, done
        )

        def unwrap():
            msg = yield done
            return msg.data

        proc = self.env.process(unwrap(), name=f"irecv r{self.rank} tag{tag}")
        return Request(self.env, proc)

    def sendrecv(
        self,
        senddata: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator:
        """Simultaneous send + receive (deadlock-free pair exchange)."""
        req = self.isend(senddata, dest, tag=sendtag)
        data = yield from self.recv(source=source, tag=recvtag)
        yield from req.wait()
        return data

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Nonblocking probe of the unexpected-message queue."""
        return self.world._mailbox(self.global_rank, self.context).probe(
            self._g_source(source), tag
        )

    def recv_timeout(
        self, timeout: float, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator:
        """Receive with a deadline (sub-generator).

        Returns ``(data, True)`` when a matching message arrives within
        ``timeout`` seconds, ``(None, False)`` otherwise.  On timeout the
        pending receive is withdrawn, so a late message stays queued for the
        next receive rather than vanishing.
        """
        if timeout <= 0:
            raise MpiError("timeout must be positive")
        done = self.env.event()
        box = self.world._mailbox(self.global_rank, self.context)
        box.match(self._g_source(source), tag, done)
        which, value = yield self.env.any_of([done, self.env.timeout(timeout)])
        if which == 0:
            return value.data, True
        if done.triggered:  # arrived at the same instant the clock expired
            return done.value.data, True
        box.cancel(done)
        return None, False

    # -- clock / node access -------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def compute(self, flops: float) -> Generator:
        """Charge floating-point work to this rank's processor."""
        yield from self.world.cluster.node(self.global_rank).compute(flops)

    def copy(self, nbytes: float) -> Generator:
        """Charge a local memory copy to this rank's processor."""
        yield from self.world.cluster.node(self.global_rank).copy(nbytes)

    # -- sub-communicators ------------------------------------------------------
    def split(self, color: Optional[int], key: Optional[int] = None) -> Generator:
        """Collective: partition this communicator by ``color`` (MPI_Comm_split).

        Every rank must call it.  Ranks passing the same color form a new
        communicator whose ranks are ordered by ``key`` (default: current
        rank); a ``None`` color returns None (MPI_UNDEFINED).  Sub-generator::

            row_comm = yield from comm.split(color=comm.rank // 4)
        """
        sort_key = self.rank if key is None else key
        entries = yield from self.allgather((color, sort_key, self.global_rank))
        if color is None:
            return None
        members = [
            g for c, k, g in sorted(
                (e for e in entries if e[0] == color), key=lambda e: (e[1], e[2])
            )
        ]
        context = self.world._intern_context(
            (self.context, color, tuple(members))
        )
        return Communicator(
            self.world, members.index(self.global_rank), members=members,
            context=context,
        )

    # -- collectives (implemented in collectives.py, bound here) -------------
    # These are assigned at import time at the bottom of collectives.py to
    # keep the two files separately readable; see that module for semantics.


class MpiWorld:
    """The set of ranks over a simulated cluster."""

    def __init__(self, cluster: SimCluster):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.size = len(cluster)
        self._mailboxes: Dict[Tuple[int, int], _Mailbox] = {}
        self._contexts: Dict[Any, int] = {}
        self._procs: List[Process] = []
        self.comms: List[Communicator] = [Communicator(self, r) for r in range(self.size)]
        self.total_bytes = 0
        self.total_messages = 0

    # -- rank management ----------------------------------------------------
    def spawn(self, program: Callable[[Communicator], Generator], *args, **kwargs) -> None:
        """Launch ``program(comm, *args, **kwargs)`` on every rank."""
        for rank in range(self.size):
            self.spawn_rank(rank, program, *args, **kwargs)

    def spawn_rank(
        self, rank: int, program: Callable[[Communicator], Generator], *args, **kwargs
    ) -> Process:
        """Launch a program on one rank only."""
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} out of range [0, {self.size})")
        gen = program(self.comms[rank], *args, **kwargs)
        proc = self.env.process(gen, name=f"rank{rank}:{getattr(program, '__name__', 'prog')}")
        self._procs.append(proc)
        return proc

    def run(self, until: Any = None) -> List[Any]:
        """Run the simulation until all spawned rank programs finish.

        Returns the per-rank return values in spawn order.
        """
        if not self._procs:
            raise MpiError("no rank programs spawned")
        done = self.env.all_of(self._procs)
        if until is None:
            values = self.env.run(until=done)
        else:
            self.env.run(until=until)
            if not done.processed:
                raise MpiError("rank programs did not finish before 'until'")
            values = done.value
        return values

    # -- internals ------------------------------------------------------------
    def _mailbox(self, rank: int, context: int = 0) -> _Mailbox:
        key = (rank, context)
        box = self._mailboxes.get(key)
        if box is None:
            box = _Mailbox()
            self._mailboxes[key] = box
        return box

    def _intern_context(self, key: Any) -> int:
        """A deterministic context id shared by all members of a split."""
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = len(self._contexts) + 1
            self._contexts[key] = ctx
        return ctx

    def _send(self, src: int, dest: int, tag: int, data: Any,
              comm: Communicator, context: int = 0):
        if not (0 <= dest < self.size):
            raise RankError(f"destination rank {dest} out of range [0, {self.size})")
        msg = Message(src, dest, tag, copy_payload(data), sent_at=self.env.now)
        comm.bytes_sent += msg.nbytes
        comm.messages_sent += 1
        self.total_bytes += msg.nbytes
        self.total_messages += 1
        if src == dest:
            # Loopback: one memory copy on the local node.
            yield from self.cluster.node(src).copy(msg.nbytes)
        else:
            yield from self.cluster.transfer(src, dest, msg.nbytes)
        msg.arrived_at = self.env.now
        self._mailbox(dest, context).deliver(msg)

    def _recv(self, rank: int, source: int, tag: int, context: int = 0):
        if source != ANY_SOURCE and not (0 <= source < self.size):
            raise RankError(f"source rank {source} out of range [0, {self.size})")
        done = self.env.event()
        self._mailbox(rank, context).match(source, tag, done)
        msg = yield done
        return msg
