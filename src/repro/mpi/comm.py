"""Point-to-point message passing over the simulated cluster.

The programming model mirrors mpi4py, adapted to the discrete-event engine:
rank programs are *generators* and every communication call is either

* a sub-generator used with ``yield from`` (blocking calls returning values),
  e.g. ``data = yield from comm.recv(source=0)``, or
* an immediate call returning a :class:`Request` whose ``wait()`` is itself a
  sub-generator (nonblocking calls), e.g.::

      req = comm.isend(x, dest=1)
      ...
      yield from req.wait()

Timing model
------------
A message from rank *s* to rank *d* charges the fabric link between the two
nodes (holding it, so concurrent messages over the same pair serialise) for
``sw_overhead + latency + nbytes/bandwidth``.  Loopback messages (``s == d``)
charge the node's memory-copy cost instead.  Blocking ``send`` returns once
the payload is on the wire and buffered at the receiver (buffered-send
semantics, like the small-message eager protocol of the vendor MPIs in §3.1);
``recv`` blocks until a matching message has fully arrived.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..machine.cluster import SimCluster
from ..machine.faults import FaultError
from ..machine.simulator import Environment, Event, Process
from .datatypes import ANY_SOURCE, ANY_TAG, copy_and_size, payload_nbytes
from .errors import (
    CorruptionError,
    DeliveryError,
    MpiError,
    MpiTimeoutError,
    ProcessFailedError,
    RankError,
    RevokedError,
    TruncationError,
)

__all__ = [
    "Message",
    "Request",
    "RetryPolicy",
    "Communicator",
    "MpiWorld",
    "ANY_SOURCE",
    "ANY_TAG",
]

#: Tag space reserved for the fault-tolerant agreement protocol.  Operations
#: tagged at or above this base bypass the revocation check, so ``agree()``
#: and ``shrink()`` keep working on a revoked communicator (ULFM semantics).
#: User tags and the collectives' reserved range (1 << 20) sit below it.
_AGREE_TAG_BASE = 1 << 28


@dataclass(frozen=True)
class RetryPolicy:
    """Retry-with-exponential-backoff for p2p sends over lossy links.

    A send governed by a policy re-transmits when the fabric reports the
    payload lost (or the link transiently down), sleeping ``backoff``
    seconds before the first retry and multiplying by ``factor`` each
    attempt.  After ``max_attempts`` total transmissions it raises
    :class:`~repro.mpi.errors.DeliveryError`.

    ``jitter`` desynchronises retry storms: each backoff sleep is scaled by
    a factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` using the
    world's seeded RNG — when a flapping link burns every rank's send at
    the same instant, their retransmissions spread out instead of slamming
    the fabric in lock-step.  Draws come from one seeded stream in
    simulation event order, so runs stay bit-reproducible.  The default
    (0.0) draws nothing and is byte-identical to the legacy policy.
    """

    max_attempts: int = 4
    backoff: float = 1e-4
    factor: float = 2.0
    jitter: float = 0.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0 or self.factor < 1:
            raise ValueError("backoff must be >= 0 and factor >= 1")
        if not (0 <= self.jitter < 1):
            raise ValueError("jitter must be in [0, 1)")


class Message:
    """An in-flight or buffered message."""

    __slots__ = ("source", "dest", "tag", "data", "nbytes", "sent_at",
                 "arrived_at", "corrupted")

    def __init__(self, source: int, dest: int, tag: int, data: Any, sent_at: float,
                 nbytes: Optional[int] = None):
        self.source = source
        self.dest = dest
        self.tag = tag
        self.data = data
        self.nbytes = payload_nbytes(data) if nbytes is None else nbytes
        self.sent_at = sent_at
        self.arrived_at: Optional[float] = None
        self.corrupted = False

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


class Request:
    """Handle for a nonblocking operation; ``wait()`` is a sub-generator."""

    def __init__(self, env: Environment, event: Event):
        self._env = env
        self._event = event

    @property
    def complete(self) -> bool:
        return self._event.processed

    def wait(self, timeout: Optional[float] = None) -> Generator:
        """Sub-generator: block until the operation finishes; returns its value.

        With ``timeout`` set, raises
        :class:`~repro.mpi.errors.MpiTimeoutError` if the operation has not
        completed within ``timeout`` virtual seconds (the operation itself
        keeps running in the background).
        """
        if timeout is None:
            value = yield self._event
            return value
        if timeout <= 0:
            raise MpiError("timeout must be positive")
        which, value = yield self._env.any_of(
            [self._event, self._env.timeout(timeout)]
        )
        if which == 0:
            return value
        if self._event.triggered:  # completed at the same instant
            if not self._event.ok:
                raise self._event.value
            return self._event.value
        raise MpiTimeoutError(
            f"request did not complete within {timeout:g}s "
            f"(t={self._env.now:.6f})"
        )

    def test(self) -> Tuple[bool, Any]:
        """Nonblocking completion probe (flag, value-or-None).

        Like ``MPI_Test``, a failed operation surfaces here: if the
        underlying operation raised, ``test()`` re-raises that exception
        rather than returning the exception object as a value.
        """
        if self._event.processed:
            if not self._event.ok:
                raise self._event.value
            return True, self._event.value
        return False, None

    @staticmethod
    def waitall(requests: List["Request"]) -> Generator:
        """Sub-generator: wait for every request; returns their values."""
        values = []
        for req in requests:
            values.append((yield from req.wait()))
        return values


class _Mailbox:
    """Per-rank store of arrived-but-unmatched messages plus pending receivers."""

    def __init__(self):
        self.unexpected: List[Message] = []
        # (source, tag, event) for receivers waiting on a match
        self.waiting: List[Tuple[int, int, Event]] = []

    def deliver(self, msg: Message) -> None:
        for i, (source, tag, event) in enumerate(self.waiting):
            if msg.matches(source, tag):
                del self.waiting[i]
                event.succeed(msg)
                return
        self.unexpected.append(msg)

    def match(self, source: int, tag: int, event: Event) -> None:
        for i, msg in enumerate(self.unexpected):
            if msg.matches(source, tag):
                del self.unexpected[i]
                event.succeed(msg)
                return
        self.waiting.append((source, tag, event))

    def cancel(self, event: Event) -> None:
        """Withdraw a pending receive (timeout path)."""
        self.waiting = [entry for entry in self.waiting if entry[2] is not event]

    def probe(self, source: int, tag: int) -> Optional[Message]:
        for msg in self.unexpected:
            if msg.matches(source, tag):
                return msg
        return None


class Communicator:
    """One rank's endpoint into a communication context.

    The world communicator has ``members=None`` (ranks are global node
    indices, context 0); communicators produced by :meth:`split` carry a
    member list mapping their dense local ranks onto global ranks, plus a
    private context whose mailboxes are isolated from every other
    communicator's traffic (so tags never collide across groups).
    """

    def __init__(self, world: "MpiWorld", rank: int,
                 members: Optional[List[int]] = None, context: int = 0):
        self.world = world
        self.rank = rank
        self.members = list(members) if members is not None else None
        self.context = context
        self.size = len(self.members) if self.members is not None else world.size
        self.bytes_sent = 0
        self.messages_sent = 0
        self._agree_seq = 0
        #: Deadline applied to every recv/wait (and hence every collective)
        #: when the call itself passes no explicit timeout.  None = block
        #: forever (the pre-fault-tolerance behaviour).
        self.default_timeout: Optional[float] = None
        #: Default :class:`RetryPolicy` for p2p sends (None = fire and forget).
        self.retry_policy: Optional[RetryPolicy] = None
        #: Optional :class:`~repro.mpi.adaptive.AdaptiveTimeout`: when set,
        #: receives with no explicit timeout derive their deadline from the
        #: observed per-source delivery latency (warmed-up sources only;
        #: cold sources fall back to ``default_timeout``).  Shared across
        #: this rank's sub-communicators so samples survive shrink/grow.
        self.adaptive_timeout = None

    # -- small helpers ----------------------------------------------------
    @property
    def env(self) -> Environment:
        return self.world.env

    @property
    def global_rank(self) -> int:
        """This endpoint's node index in the world."""
        if self.members is None:
            return self.rank
        return self.members[self.rank]

    def _check_rank(self, r: int, what: str) -> None:
        if not (0 <= r < self.size):
            raise RankError(f"{what} rank {r} out of range [0, {self.size})")

    def _g(self, r: int) -> int:
        """Local rank -> global rank (with range check)."""
        self._check_rank(r, "peer")
        return self.members[r] if self.members is not None else r

    def _g_source(self, r: int) -> int:
        return ANY_SOURCE if r == ANY_SOURCE else self._g(r)

    def _localize(self, msg: Message) -> Message:
        """Rewrite a received envelope's source into this comm's rank space."""
        if self.members is not None:
            msg.source = self.members.index(msg.source)
        return msg

    def _effective_timeout(self, timeout: Optional[float]) -> Optional[float]:
        return self.default_timeout if timeout is None else timeout

    def _recv_deadline(self, source_g: int,
                       timeout: Optional[float]) -> Optional[float]:
        """Deadline for one receive: explicit > adaptive > default.

        The adaptive estimate only engages once its source (or, for
        ``ANY_SOURCE``, at least one source) is warmed up — a degraded
        link then stretches the deadline with the observed latency instead
        of tripping a fixed timeout tuned for the healthy fabric.
        """
        if timeout is not None:
            return timeout
        if self.adaptive_timeout is not None:
            adaptive = self.adaptive_timeout.deadline(
                None if source_g == ANY_SOURCE else source_g
            )
            if adaptive is not None:
                return adaptive
        return self.default_timeout

    def _observe_latency(self, msg: "Message") -> None:
        """Feed a matched message's delivery latency to the estimator."""
        if self.adaptive_timeout is not None and msg.arrived_at is not None:
            self.adaptive_timeout.observe(
                msg.source, msg.arrived_at - msg.sent_at
            )

    def _group(self) -> List[int]:
        """This communicator's members as global ranks."""
        if self.members is not None:
            return list(self.members)
        return list(range(self.world.size))

    def _check_revoked(self, tag: int = 0) -> None:
        if tag < _AGREE_TAG_BASE and self.context in self.world._revoked:
            raise RevokedError(
                f"rank {self.rank}: communicator (context {self.context}) "
                f"has been revoked (t={self.env.now:.6f})"
            )

    def _known_failed(self) -> set:
        """Members this rank's failure-detector view has declared dead."""
        dead = self.world._dead_view(self.global_rank)
        if not dead:
            return set()
        return dead & set(self._group())

    # -- point-to-point ----------------------------------------------------
    def send(self, data: Any, dest: int, tag: int = 0,
             retry: Optional[RetryPolicy] = None) -> Generator:
        """Blocking buffered send (sub-generator).

        Without a retry policy the send is fire-and-forget: over a lossy
        fabric the payload may silently vanish (the receiver's timeout
        machinery is then the only detector).  With ``retry`` (or a
        communicator-level ``retry_policy``) the sender observes the
        delivery outcome and re-transmits with exponential backoff, raising
        :class:`~repro.mpi.errors.DeliveryError` once attempts are
        exhausted.
        """
        self._check_revoked(tag)
        policy = retry if retry is not None else self.retry_policy
        dest_g = self._g(dest)
        if dest_g in self.world._dead_view(self.global_rank):
            raise ProcessFailedError(
                f"rank {self.rank}: send to rank {dest} tag {tag} failed: "
                f"rank {dest} declared dead (t={self.env.now:.6f})",
                ranks=(dest_g,),
            )
        if policy is None:
            yield from self.world._send(
                self.global_rank, dest_g, tag, data, comm=self, context=self.context
            )
            return
        from ..machine.faults import LinkFailure

        delay = policy.backoff
        failure = "undelivered"
        for attempt in range(policy.max_attempts):
            if attempt:
                sleep = delay
                if policy.jitter and sleep > 0:
                    # Seeded, event-ordered draw: spread simultaneous
                    # retries out without giving up reproducibility.
                    sleep *= 1.0 + policy.jitter * (
                        2.0 * self.world._backoff_rng.random() - 1.0
                    )
                if sleep > 0:
                    yield self.env.timeout(sleep)
                delay *= policy.factor
            try:
                outcome = yield from self.world._send(
                    self.global_rank, dest_g, tag, data,
                    comm=self, context=self.context,
                )
            except LinkFailure as exc:
                failure = str(exc)  # transient outage: back off and retry
                continue
            if outcome is None or outcome.delivered:
                return
            failure = outcome.reason or "message lost"
        raise DeliveryError(
            f"rank {self.rank}: send to rank {dest} tag {tag} failed after "
            f"{policy.max_attempts} attempt(s) at t={self.env.now:.6f}: {failure}"
        )

    def isend(self, data: Any, dest: int, tag: int = 0,
              retry: Optional[RetryPolicy] = None) -> Request:
        """Nonblocking send; the transfer proceeds as a background process."""
        proc = self.env.process(
            self.send(data, dest, tag=tag, retry=retry),
            name=f"isend r{self.rank}->r{dest} tag{tag}",
        )
        return Request(self.env, proc)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None,
             max_bytes: Optional[int] = None) -> Generator:
        """Blocking receive (sub-generator returning the payload).

        ``timeout`` (or the communicator's ``default_timeout``) bounds the
        wait, raising :class:`~repro.mpi.errors.MpiTimeoutError` on expiry
        instead of wedging the event loop.  ``max_bytes`` models a sized
        receive buffer: a matched message larger than it raises
        :class:`~repro.mpi.errors.TruncationError`.

        With a failure detector attached to the world, a receive whose
        source has been declared dead — or an ``ANY_SOURCE`` receive once
        *all* possible senders are declared dead — raises
        :class:`~repro.mpi.errors.ProcessFailedError` immediately rather
        than wedging until the timeout.
        """
        self._check_revoked(tag)
        source_g = self._g_source(source)
        msg = yield from self.world._recv(
            self.global_rank, source_g, tag, self.context,
            timeout=self._recv_deadline(source_g, timeout),
            max_bytes=max_bytes,
        )
        self._observe_latency(msg)
        return msg.data

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                 timeout: Optional[float] = None) -> Generator:
        """Like :meth:`recv` but returns the full :class:`Message` envelope."""
        self._check_revoked(tag)
        source_g = self._g_source(source)
        msg = yield from self.world._recv(
            self.global_rank, source_g, tag, self.context,
            timeout=self._recv_deadline(source_g, timeout),
        )
        self._observe_latency(msg)  # before _localize rewrites msg.source
        return self._localize(msg)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              max_bytes: Optional[int] = None) -> Request:
        """Nonblocking receive; ``wait()`` returns the payload.

        Truncation and corruption checks run when the message is matched, so
        the resulting errors propagate through ``wait()``/``test()``.
        """
        self._check_revoked(tag)
        done = self.env.event()
        box = self.world._mailbox(self.global_rank, self.context)
        box.match(self._g_source(source), tag, done)
        if not done.triggered:
            self.world._fail_dead_waiters(self.global_rank, self.context)
        rank = self.rank

        def unwrap():
            msg = yield done
            _check_integrity(msg, rank, max_bytes)
            return msg.data

        proc = self.env.process(unwrap(), name=f"irecv r{self.rank} tag{tag}")
        return Request(self.env, proc)

    def sendrecv(
        self,
        senddata: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator:
        """Simultaneous send + receive (deadlock-free pair exchange)."""
        req = self.isend(senddata, dest, tag=sendtag)
        data = yield from self.recv(source=source, tag=recvtag)
        yield from req.wait()
        return data

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Nonblocking probe of the unexpected-message queue."""
        self._check_revoked(tag)
        return self.world._mailbox(self.global_rank, self.context).probe(
            self._g_source(source), tag
        )

    def recv_timeout(
        self, timeout: float, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator:
        """Receive with a deadline (sub-generator).

        Returns ``(data, True)`` when a matching message arrives within
        ``timeout`` seconds, ``(None, False)`` otherwise.  On timeout the
        pending receive is withdrawn, so a late message stays queued for the
        next receive rather than vanishing.
        """
        if timeout <= 0:
            raise MpiError("timeout must be positive")
        self._check_revoked(tag)
        done = self.env.event()
        box = self.world._mailbox(self.global_rank, self.context)
        box.match(self._g_source(source), tag, done)
        if not done.triggered:
            self.world._fail_dead_waiters(self.global_rank, self.context)
        which, value = yield self.env.any_of([done, self.env.timeout(timeout)])
        if which == 0:
            _check_integrity(value, self.rank, None)
            return value.data, True
        if done.triggered:  # arrived at the same instant the clock expired
            _check_integrity(done.value, self.rank, None)
            return done.value.data, True
        box.cancel(done)
        return None, False

    # -- clock / node access -------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def compute(self, flops: float) -> Generator:
        """Charge floating-point work to this rank's processor."""
        yield from self.world.cluster.node(self.global_rank).compute(flops)

    def copy(self, nbytes: float) -> Generator:
        """Charge a local memory copy to this rank's processor."""
        yield from self.world.cluster.node(self.global_rank).copy(nbytes)

    # -- sub-communicators ------------------------------------------------------
    def split(self, color: Optional[int], key: Optional[int] = None) -> Generator:
        """Collective: partition this communicator by ``color`` (MPI_Comm_split).

        Every rank must call it.  Ranks passing the same color form a new
        communicator whose ranks are ordered by ``key`` (default: current
        rank); a ``None`` color returns None (MPI_UNDEFINED).  Sub-generator::

            row_comm = yield from comm.split(color=comm.rank // 4)
        """
        sort_key = self.rank if key is None else key
        entries = yield from self.allgather((color, sort_key, self.global_rank))
        if color is None:
            return None
        members = [
            g for c, k, g in sorted(
                (e for e in entries if e[0] == color), key=lambda e: (e[1], e[2])
            )
        ]
        context = self.world._intern_context(
            (self.context, color, tuple(members))
        )
        self.world._register_context(context, members)
        sub = Communicator(
            self.world, members.index(self.global_rank), members=members,
            context=context,
        )
        sub.default_timeout = self.default_timeout
        sub.retry_policy = self.retry_policy
        sub.adaptive_timeout = self.adaptive_timeout
        return sub

    # -- ULFM-style fault-tolerance primitives -------------------------------
    def revoke(self) -> None:
        """Revoke this communicator (ULFM ``MPI_Comm_revoke``).

        Non-collective and immediate: every pending receive on this
        communicator's context — on *every* rank — fails with
        :class:`~repro.mpi.errors.RevokedError`, and all future operations
        on it raise the same, unblocking survivors stuck in a collective
        broken by a dead rank.  Only :meth:`agree` and :meth:`shrink` keep
        working afterwards; the usual recovery idiom is::

            try:
                result = yield from comm.allreduce(x)
            except ProcessFailedError:
                comm.revoke()                 # unstick everyone else
                comm = yield from comm.shrink()   # survivors continue
        """
        self.world._revoke_context(self.context)

    def _agree_timeout(self, timeout: Optional[float]) -> Optional[float]:
        """Deadline for one agreement exchange.

        With a failure detector attached the agreement blocks for live
        members indefinitely (true ULFM semantics) — dead members surface
        as :class:`~repro.mpi.errors.ProcessFailedError` on the pending
        receive, so no timeout is needed.  Without a detector the only
        failure signal is silence, so a deadline (explicit, or the
        communicator default) bounds the wait and silent members are
        conservatively agreed failed.
        """
        if timeout is not None:
            return timeout
        if self.world.detector is not None:
            return None
        if self.default_timeout is not None:
            return self.default_timeout
        return 0.01

    def agree(self, flag: int = 1, timeout: Optional[float] = None) -> Generator:
        """Fault-tolerant agreement (ULFM ``MPI_Comm_agree``); sub-generator.

        Collective over the surviving members.  Returns ``(agreed_flag,
        failed)`` where ``agreed_flag`` is the bitwise AND of every
        contributing rank's ``flag`` and ``failed`` is a frozenset of
        *global* ranks agreed to have failed — the union of every
        participant's detector view plus any member that did not answer
        within the deadline.

        Works on a revoked communicator.  The protocol is coordinator-based:
        the lowest member not locally known dead collects (flag, dead-set)
        contributions and broadcasts the decision.  With a converged
        detector all ranks pick the same coordinator; a rank whose
        contribution is lost on the wire is conservatively agreed failed and
        will observe ``MpiTimeoutError`` waiting for the decision.
        """
        members = self._group()
        deadline = self._agree_timeout(timeout)
        seq = self._agree_seq
        self._agree_seq += 1
        tag = _AGREE_TAG_BASE + 2 * (seq % (1 << 16))
        failed = set(self._known_failed())
        alive = [r for r, g in enumerate(members) if g not in failed]
        if not alive:
            raise ProcessFailedError(
                f"rank {self.rank}: agree() has no surviving members",
                ranks=failed,
            )
        coord = alive[0]
        retry = self.retry_policy or RetryPolicy(max_attempts=3, backoff=1e-5)
        if self.rank == coord:
            agreed = flag
            for r, g in enumerate(members):
                if r == coord or g in failed:
                    continue
                try:
                    their_flag, their_dead = yield from self._agree_recv(
                        g, tag, deadline
                    )
                except (ProcessFailedError, MpiTimeoutError):
                    failed.add(g)  # dead (or, with no detector, silent) member
                    continue
                agreed &= their_flag
                failed |= set(their_dead)
            decision = (agreed, tuple(sorted(failed)))
            for r, g in enumerate(members):
                if r == coord or g in failed:
                    continue
                try:
                    yield from self.send(decision, dest=r, tag=tag + 1, retry=retry)
                except (MpiError, FaultError):
                    pass  # it will be agreed failed in the next round
            return agreed, frozenset(failed)
        try:
            yield from self.send(
                (flag, tuple(sorted(failed))), dest=coord, tag=tag, retry=retry
            )
        except (MpiError, FaultError):
            pass  # coordinator unreachable; the recv below will surface it
        agreed, failed_t = yield from self._agree_recv(
            members[coord], tag + 1,
            None if deadline is None else deadline * (len(members) + 1),
        )
        return agreed, frozenset(failed_t)

    def _agree_recv(self, source_g: int, tag: int,
                    deadline: Optional[float]) -> Generator:
        """Raw receive for the agreement protocol: bypasses the revocation
        check and the communicator ``default_timeout`` (``deadline=None``
        really blocks, relying on the detector to surface dead peers)."""
        msg = yield from self.world._recv(
            self.global_rank, source_g, tag, self.context, timeout=deadline
        )
        return msg.data

    def shrink(self, timeout: Optional[float] = None) -> Generator:
        """Build a survivor communicator (ULFM ``MPI_Comm_shrink``).

        Collective over the surviving members (works on a revoked
        communicator): agrees on the failed set, then returns a new
        communicator over the sorted survivors with dense remapped ranks
        and a fresh context (pending traffic of the old communicator cannot
        leak in).  ``default_timeout`` / ``retry_policy`` are inherited.
        """
        seq = self._agree_seq  # same on every member under collective discipline
        _, failed = yield from self.agree(timeout=timeout)
        members = self._group()
        survivors = [g for g in members if g not in failed]
        if self.global_rank not in survivors:
            raise ProcessFailedError(
                f"rank {self.rank}: this rank was agreed failed during shrink",
                ranks=failed,
            )
        context = self.world._intern_context(
            ("shrink", self.context, seq, tuple(survivors))
        )
        self.world._register_context(context, survivors)
        sub = Communicator(
            self.world, survivors.index(self.global_rank), members=survivors,
            context=context,
        )
        sub.default_timeout = self.default_timeout
        sub.retry_policy = self.retry_policy
        sub.adaptive_timeout = self.adaptive_timeout
        return sub

    def grow(self, joiners: Sequence[int],
             timeout: Optional[float] = None) -> Generator:
        """Absorb new ranks into a larger communicator (the ULFM dual of
        :meth:`shrink`, modelling the connect/accept side of
        ``MPI_Comm_spawn``).

        Collective over the current members: agrees on the live survivor
        set, then returns a new communicator whose members are the survivors
        in their existing relative order — *rank stability*: no survivor's
        rank shifts because capacity arrived — followed by the ``joiners``
        in sorted global order (deterministic rank assignment; every member
        derives the same numbering without further communication).  Joiners
        are not members of this communicator and therefore cannot take part
        in the collective; each obtains its endpoint into the grown context
        from :meth:`MpiWorld.endpoint` afterwards.  ``default_timeout`` /
        ``retry_policy`` are inherited.
        """
        seq = self._agree_seq  # same on every member under collective discipline
        _, failed = yield from self.agree(timeout=timeout)
        members = self._group()
        survivors = [g for g in members if g not in failed]
        if self.global_rank not in survivors:
            raise ProcessFailedError(
                f"rank {self.rank}: this rank was agreed failed during grow",
                ranks=failed,
            )
        self.world.expand()  # no-op unless the cluster gained nodes
        extra = sorted(set(joiners) - set(survivors))
        for j in extra:
            if not (0 <= j < self.world.size):
                raise RankError(
                    f"joiner rank {j} out of range [0, {self.world.size}) — "
                    f"add the node to the cluster before growing"
                )
        new_members = survivors + extra
        context = self.world._intern_context(
            ("grow", self.context, seq, tuple(new_members))
        )
        self.world._register_context(context, new_members)
        sub = Communicator(
            self.world, new_members.index(self.global_rank),
            members=new_members, context=context,
        )
        sub.default_timeout = self.default_timeout
        sub.retry_policy = self.retry_policy
        sub.adaptive_timeout = self.adaptive_timeout
        return sub

    # -- collectives (implemented in collectives.py, bound here) -------------
    # These are assigned at import time at the bottom of collectives.py to
    # keep the two files separately readable; see that module for semantics.


def _check_integrity(msg: Message, rank: int, max_bytes: Optional[int]) -> None:
    """Receiver-side checks: sized-buffer truncation and corruption detect."""
    if max_bytes is not None and msg.nbytes > max_bytes:
        raise TruncationError(
            f"rank {rank}: matched message of {msg.nbytes} bytes exceeds "
            f"receive buffer of {max_bytes} bytes "
            f"(source {msg.source}, tag {msg.tag})"
        )
    if msg.corrupted:
        raise CorruptionError(
            f"rank {rank}: message from rank {msg.source} tag {msg.tag} "
            f"failed integrity check (corrupted in transit)"
        )


class MpiWorld:
    """The set of ranks over a simulated cluster.

    ``default_timeout`` / ``retry_policy`` seed every rank communicator's
    fault-tolerance defaults (see :class:`Communicator`).
    """

    def __init__(self, cluster: SimCluster,
                 default_timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 detector: Optional[Any] = None,
                 adaptive_timeouts: bool = False,
                 adaptive_params: Optional[dict] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.size = len(cluster)
        # Seeded stream for RetryPolicy backoff jitter: derived from the
        # fault plan's seed (0 when no fault layer), drawn in simulation
        # event order — deterministic, and untouched when jitter is 0.
        faults = getattr(cluster, "faults", None)
        plan_seed = faults.plan.seed if faults is not None else 0
        self._backoff_rng = random.Random(plan_seed ^ 0x5B0FF)
        self._mailboxes: Dict[Tuple[int, int], _Mailbox] = {}
        self._contexts: Dict[Any, int] = {}
        #: context id -> member global ranks (None = all world ranks); feeds
        #: the "all possible senders dead" check for ANY_SOURCE receives.
        self._context_members: Dict[int, Optional[Tuple[int, ...]]] = {0: None}
        self._revoked: set = set()
        self._procs: List[Process] = []
        self.comms: List[Communicator] = [Communicator(self, r) for r in range(self.size)]
        for comm in self.comms:
            comm.default_timeout = default_timeout
            comm.retry_policy = retry_policy
        self.total_bytes = 0
        self.total_messages = 0
        self.detector = None
        self._adaptive_params: Optional[dict] = None
        if adaptive_timeouts or adaptive_params is not None:
            self.enable_adaptive_timeouts(**(adaptive_params or {}))
        if detector is not None:
            self.attach_detector(detector)

    def enable_adaptive_timeouts(self, **params) -> None:
        """Arm adaptive receive deadlines on every rank endpoint.

        Each rank gets its *own* :class:`~repro.mpi.adaptive.AdaptiveTimeout`
        (latency is observed per observer/source pair); endpoints created
        later by :meth:`expand` inherit the same parameters.
        """
        from .adaptive import AdaptiveTimeout

        self._adaptive_params = dict(params)
        for comm in self.comms:
            if comm.adaptive_timeout is None:
                comm.adaptive_timeout = AdaptiveTimeout(**params)

    # -- elastic membership --------------------------------------------------
    def expand(self) -> int:
        """Grow the world to match the cluster's node count (idempotent).

        Called after :meth:`~repro.machine.cluster.SimCluster.add_node`:
        every new node index gets a world communicator endpoint, and
        existing world endpoints learn the larger rank range.  Mailboxes
        are created lazily, so no per-rank state beyond the endpoint is
        needed.  Returns the new world size.
        """
        new_size = len(self.cluster)
        if new_size <= self.size:
            return self.size
        template = self.comms[0] if self.comms else None
        for r in range(self.size, new_size):
            comm = Communicator(self, r)
            if template is not None:
                comm.default_timeout = template.default_timeout
                comm.retry_policy = template.retry_policy
            if self._adaptive_params is not None:
                from .adaptive import AdaptiveTimeout

                comm.adaptive_timeout = AdaptiveTimeout(
                    **self._adaptive_params
                )
            self.comms.append(comm)
        self.size = new_size
        for comm in self.comms:
            if comm.members is None:
                comm.size = new_size  # world endpoints see the wider range
        return self.size

    def endpoint(self, global_rank: int, context: int = 0) -> Communicator:
        """Build an endpoint for ``global_rank`` into an existing context.

        The joiner side of :meth:`Communicator.grow`: survivors receive the
        grown communicator from the collective, while a joiner — which was
        not a member of the old communicator — constructs its endpoint from
        the registered context (the accept/connect side of ``MPI_Comm_spawn``
        in a real ULFM runtime).
        """
        if not (0 <= global_rank < self.size):
            raise RankError(
                f"rank {global_rank} out of range [0, {self.size})"
            )
        if context == 0:
            return self.comms[global_rank]
        members = self._context_members.get(context)
        if members is None:
            raise MpiError(f"unknown communicator context {context}")
        if global_rank not in members:
            raise RankError(
                f"rank {global_rank} is not a member of context {context}"
            )
        comm = Communicator(
            self, members.index(global_rank),
            members=list(members), context=context,
        )
        world_comm = self.comms[global_rank]
        comm.default_timeout = world_comm.default_timeout
        comm.retry_policy = world_comm.retry_policy
        comm.adaptive_timeout = world_comm.adaptive_timeout
        return comm

    # -- failure detection --------------------------------------------------
    def attach_detector(self, detector) -> None:
        """Bind a :class:`~repro.mpi.detector.FailureDetector` to this world.

        Starts the detector and subscribes to its declarations: when
        observer *o* declares rank *t* dead, every receive *o* has pending
        from *t* (and every ``ANY_SOURCE`` receive whose possible senders
        are now all dead in *o*'s view) fails with
        :class:`~repro.mpi.errors.ProcessFailedError`.  Views are
        per-observer: a rank only reacts to its *own* detector's opinion.
        """
        self.detector = detector
        detector.start()
        detector.subscribe(self._on_detector_event)

    def _on_detector_event(self, time: float, kind: str, observer: int,
                           target: int, detail: str) -> None:
        if kind == "declare_dead":
            self._fail_dead_waiters(observer)

    def _dead_view(self, rank: int) -> frozenset:
        """Ranks that ``rank``'s own detector view has declared dead."""
        if self.detector is None:
            return frozenset()
        return frozenset(self.detector.view(rank).dead)

    def _possible_senders(self, rank: int, context: int) -> List[int]:
        members = self._context_members.get(context)
        pool = members if members is not None else range(self.size)
        return [g for g in pool if g != rank]

    def _fail_dead_waiters(self, rank: int, context: Optional[int] = None) -> None:
        """Fail rank ``rank``'s pending receives whose senders are dead.

        A receive from a specific dead source fails at once; an
        ``ANY_SOURCE`` receive fails only when *every* possible sender in
        its context is dead (a live sender might still satisfy it).
        """
        dead = self._dead_view(rank)
        if not dead:
            return
        for (r, ctx), box in list(self._mailboxes.items()):
            if r != rank or (context is not None and ctx != context):
                continue
            if not box.waiting:
                continue
            senders = self._possible_senders(rank, ctx)
            all_dead = bool(senders) and all(g in dead for g in senders)
            keep = []
            for source, tag, event in box.waiting:
                if source != ANY_SOURCE and source in dead:
                    event.fail(ProcessFailedError(
                        f"rank {rank}: recv(source={source}, tag={tag}) "
                        f"failed: rank {source} declared dead "
                        f"(t={self.env.now:.6f})",
                        ranks=(source,),
                    ))
                elif source == ANY_SOURCE and all_dead:
                    event.fail(ProcessFailedError(
                        f"rank {rank}: recv(ANY_SOURCE, tag={tag}) failed: "
                        f"all possible senders {sorted(senders)} declared "
                        f"dead (t={self.env.now:.6f})",
                        ranks=senders,
                    ))
                else:
                    keep.append((source, tag, event))
            box.waiting = keep

    # -- revocation ---------------------------------------------------------
    def _register_context(self, context: int, members: List[int]) -> None:
        self._context_members.setdefault(context, tuple(members))

    def _revoke_context(self, context: int) -> None:
        if context in self._revoked:
            return
        self._revoked.add(context)
        for (rank, ctx), box in list(self._mailboxes.items()):
            if ctx != context:
                continue
            keep = []
            for source, tag, event in box.waiting:
                if tag != ANY_TAG and tag >= _AGREE_TAG_BASE:
                    keep.append((source, tag, event))  # agree() survives revoke
                    continue
                event.fail(RevokedError(
                    f"rank {rank}: recv(tag={tag}) aborted: communicator "
                    f"(context {context}) revoked (t={self.env.now:.6f})"
                ))
            box.waiting = keep

    # -- rank management ----------------------------------------------------
    def spawn(self, program: Callable[[Communicator], Generator], *args, **kwargs) -> None:
        """Launch ``program(comm, *args, **kwargs)`` on every rank."""
        for rank in range(self.size):
            self.spawn_rank(rank, program, *args, **kwargs)

    def spawn_rank(
        self, rank: int, program: Callable[[Communicator], Generator], *args, **kwargs
    ) -> Process:
        """Launch a program on one rank only."""
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} out of range [0, {self.size})")
        gen = program(self.comms[rank], *args, **kwargs)
        proc = self.env.process(gen, name=f"rank{rank}:{getattr(program, '__name__', 'prog')}")
        self._procs.append(proc)
        return proc

    def run(self, until: Any = None) -> List[Any]:
        """Run the simulation until all spawned rank programs finish.

        Returns the per-rank return values in spawn order.
        """
        if not self._procs:
            raise MpiError("no rank programs spawned")
        done = self.env.all_of(self._procs)
        if until is None:
            values = self.env.run(until=done)
        else:
            self.env.run(until=until)
            if not done.processed:
                raise MpiError("rank programs did not finish before 'until'")
            values = done.value
        return values

    # -- internals ------------------------------------------------------------
    def _mailbox(self, rank: int, context: int = 0) -> _Mailbox:
        key = (rank, context)
        box = self._mailboxes.get(key)
        if box is None:
            box = _Mailbox()
            self._mailboxes[key] = box
        return box

    def _intern_context(self, key: Any) -> int:
        """A deterministic context id shared by all members of a split."""
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = len(self._contexts) + 1
            self._contexts[key] = ctx
        return ctx

    def _send(self, src: int, dest: int, tag: int, data: Any,
              comm: Communicator, context: int = 0):
        if not (0 <= dest < self.size):
            raise RankError(f"destination rank {dest} out of range [0, {self.size})")
        payload, nbytes = copy_and_size(data)
        msg = Message(src, dest, tag, payload, sent_at=self.env.now, nbytes=nbytes)
        comm.bytes_sent += msg.nbytes
        comm.messages_sent += 1
        self.total_bytes += msg.nbytes
        self.total_messages += 1
        outcome = None
        if src == dest:
            # Loopback: one memory copy on the local node.
            yield from self.cluster.node(src).copy(msg.nbytes)
        else:
            outcome = yield from self.cluster.transfer(src, dest, msg.nbytes)
            if outcome is not None and not outcome.delivered:
                # Lost in transit: the wire time was spent, nothing arrives.
                return outcome
            if outcome is not None and outcome.corrupted:
                msg.corrupted = True
        msg.arrived_at = self.env.now
        self._mailbox(dest, context).deliver(msg)
        return outcome

    def _recv(self, rank: int, source: int, tag: int, context: int = 0,
              timeout: Optional[float] = None,
              max_bytes: Optional[int] = None):
        if source != ANY_SOURCE and not (0 <= source < self.size):
            raise RankError(f"source rank {source} out of range [0, {self.size})")
        box = self._mailbox(rank, context)
        done = self.env.event()
        box.match(source, tag, done)
        if not done.triggered and self.detector is not None:
            # A buffered message may still satisfy the receive; otherwise a
            # dead (set of) sender(s) fails it now instead of at the timeout.
            self._fail_dead_waiters(rank, context)
        if timeout is None:
            msg = yield done
        else:
            if timeout <= 0:
                raise MpiError("timeout must be positive")
            which, value = yield self.env.any_of([done, self.env.timeout(timeout)])
            if which == 0:
                msg = value
            elif done.triggered:  # matched at the same instant the clock expired
                msg = done.value
            else:
                box.cancel(done)
                src_label = "ANY_SOURCE" if source == ANY_SOURCE else source
                raise MpiTimeoutError(
                    f"rank {rank}: recv(source={src_label}, tag={tag}) timed "
                    f"out after {timeout:g}s at t={self.env.now:.6f}"
                )
        _check_integrity(msg, rank, max_bytes)
        return msg
