"""Payload handling for the message-passing layer.

Payloads are numpy arrays (the fast path, sized by ``nbytes``) or arbitrary
picklable Python objects (sized by a pessimistic pickle estimate).  Messages
always deliver *copies*, matching MPI semantics: mutating the send buffer
after the call never aliases the receiver's data.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

__all__ = ["payload_nbytes", "copy_payload", "ANY_SOURCE", "ANY_TAG"]

#: Wildcards for receive matching (mirror MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(data: Any) -> int:
    """Wire size of a payload in bytes."""
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if type(data).__name__ == "PhantomArray":  # timing-mode payloads
        return int(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    if data is None:
        return 0
    try:
        return len(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        # Unpicklable control object: charge a token-sized header.
        return 64


def copy_payload(data: Any) -> Any:
    """Deep-enough copy for message delivery (value semantics)."""
    if isinstance(data, np.ndarray):
        return np.array(data, copy=True)
    if type(data).__name__ == "PhantomArray":  # immutable metadata-only payload
        return data
    if isinstance(data, (int, float, complex, str, bytes, bool, type(None))):
        return data
    return pickle.loads(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))
