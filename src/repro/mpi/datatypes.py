"""Payload handling for the message-passing layer.

Payloads are numpy arrays (the fast path, sized by ``nbytes``) or arbitrary
picklable Python objects (sized by a pessimistic pickle estimate).  Messages
always deliver *copies*, matching MPI semantics: mutating the send buffer
after the call never aliases the receiver's data.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

__all__ = ["payload_nbytes", "copy_payload", "copy_and_size", "ANY_SOURCE", "ANY_TAG"]

#: Wildcards for receive matching (mirror MPI_ANY_SOURCE / MPI_ANY_TAG).
ANY_SOURCE = -1
ANY_TAG = -1

_SCALARS = (int, float, complex, str, bytes, bool, type(None))


def _deeply_immutable(data: Any) -> bool:
    """True when a payload is immutable all the way down (safe to share)."""
    if isinstance(data, _SCALARS):
        return True
    if isinstance(data, (tuple, frozenset)):
        return all(_deeply_immutable(item) for item in data)
    return False


def payload_nbytes(data: Any) -> int:
    """Wire size of a payload in bytes."""
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if type(data).__name__ == "PhantomArray":  # timing-mode payloads
        return int(data.nbytes)
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data)
    if data is None:
        return 0
    try:
        return len(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        # Unpicklable control object: charge a token-sized header.
        return 64


def copy_payload(data: Any) -> Any:
    """Deep-enough copy for message delivery (value semantics)."""
    if isinstance(data, np.ndarray):
        return np.array(data, copy=True)
    if type(data).__name__ == "PhantomArray":  # immutable metadata-only payload
        return data
    if isinstance(data, _SCALARS):
        return data
    if isinstance(data, (tuple, frozenset)) and _deeply_immutable(data):
        # Control messages (rank tuples, split keys) need no copy at all.
        return data
    return pickle.loads(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL))


def copy_and_size(data: Any):
    """``(copy_payload(data), payload_nbytes(copy))`` with one serialisation.

    The send path needs both the delivered copy and the wire size; computing
    them separately pickles general payloads up to three times (dumps for the
    copy, loads, dumps again for the size).  This helper shares one blob for
    both, preserving the exact byte counts of :func:`payload_nbytes`.
    """
    if isinstance(data, np.ndarray):
        return np.array(data, copy=True), int(data.nbytes)
    if type(data).__name__ == "PhantomArray":
        return data, int(data.nbytes)
    if data is None:
        return None, 0
    if isinstance(data, bytes):
        return data, len(data)
    if isinstance(data, (bytearray, memoryview)):
        return (
            pickle.loads(pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)),
            len(data),
        )
    # Unpicklable payloads raise here, exactly as copy_payload() always has.
    blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
    if isinstance(data, _SCALARS) or (
        isinstance(data, (tuple, frozenset)) and _deeply_immutable(data)
    ):
        return data, len(blob)
    return pickle.loads(blob), len(blob)
