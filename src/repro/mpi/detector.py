"""Heartbeat/gossip failure detection over the simulated fabric.

PR 1's fault tolerance *reacted* to failures: an operation touching a dead
node raised, or a receive timed out.  Real HPC runtimes detect failures
proactively — every node periodically heartbeats its peers and silence, not
an oracle, marks a rank dead.  :class:`FailureDetector` is that service:

* **Emitter** — each node, every ``period`` virtual seconds, sends a small
  out-of-band ping to every peer.  Pings travel the same links as data
  (charged the link's latency/bandwidth model, degraded-link slowdown
  included, and subject to the plan's seeded message loss and link outages)
  but bypass the NIC injection/ejection ports, modelling the dedicated
  low-priority heartbeat channel of real RAS networks — application
  congestion alone can never starve the detector into a false positive.
* **Monitor** — each node, every period, checks how long each peer has been
  silent.  Silence beyond ``miss_grace`` periods increments a suspicion
  counter (a ``suspect`` event on the first miss); ``threshold`` consecutive
  misses declare the peer dead (``declare_dead``).  Any heartbeat resets the
  counter.
* **Gossip** — each ping piggybacks the sender's set of declared-dead ranks.
  A receiver adopts a gossiped death only when its own silence corroborates
  it (no heartbeat from the accused within the grace window), so a partition
  between one pair cannot poison observers that still hear the accused rank;
  when the accused really is dead, gossip short-circuits the remaining
  misses and detection converges cluster-wide in O(1) gossip hops.

Views are **per-observer**: rank *r*'s opinion of who is dead lives in
``view(r)`` and observers may transiently disagree (exactly like a real
gossip detector).  Nothing consults the injector's ground truth to *decide*
— it is only used to emit/receive pings, so detection latency and false
positives are honest, measurable quantities (see the R2 ``reconfiguration``
experiment).

* **Join/admission** — membership is elastic.  A new (or replacement) node
  announces itself over the same out-of-band channel to every known rank;
  the *coordinator* — the lowest rank each receiver believes alive — answers
  with an admission ack, and on receipt the joiner is absorbed: every
  observer's view gains (or resets) the rank, its emitter/monitor processes
  start, and its death event re-arms.  Announces and acks pay real wire time
  and are subject to the same loss model as heartbeats, so the joiner
  retries each admission window until acked (``join_announce`` / ``admit``
  events; see ``docs/ELASTICITY.md``).

Determinism: the schedule is pure virtual time and the only randomness is
the fault plan's own seeded per-message loss draw, taken in simulation event
order — identical seed + config reproduce bit-identical detection times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..machine.cluster import SimCluster
from ..machine.simulator import Environment, Event, Interrupt, Process

__all__ = ["HeartbeatConfig", "FailureDetector", "DetectorEvent"]

#: Kinds of detector events reported to listeners / kept in the log.
DETECTOR_EVENT_KINDS = (
    "suspect", "clear_suspect", "declare_dead", "join_announce", "admit",
)


@dataclass(frozen=True)
class HeartbeatConfig:
    """Tuning knobs of the heartbeat failure detector.

    Attributes
    ----------
    period:
        Virtual seconds between heartbeat rounds (emit and monitor both tick
        at this rate).
    miss_grace:
        Silence longer than ``miss_grace * period`` counts as a missed
        heartbeat (values > 1 absorb wire time and tick skew).
    threshold:
        Consecutive missed-heartbeat ticks before a peer is declared dead.
        Expected detection latency after a crash is roughly
        ``(miss_grace + threshold) * period``; raising it trades latency for
        robustness to message loss.
    ping_bytes:
        Modelled heartbeat payload size (charges the link bandwidth term).
    """

    period: float = 1e-4
    miss_grace: float = 2.5
    threshold: int = 3
    ping_bytes: int = 32

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("heartbeat period must be positive")
        if self.miss_grace < 1:
            raise ValueError("miss_grace must be >= 1 period")
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.ping_bytes < 0:
            raise ValueError("ping_bytes must be non-negative")

    @property
    def window(self) -> float:
        """Approximate worst-case detection latency after a crash."""
        return (self.miss_grace + self.threshold) * self.period


@dataclass(frozen=True)
class DetectorEvent:
    """One entry of the detector's event log."""

    time: float
    kind: str       # one of DETECTOR_EVENT_KINDS
    observer: int   # the rank holding the opinion
    target: int     # the rank the opinion is about
    detail: str = ""


class _RankView:
    """One observer's live opinion of its peers."""

    __slots__ = ("last_heard", "suspicion", "suspected", "dead")

    def __init__(self, peers: Sequence[int], start: float):
        self.last_heard: Dict[int, float] = {p: start for p in peers}
        self.suspicion: Dict[int, int] = {p: 0 for p in peers}
        self.suspected: Set[int] = set()
        self.dead: Set[int] = set()


class FailureDetector:
    """A per-node heartbeat/gossip failure detection service.

    Bound to a :class:`~repro.machine.cluster.SimCluster`; ``start()``
    launches one emitter and one monitor process per rank.  Consumers
    subscribe to ``suspect`` / ``clear_suspect`` / ``declare_dead`` events,
    wait on :meth:`death_event`, or poll :meth:`view`.  Both the MPI layer
    (:meth:`~repro.mpi.comm.MpiWorld.attach_detector`) and the run-time
    kernel's ``shrink_restripe`` policy build on this service.
    """

    def __init__(self, cluster: SimCluster,
                 config: Optional[HeartbeatConfig] = None,
                 ranks: Optional[Sequence[int]] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.config = config if config is not None else HeartbeatConfig()
        self.ranks: List[int] = (
            sorted(ranks) if ranks is not None else list(range(len(cluster)))
        )
        if len(self.ranks) < 2:
            raise ValueError("failure detection needs at least 2 ranks")
        self.views: Dict[int, _RankView] = {}
        self.log: List[DetectorEvent] = []
        self._listeners: List[Callable[[float, str, int, int, str], None]] = []
        self._death_events: Dict[int, Event] = {}
        self._first_declared: Dict[int, Tuple[float, int]] = {}
        self._procs: Dict[int, List[Process]] = {}
        self._started = False
        # -- join protocol state -----------------------------------------
        self._join_events: Dict[int, Event] = {}
        self._join_requested: Dict[int, float] = {}
        self._admitted: Dict[int, Tuple[float, int]] = {}
        self._announce_seen: Set[Tuple[int, int]] = set()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "FailureDetector":
        """Launch the per-rank emitter/monitor processes (idempotent)."""
        if self._started:
            return self
        self._started = True
        now = self.env.now
        for r in self.ranks:
            self.views[r] = _RankView([p for p in self.ranks if p != r], now)
            self._launch(r)
        return self

    def stop(self) -> None:
        """Kill every detector process (end-of-run cleanup)."""
        for procs in self._procs.values():
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt("detector stopped")
        self._procs.clear()
        self._started = False

    def _launch(self, rank: int) -> None:
        self._procs[rank] = [
            self.env.process(self._emitter(rank), name=f"hb-emit:{rank}"),
            self.env.process(self._monitor(rank), name=f"hb-mon:{rank}"),
        ]

    # -- observation API ---------------------------------------------------
    def subscribe(self, fn: Callable[[float, str, int, int, str], None]) -> None:
        """``fn(time, kind, observer, target, detail)`` on every event."""
        self._listeners.append(fn)

    def view(self, rank: int) -> _RankView:
        """Rank ``rank``'s current opinion of its peers."""
        if not self._started:
            raise RuntimeError("detector not started")
        return self.views[rank]

    def dead_according_to(self, rank: int) -> Set[int]:
        """The set of ranks observer ``rank`` has declared dead."""
        return set(self.view(rank).dead)

    def death_event(self, target: int) -> Event:
        """An event fired when *any* observer first declares ``target`` dead.

        Already-declared targets return an already-succeeded event, so
        ``env.run(until=detector.death_event(n))`` never blocks spuriously.
        """
        ev = self._death_events.get(target)
        if ev is None:
            ev = self.env.event()
            self._death_events[target] = ev
            if target in self._first_declared:
                ev.succeed(self._first_declared[target])
        return ev

    def first_detection(self, target: int) -> Optional[Tuple[float, int]]:
        """(time, observer) of the first declaration of ``target``, or None."""
        return self._first_declared.get(target)

    def declared_dead(self) -> Set[int]:
        """Every rank declared dead by at least one observer."""
        return set(self._first_declared)

    def clear(self, target: int) -> None:
        """Forget a declaration (the rank was revived/restarted).

        Resets every observer's opinion of ``target``, re-arms its death
        event, and restarts the rank's own detector processes if they exited
        when its node died.
        """
        now = self.env.now
        for view in self.views.values():
            view.dead.discard(target)
            view.suspected.discard(target)
            if target in view.suspicion:
                view.suspicion[target] = 0
                view.last_heard[target] = now
        self._first_declared.pop(target, None)
        self._death_events.pop(target, None)
        if self._started:
            procs = self._procs.get(target, [])
            if not any(p.is_alive for p in procs):
                view = self.views[target]
                for peer in view.last_heard:
                    view.last_heard[peer] = now
                    view.suspicion[peer] = 0
                self._launch(target)

    # -- join / admission protocol -----------------------------------------
    def request_join(self, rank: int, max_attempts: int = 8) -> Event:
        """Run the admission handshake for ``rank``; returns its join event.

        The joiner announces itself to every known rank over the out-of-band
        channel (real wire time, loss model applied); whichever receiver
        believes itself coordinator — the lowest rank alive in its own view —
        acks, and the ack's arrival absorbs the rank into the membership.
        The returned event fires with ``(time, coordinator)`` at absorption.
        Announces are retried every admission window (``config.window``) up
        to ``max_attempts`` times, so a lossy fabric delays admission rather
        than wedging it.  Re-joining a previously-declared-dead rank resets
        every observer's opinion of it (replacement hardware at the same
        index); a rank beyond the current membership is appended and peers
        learn of it at absorption time.
        """
        if not self._started:
            raise RuntimeError("detector not started")
        ev = self._join_events.get(rank)
        if ev is not None and not ev.triggered:
            return ev  # handshake already in flight
        if (rank in self.views and rank not in self._first_declared
                and self._node_alive(rank) and ev is not None):
            return ev  # already a live, admitted member
        ev = self.env.event()
        self._join_events[rank] = ev
        self._admitted.pop(rank, None)
        self._join_requested[rank] = self.env.now
        self._announce_seen = {
            pair for pair in self._announce_seen if pair[1] != rank
        }
        self.env.process(self._joiner(rank, max_attempts),
                         name=f"hb-join:{rank}")
        return ev

    def join_event(self, rank: int) -> Event:
        """The admission event for ``rank`` (see :meth:`request_join`)."""
        ev = self._join_events.get(rank)
        if ev is None:
            raise KeyError(f"no join requested for rank {rank}")
        return ev

    def admitted(self, rank: int) -> Optional[Tuple[float, int]]:
        """(time, coordinator) of ``rank``'s admission, or None."""
        return self._admitted.get(rank)

    def join_latency(self, rank: int) -> Optional[float]:
        """Virtual seconds from announce to admission, or None if pending."""
        info = self._admitted.get(rank)
        if info is None or rank not in self._join_requested:
            return None
        return info[0] - self._join_requested[rank]

    def _joiner(self, rank: int, max_attempts: int):
        cfg = self.config
        try:
            for _attempt in range(max_attempts):
                if not self._node_alive(rank):
                    return  # the candidate died before admission
                for peer in [p for p in self.ranks if p != rank]:
                    self.env.process(
                        self._announce(rank, peer),
                        name=f"hb-announce:{rank}->{peer}",
                    )
                yield self.env.timeout(cfg.window)
                if rank in self._admitted:
                    return
        except Interrupt:
            return

    def _announce(self, src: int, dst: int):
        """One join announcement over the out-of-band channel."""
        arrived = yield from self._oob_send(src, dst)
        if arrived:
            self._receive_announce(dst, src)

    def _admit_ack(self, coord: int, joiner: int):
        """The coordinator's admission ack back to the joiner."""
        arrived = yield from self._oob_send(coord, joiner)
        if arrived:
            self._absorb(joiner, coord)

    def _oob_send(self, src: int, dst: int):
        """Sub-generator: one control message over the heartbeat channel.

        Same cost and loss model as :meth:`_ping`; returns True when the
        payload arrived.
        """
        cfg = self.config
        cluster = self.cluster
        faults = cluster.faults
        fabric = cluster.fabric
        if faults is not None and not faults.link_up(src, dst):
            return False
        link = fabric.spec.link_for(fabric.same_board(src, dst))
        factor = faults.link_factor(src, dst) if faults is not None else 1.0
        wire = (
            link.sw_overhead + link.latency
            + cfg.ping_bytes / (link.bandwidth * factor)
        )
        try:
            yield self.env.timeout(wire)
        except Interrupt:
            return False
        if faults is not None:
            if (not faults.alive(src) or not faults.alive(dst)
                    or not faults.link_up(src, dst)):
                return False
            if faults.sample_delivery(src, dst, cfg.ping_bytes) != "delivered":
                return False
        return True

    def _receive_announce(self, dst: int, src: int) -> None:
        if dst not in self.views or not self._node_alive(dst):
            return
        if (dst, src) not in self._announce_seen:
            self._announce_seen.add((dst, src))
            self._emit("join_announce", dst, src, f"rank {src} announcing")
        if src in self._admitted:
            return  # late duplicate; already absorbed
        view = self.views[dst]
        live = [r for r in self.ranks if r != src and r not in view.dead]
        coord = min(live) if live else dst
        if dst == coord:
            self.env.process(
                self._admit_ack(dst, src), name=f"hb-admit:{dst}->{src}"
            )

    def _absorb(self, rank: int, coordinator: int) -> None:
        """Complete admission: membership mutation + event fan-out."""
        if rank in self._admitted:
            return
        now = self.env.now
        self._admitted[rank] = (now, coordinator)
        if rank in self.views:
            # Rejoin at an existing index: reset every opinion of it and
            # restart its own detector processes.
            self.clear(rank)
        else:
            self.ranks.append(rank)
            self.ranks.sort()
            for r, view in self.views.items():
                if r != rank:
                    view.last_heard[rank] = now
                    view.suspicion[rank] = 0
            self.views[rank] = _RankView(
                [p for p in self.ranks if p != rank], now
            )
            if self._started:
                self._launch(rank)
        self._emit("admit", coordinator, rank, f"rank {rank} admitted")
        ev = self._join_events.get(rank)
        if ev is not None and not ev.triggered:
            ev.succeed((now, coordinator))

    # -- event plumbing ----------------------------------------------------
    def _emit(self, kind: str, observer: int, target: int, detail: str) -> None:
        ev = DetectorEvent(self.env.now, kind, observer, target, detail)
        self.log.append(ev)
        for fn in self._listeners:
            fn(ev.time, ev.kind, ev.observer, ev.target, ev.detail)

    def _declare(self, observer: int, target: int, detail: str) -> None:
        view = self.views[observer]
        if target in view.dead:
            return
        view.dead.add(target)
        view.suspected.discard(target)
        self._emit("declare_dead", observer, target, detail)
        if target not in self._first_declared:
            self._first_declared[target] = (self.env.now, observer)
            ev = self._death_events.get(target)
            if ev is not None and not ev.triggered:
                ev.succeed((self.env.now, observer))

    # -- the detector processes --------------------------------------------
    def _node_alive(self, rank: int) -> bool:
        faults = self.cluster.faults
        return faults is None or faults.alive(rank)

    def _emitter(self, rank: int):
        cfg = self.config
        try:
            while True:
                yield self.env.timeout(cfg.period)
                if not self._node_alive(rank):
                    return  # a dead node stops heartbeating — that IS the signal
                dead = tuple(sorted(self.views[rank].dead))
                for peer in self.ranks:
                    if peer != rank:
                        self.env.process(
                            self._ping(rank, peer, dead),
                            name=f"hb:{rank}->{peer}",
                        )
        except Interrupt:
            return

    def _ping(self, src: int, dst: int, gossip_dead: Tuple[int, ...]):
        cfg = self.config
        cluster = self.cluster
        faults = cluster.faults
        fabric = cluster.fabric
        if faults is not None and not faults.link_up(src, dst):
            return  # lost in the outage
        link = fabric.spec.link_for(fabric.same_board(src, dst))
        factor = faults.link_factor(src, dst) if faults is not None else 1.0
        wire = (
            link.sw_overhead + link.latency
            + cfg.ping_bytes / (link.bandwidth * factor)
        )
        try:
            yield self.env.timeout(wire)
        except Interrupt:
            return
        if faults is not None:
            if (not faults.alive(src) or not faults.alive(dst)
                    or not faults.link_up(src, dst)):
                return
            if faults.sample_delivery(src, dst, cfg.ping_bytes) != "delivered":
                return  # heartbeat lost on the lossy fabric
        self._receive_heartbeat(dst, src, gossip_dead)

    def _receive_heartbeat(self, dst: int, src: int,
                           gossip_dead: Tuple[int, ...]) -> None:
        view = self.views[dst]
        now = self.env.now
        if src not in view.dead:
            view.last_heard[src] = now
        grace = self.config.miss_grace * self.config.period
        for target in gossip_dead:
            if target == dst or target in view.dead:
                continue
            # Adopt gossip only when locally corroborated by silence.
            if now - view.last_heard.get(target, now) > grace:
                self._declare(dst, target, f"gossip from rank {src}")

    def _monitor(self, rank: int):
        cfg = self.config
        grace = cfg.miss_grace * cfg.period
        try:
            while True:
                yield self.env.timeout(cfg.period)
                if not self._node_alive(rank):
                    return
                view = self.views[rank]
                now = self.env.now
                # Peers come from the view each tick: membership is elastic,
                # and an absorbed joiner must be monitored from then on.
                for peer in list(view.last_heard):
                    if peer in view.dead:
                        continue
                    if now - view.last_heard[peer] > grace:
                        view.suspicion[peer] += 1
                        if peer not in view.suspected:
                            view.suspected.add(peer)
                            self._emit(
                                "suspect", rank, peer,
                                f"silent for {now - view.last_heard[peer]:.6f}s",
                            )
                        if view.suspicion[peer] >= cfg.threshold:
                            self._declare(
                                rank, peer,
                                f"{view.suspicion[peer]} missed heartbeats",
                            )
                    elif view.suspicion[peer]:
                        view.suspicion[peer] = 0
                        view.suspected.discard(peer)
                        self._emit("clear_suspect", rank, peer, "heartbeat resumed")
        except Interrupt:
            return
