"""Heartbeat/gossip failure detection over the simulated fabric.

PR 1's fault tolerance *reacted* to failures: an operation touching a dead
node raised, or a receive timed out.  Real HPC runtimes detect failures
proactively — every node periodically heartbeats its peers and silence, not
an oracle, marks a rank dead.  :class:`FailureDetector` is that service:

* **Emitter** — each node, every ``period`` virtual seconds, sends a small
  out-of-band ping to every peer.  Pings travel the same links as data
  (charged the link's latency/bandwidth model, degraded-link slowdown
  included, and subject to the plan's seeded message loss and link outages)
  but bypass the NIC injection/ejection ports, modelling the dedicated
  low-priority heartbeat channel of real RAS networks — application
  congestion alone can never starve the detector into a false positive.
* **Monitor** — each node, every period, checks how long each peer has been
  silent.  Silence beyond ``miss_grace`` periods increments a suspicion
  counter (a ``suspect`` event on the first miss); ``threshold`` consecutive
  misses declare the peer dead (``declare_dead``).  Any heartbeat resets the
  counter.
* **Gossip** — each ping piggybacks the sender's set of declared-dead ranks.
  A receiver adopts a gossiped death only when its own silence corroborates
  it (no heartbeat from the accused within the grace window), so a partition
  between one pair cannot poison observers that still hear the accused rank;
  when the accused really is dead, gossip short-circuits the remaining
  misses and detection converges cluster-wide in O(1) gossip hops.

Views are **per-observer**: rank *r*'s opinion of who is dead lives in
``view(r)`` and observers may transiently disagree (exactly like a real
gossip detector).  Nothing consults the injector's ground truth to *decide*
— it is only used to emit/receive pings, so detection latency and false
positives are honest, measurable quantities (see the R2 ``reconfiguration``
experiment).

* **Join/admission** — membership is elastic.  A new (or replacement) node
  announces itself over the same out-of-band channel to every known rank;
  the *coordinator* — the lowest rank each receiver believes alive — answers
  with an admission ack, and on receipt the joiner is absorbed: every
  observer's view gains (or resets) the rank, its emitter/monitor processes
  start, and its death event re-arms.  Announces and acks pay real wire time
  and are subject to the same loss model as heartbeats, so the joiner
  retries each admission window until acked (``join_announce`` / ``admit``
  events; see ``docs/ELASTICITY.md``).

* **Adaptive suspicion (gray failures)** — with ``adaptive=True`` the grace
  window is no longer the fixed ``miss_grace * period``: each observer keeps
  a Jacobson/Karels estimator of every peer's heartbeat *inter-arrival*
  time, and silence is judged against ``mean + phi * dev`` (clamped between
  the configured grace and ``max_grace_periods``).  A degraded or jittery
  link stretches the observed intervals, the grace stretches with them, and
  the detector stops false-positiving — the phi-accrual idea.
* **RTT probes / suspected_slow** — with ``rtt_probe_every > 0`` each rank
  round-trips a probe to one live peer per window (round-robin, staggered
  by rank so the aggregate load stays O(n)); the *ack charges real CPU on
  the target node*, so a limping processor (``slow_node``) inflates the
  measured RTT even though its link is healthy.  The probe body is a fixed
  benchmark of known nominal cost: acks whose measured *service time*
  exceeds ``slow_factor ×`` that nominal are slow samples (wire latency
  cancels out, and an idle-but-limping node stays visible); streaks pool
  cluster-wide, and ``slow_threshold`` consecutive slow
  samples raise a ``suspect_slow`` state (distinct from
  ``suspected``/``dead`` — the rank is alive, just limping), while
  ``slow_clear_threshold`` consecutive normal samples clear it
  (``clear_slow``).  The runtime's ``migrate_stragglers`` policy drains
  and restores nodes off this signal.

Determinism: the schedule is pure virtual time and the only randomness is
the fault plan's own seeded per-message loss draw, taken in simulation event
order — identical seed + config reproduce bit-identical detection times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..machine.cluster import SimCluster
from ..machine.faults import FaultError
from ..machine.simulator import Environment, Event, Interrupt, Process
from .adaptive import RttEstimator

__all__ = ["HeartbeatConfig", "FailureDetector", "DetectorEvent"]

#: Kinds of detector events reported to listeners / kept in the log.
DETECTOR_EVENT_KINDS = (
    "suspect", "clear_suspect", "declare_dead", "join_announce", "admit",
    "suspect_slow", "clear_slow",
)


@dataclass(frozen=True)
class HeartbeatConfig:
    """Tuning knobs of the heartbeat failure detector.

    Attributes
    ----------
    period:
        Virtual seconds between heartbeat rounds (emit and monitor both tick
        at this rate).
    miss_grace:
        Silence longer than ``miss_grace * period`` counts as a missed
        heartbeat (values > 1 absorb wire time and tick skew).
    threshold:
        Consecutive missed-heartbeat ticks before a peer is declared dead.
        Expected detection latency after a crash is roughly
        ``(miss_grace + threshold) * period``; raising it trades latency for
        robustness to message loss.
    ping_bytes:
        Modelled heartbeat payload size (charges the link bandwidth term).
    adaptive:
        When True, the silence grace per peer is derived from the observed
        heartbeat inter-arrival estimate (``mean + phi * dev``) instead of
        the fixed ``miss_grace * period`` — degraded/jittery links stretch
        the grace instead of tripping it.  The fixed grace stays the floor
        and ``max_grace_periods * period`` the ceiling.  Off by default:
        legacy configs behave byte-identically.
    phi:
        Deviation multiplier for the adaptive grace (Jacobson's k=4).
    peak_margin:
        Adaptive-grace floor as a multiple of the peer's decaying *peak*
        inter-arrival gap.  ``mean + phi * dev`` converges back toward the
        per-sample jitter under random loss, but loss *streaks* recur: a
        gap the channel has already survived once must not read as death
        the next time.  Values > 1 leave headroom above the worst observed
        gap.
    max_grace_periods:
        Upper clamp of the adaptive grace, in periods — a limping-but-alive
        peer can stretch patience only so far before real suspicion.
    rtt_probe_every:
        Every ``rtt_probe_every`` periods each rank round-trips an RTT
        probe to one live peer (round-robin); the ack charges ``probe_cpu``
        seconds on the target's (possibly limping, possibly contended)
        CPU.  0 disables probing — the default, so legacy runs schedule no
        new events.
    probe_cpu:
        CPU seconds a target spends producing a probe ack.  This is what
        makes a ``slow_node`` visible: its ack is stretched by 1/cpu_factor
        and queues behind its (slower) application work.
    slow_factor:
        A probe ack whose measured service time exceeds ``slow_factor ×``
        the nominal ``probe_cpu`` cost counts as a slow sample.
    slow_threshold:
        Consecutive slow samples (pooled across observers) before
        ``suspect_slow`` is raised.
    slow_clear_threshold:
        Consecutive normal samples (pooled) before a slow suspicion clears.
    """

    period: float = 1e-4
    miss_grace: float = 2.5
    threshold: int = 3
    ping_bytes: int = 32
    adaptive: bool = False
    phi: float = 4.0
    peak_margin: float = 2.0
    max_grace_periods: float = 20.0
    rtt_probe_every: int = 0
    probe_cpu: float = 5e-6
    slow_factor: float = 3.0
    slow_threshold: int = 3
    slow_clear_threshold: int = 2

    def __post_init__(self):
        if self.period <= 0:
            raise ValueError("heartbeat period must be positive")
        if self.miss_grace < 1:
            raise ValueError("miss_grace must be >= 1 period")
        if self.threshold < 1:
            raise ValueError("threshold must be >= 1")
        if self.ping_bytes < 0:
            raise ValueError("ping_bytes must be non-negative")
        if self.phi < 0:
            raise ValueError("phi must be non-negative")
        if self.peak_margin < 1:
            raise ValueError("peak_margin must be >= 1")
        if self.max_grace_periods < self.miss_grace:
            raise ValueError("max_grace_periods must be >= miss_grace")
        if self.rtt_probe_every < 0:
            raise ValueError("rtt_probe_every must be >= 0 (0 disables)")
        if self.probe_cpu < 0:
            raise ValueError("probe_cpu must be non-negative")
        if self.slow_factor <= 1:
            raise ValueError("slow_factor must be > 1")
        if self.slow_threshold < 1 or self.slow_clear_threshold < 1:
            raise ValueError("slow thresholds must be >= 1")

    @property
    def window(self) -> float:
        """Approximate worst-case detection latency after a crash."""
        return (self.miss_grace + self.threshold) * self.period


@dataclass(frozen=True)
class DetectorEvent:
    """One entry of the detector's event log."""

    time: float
    kind: str       # one of DETECTOR_EVENT_KINDS
    observer: int   # the rank holding the opinion
    target: int     # the rank the opinion is about
    detail: str = ""


class _RankView:
    """One observer's live opinion of its peers."""

    __slots__ = (
        "last_heard", "suspicion", "suspected", "dead",
        "intervals", "rtt",
    )

    def __init__(self, peers: Sequence[int], start: float):
        self.last_heard: Dict[int, float] = {p: start for p in peers}
        self.suspicion: Dict[int, int] = {p: 0 for p in peers}
        self.suspected: Set[int] = set()
        self.dead: Set[int] = set()
        # -- gray-failure state (adaptive / RTT probing) ------------------
        self.intervals: Dict[int, RttEstimator] = {}   # heartbeat gaps
        self.rtt: Dict[int, RttEstimator] = {}         # probe round trips

    def reset_gray(self, peer: int) -> None:
        """Forget all latency history for ``peer`` (replaced hardware)."""
        self.intervals.pop(peer, None)
        self.rtt.pop(peer, None)


class FailureDetector:
    """A per-node heartbeat/gossip failure detection service.

    Bound to a :class:`~repro.machine.cluster.SimCluster`; ``start()``
    launches one emitter and one monitor process per rank.  Consumers
    subscribe to ``suspect`` / ``clear_suspect`` / ``declare_dead`` events,
    wait on :meth:`death_event`, or poll :meth:`view`.  Both the MPI layer
    (:meth:`~repro.mpi.comm.MpiWorld.attach_detector`) and the run-time
    kernel's ``shrink_restripe`` policy build on this service.
    """

    def __init__(self, cluster: SimCluster,
                 config: Optional[HeartbeatConfig] = None,
                 ranks: Optional[Sequence[int]] = None):
        self.cluster = cluster
        self.env: Environment = cluster.env
        self.config = config if config is not None else HeartbeatConfig()
        self.ranks: List[int] = (
            sorted(ranks) if ranks is not None else list(range(len(cluster)))
        )
        if len(self.ranks) < 2:
            raise ValueError("failure detection needs at least 2 ranks")
        self.views: Dict[int, _RankView] = {}
        self.log: List[DetectorEvent] = []
        self._listeners: List[Callable[[float, str, int, int, str], None]] = []
        self._death_events: Dict[int, Event] = {}
        self._first_declared: Dict[int, Tuple[float, int]] = {}
        self._first_slow: Dict[int, Tuple[float, int]] = {}
        # Slow-suspicion evidence is pooled cluster-wide: baselines are per
        # observer (each learns its own path's RTT), but slow/normal sample
        # streaks aggregate across observers so staggered round-robin probes
        # reach the threshold in ~threshold windows instead of
        # ~threshold × n windows.
        self._slow: Set[int] = set()
        self._slow_streak: Dict[int, int] = {}
        self._normal_streak: Dict[int, int] = {}
        # Heartbeat gaps pool detector-wide too: random message loss is a
        # fabric property, and a loss *streak* is rare per pair but common
        # across n(n-1) streams.  The pooled peak teaches every observer
        # the fabric's worst survivable gap long before its own pair
        # happens to produce one.  The decay is scaled to the pool's
        # aggregate sample rate so the watermark's lifetime matches a
        # single stream's (decay is per sample, and the pool sees n(n-1)
        # samples in the time one pair sees one).
        n = len(self.ranks)
        self._gap_pool = RttEstimator(
            peak_decay=RttEstimator.PEAK_DECAY / (n * (n - 1)))
        self._procs: Dict[int, List[Process]] = {}
        self._started = False
        # -- join protocol state -----------------------------------------
        self._join_events: Dict[int, Event] = {}
        self._join_requested: Dict[int, float] = {}
        self._admitted: Dict[int, Tuple[float, int]] = {}
        self._announce_seen: Set[Tuple[int, int]] = set()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "FailureDetector":
        """Launch the per-rank emitter/monitor processes (idempotent)."""
        if self._started:
            return self
        self._started = True
        now = self.env.now
        for r in self.ranks:
            self.views[r] = _RankView([p for p in self.ranks if p != r], now)
            self._launch(r)
        return self

    def stop(self) -> None:
        """Kill every detector process (end-of-run cleanup)."""
        for procs in self._procs.values():
            for proc in procs:
                if proc.is_alive:
                    proc.interrupt("detector stopped")
        self._procs.clear()
        self._started = False

    def _launch(self, rank: int) -> None:
        self._procs[rank] = [
            self.env.process(self._emitter(rank), name=f"hb-emit:{rank}"),
            self.env.process(self._monitor(rank), name=f"hb-mon:{rank}"),
        ]
        if self.config.rtt_probe_every > 0:
            self._procs[rank].append(
                self.env.process(self._prober(rank), name=f"hb-rtt:{rank}")
            )

    # -- observation API ---------------------------------------------------
    def subscribe(self, fn: Callable[[float, str, int, int, str], None]) -> None:
        """``fn(time, kind, observer, target, detail)`` on every event."""
        self._listeners.append(fn)

    def view(self, rank: int) -> _RankView:
        """Rank ``rank``'s current opinion of its peers."""
        if not self._started:
            raise RuntimeError("detector not started")
        return self.views[rank]

    def dead_according_to(self, rank: int) -> Set[int]:
        """The set of ranks observer ``rank`` has declared dead."""
        return set(self.view(rank).dead)

    def death_event(self, target: int) -> Event:
        """An event fired when *any* observer first declares ``target`` dead.

        Already-declared targets return an already-succeeded event, so
        ``env.run(until=detector.death_event(n))`` never blocks spuriously.
        """
        ev = self._death_events.get(target)
        if ev is None:
            ev = self.env.event()
            self._death_events[target] = ev
            if target in self._first_declared:
                ev.succeed(self._first_declared[target])
        return ev

    def first_detection(self, target: int) -> Optional[Tuple[float, int]]:
        """(time, observer) of the first declaration of ``target``, or None."""
        return self._first_declared.get(target)

    def declared_dead(self) -> Set[int]:
        """Every rank declared dead by at least one observer."""
        return set(self._first_declared)

    # -- gray-failure observation ------------------------------------------
    def slow_suspects(self) -> Set[int]:
        """The set of ranks currently suspected slow (pooled evidence)."""
        return set(self._slow)

    def suspected_slow(self, target: int) -> bool:
        """True while the pooled probe evidence holds a slow suspicion."""
        return target in self._slow

    def first_slow(self, target: int) -> Optional[Tuple[float, int]]:
        """(time, observer) of the first ``suspect_slow`` of target, or None."""
        return self._first_slow.get(target)

    def rtt_estimate(self, observer: int,
                     target: int) -> Optional[RttEstimator]:
        """Observer's probe-RTT estimator for ``target`` (None until warm)."""
        return self.view(observer).rtt.get(target)

    def clear(self, target: int) -> None:
        """Forget a declaration (the rank was revived/restarted).

        Resets every observer's opinion of ``target``, re-arms its death
        event, and restarts the rank's own detector processes if they exited
        when its node died.
        """
        now = self.env.now
        for view in self.views.values():
            view.dead.discard(target)
            view.suspected.discard(target)
            view.reset_gray(target)
            if target in view.suspicion:
                view.suspicion[target] = 0
                view.last_heard[target] = now
        self._first_declared.pop(target, None)
        self._first_slow.pop(target, None)
        self._slow.discard(target)
        self._slow_streak.pop(target, None)
        self._normal_streak.pop(target, None)
        self._death_events.pop(target, None)
        if self._started:
            # A crashed rank's emitter/monitor exit at their next tick, but
            # longer-interval processes (the RTT prober wakes every
            # ``rtt_probe_every`` periods) can sleep straight through a
            # short death window — so "all dead" is the wrong relaunch
            # test.  If *any* process died while the rank was down, restart
            # the whole set: interrupt the stale survivors and relaunch.
            procs = self._procs.get(target, [])
            alive = [p for p in procs if p.is_alive]
            if len(alive) < len(procs) and self._node_alive(target):
                for p in alive:
                    p.interrupt("detector restart")
                view = self.views[target]
                for peer in view.last_heard:
                    view.last_heard[peer] = now
                    view.suspicion[peer] = 0
                self._launch(target)

    # -- join / admission protocol -----------------------------------------
    def request_join(self, rank: int, max_attempts: int = 8) -> Event:
        """Run the admission handshake for ``rank``; returns its join event.

        The joiner announces itself to every known rank over the out-of-band
        channel (real wire time, loss model applied); whichever receiver
        believes itself coordinator — the lowest rank alive in its own view —
        acks, and the ack's arrival absorbs the rank into the membership.
        The returned event fires with ``(time, coordinator)`` at absorption.
        Announces are retried every admission window (``config.window``) up
        to ``max_attempts`` times, so a lossy fabric delays admission rather
        than wedging it.  Re-joining a previously-declared-dead rank resets
        every observer's opinion of it (replacement hardware at the same
        index); a rank beyond the current membership is appended and peers
        learn of it at absorption time.
        """
        if not self._started:
            raise RuntimeError("detector not started")
        ev = self._join_events.get(rank)
        if ev is not None and not ev.triggered:
            return ev  # handshake already in flight
        if (rank in self.views and rank not in self._first_declared
                and self._node_alive(rank) and ev is not None):
            return ev  # already a live, admitted member
        ev = self.env.event()
        self._join_events[rank] = ev
        self._admitted.pop(rank, None)
        self._join_requested[rank] = self.env.now
        self._announce_seen = {
            pair for pair in self._announce_seen if pair[1] != rank
        }
        self.env.process(self._joiner(rank, max_attempts),
                         name=f"hb-join:{rank}")
        return ev

    def join_event(self, rank: int) -> Event:
        """The admission event for ``rank`` (see :meth:`request_join`)."""
        ev = self._join_events.get(rank)
        if ev is None:
            raise KeyError(f"no join requested for rank {rank}")
        return ev

    def admitted(self, rank: int) -> Optional[Tuple[float, int]]:
        """(time, coordinator) of ``rank``'s admission, or None."""
        return self._admitted.get(rank)

    def join_latency(self, rank: int) -> Optional[float]:
        """Virtual seconds from announce to admission, or None if pending."""
        info = self._admitted.get(rank)
        if info is None or rank not in self._join_requested:
            return None
        return info[0] - self._join_requested[rank]

    def _joiner(self, rank: int, max_attempts: int):
        cfg = self.config
        try:
            for _attempt in range(max_attempts):
                if not self._node_alive(rank):
                    return  # the candidate died before admission
                for peer in [p for p in self.ranks if p != rank]:
                    self.env.process(
                        self._announce(rank, peer),
                        name=f"hb-announce:{rank}->{peer}",
                    )
                yield self.env.timeout(cfg.window)
                if rank in self._admitted:
                    return
        except Interrupt:
            return

    def _announce(self, src: int, dst: int):
        """One join announcement over the out-of-band channel."""
        arrived = yield from self._oob_send(src, dst)
        if arrived:
            self._receive_announce(dst, src)

    def _admit_ack(self, coord: int, joiner: int):
        """The coordinator's admission ack back to the joiner."""
        arrived = yield from self._oob_send(coord, joiner)
        if arrived:
            self._absorb(joiner, coord)

    def _oob_send(self, src: int, dst: int):
        """Sub-generator: one control message over the heartbeat channel.

        Same cost and loss model as :meth:`_ping`; returns True when the
        payload arrived.
        """
        cfg = self.config
        cluster = self.cluster
        faults = cluster.faults
        fabric = cluster.fabric
        if faults is not None and not faults.link_up(src, dst):
            return False
        link = fabric.spec.link_for(fabric.same_board(src, dst))
        factor = faults.link_factor(src, dst) if faults is not None else 1.0
        wire = (
            link.sw_overhead + link.latency
            + cfg.ping_bytes / (link.bandwidth * factor)
        )
        try:
            yield self.env.timeout(wire)
        except Interrupt:
            return False
        if faults is not None:
            if (not faults.alive(src) or not faults.alive(dst)
                    or not faults.link_up(src, dst)):
                return False
            if faults.sample_delivery(src, dst, cfg.ping_bytes) != "delivered":
                return False
        return True

    def _receive_announce(self, dst: int, src: int) -> None:
        if dst not in self.views or not self._node_alive(dst):
            return
        if (dst, src) not in self._announce_seen:
            self._announce_seen.add((dst, src))
            self._emit("join_announce", dst, src, f"rank {src} announcing")
        if src in self._admitted:
            return  # late duplicate; already absorbed
        view = self.views[dst]
        live = [r for r in self.ranks if r != src and r not in view.dead]
        coord = min(live) if live else dst
        if dst == coord:
            self.env.process(
                self._admit_ack(dst, src), name=f"hb-admit:{dst}->{src}"
            )

    def _absorb(self, rank: int, coordinator: int) -> None:
        """Complete admission: membership mutation + event fan-out."""
        if rank in self._admitted:
            return
        now = self.env.now
        self._admitted[rank] = (now, coordinator)
        if rank in self.views:
            # Rejoin at an existing index: reset every opinion of it and
            # restart its own detector processes.
            self.clear(rank)
        else:
            self.ranks.append(rank)
            self.ranks.sort()
            for r, view in self.views.items():
                if r != rank:
                    view.last_heard[rank] = now
                    view.suspicion[rank] = 0
            self.views[rank] = _RankView(
                [p for p in self.ranks if p != rank], now
            )
            if self._started:
                self._launch(rank)
        self._emit("admit", coordinator, rank, f"rank {rank} admitted")
        ev = self._join_events.get(rank)
        if ev is not None and not ev.triggered:
            ev.succeed((now, coordinator))

    # -- event plumbing ----------------------------------------------------
    def _emit(self, kind: str, observer: int, target: int, detail: str) -> None:
        ev = DetectorEvent(self.env.now, kind, observer, target, detail)
        self.log.append(ev)
        for fn in self._listeners:
            fn(ev.time, ev.kind, ev.observer, ev.target, ev.detail)

    def _declare(self, observer: int, target: int, detail: str) -> None:
        view = self.views[observer]
        if target in view.dead:
            return
        view.dead.add(target)
        view.suspected.discard(target)
        self._emit("declare_dead", observer, target, detail)
        if target not in self._first_declared:
            self._first_declared[target] = (self.env.now, observer)
            ev = self._death_events.get(target)
            if ev is not None and not ev.triggered:
                ev.succeed((self.env.now, observer))

    # -- the detector processes --------------------------------------------
    def _node_alive(self, rank: int) -> bool:
        faults = self.cluster.faults
        return faults is None or faults.alive(rank)

    def _emitter(self, rank: int):
        cfg = self.config
        try:
            while True:
                yield self.env.timeout(cfg.period)
                if not self._node_alive(rank):
                    return  # a dead node stops heartbeating — that IS the signal
                dead = tuple(sorted(self.views[rank].dead))
                for peer in self.ranks:
                    if peer != rank:
                        self.env.process(
                            self._ping(rank, peer, dead),
                            name=f"hb:{rank}->{peer}",
                        )
        except Interrupt:
            return

    def _ping(self, src: int, dst: int, gossip_dead: Tuple[int, ...]):
        cfg = self.config
        cluster = self.cluster
        faults = cluster.faults
        fabric = cluster.fabric
        if faults is not None and not faults.link_up(src, dst):
            return  # lost in the outage
        link = fabric.spec.link_for(fabric.same_board(src, dst))
        factor = faults.link_factor(src, dst) if faults is not None else 1.0
        wire = (
            link.sw_overhead + link.latency
            + cfg.ping_bytes / (link.bandwidth * factor)
        )
        try:
            yield self.env.timeout(wire)
        except Interrupt:
            return
        if faults is not None:
            if (not faults.alive(src) or not faults.alive(dst)
                    or not faults.link_up(src, dst)):
                return
            if faults.sample_delivery(src, dst, cfg.ping_bytes) != "delivered":
                return  # heartbeat lost on the lossy fabric
        self._receive_heartbeat(dst, src, gossip_dead)

    def _grace(self, view: _RankView, peer: int) -> float:
        """Silence tolerated for ``peer`` before a tick counts as a miss.

        Fixed mode: ``miss_grace * period``.  Adaptive mode: the
        Jacobson/Karels deadline over that peer's observed heartbeat
        inter-arrival times — additionally floored at ``peak_margin x``
        the decaying peak gap (loss streaks recur; a survived gap is
        survivable) — floored at the fixed grace (never twitchier than
        the legacy detector) and capped at ``max_grace_periods``.
        """
        cfg = self.config
        base = cfg.miss_grace * cfg.period
        if not cfg.adaptive:
            return base
        want = base
        est = view.intervals.get(peer)
        if est is not None and est.samples >= 2:
            want = max(want, est.deadline(cfg.phi),
                       est.peak * cfg.peak_margin)
        if self._gap_pool.samples >= 2:
            want = max(want, self._gap_pool.peak * cfg.peak_margin)
        return min(want, cfg.max_grace_periods * cfg.period)

    def _receive_heartbeat(self, dst: int, src: int,
                           gossip_dead: Tuple[int, ...]) -> None:
        view = self.views[dst]
        now = self.env.now
        if src not in view.dead:
            if self.config.adaptive:
                interval = now - view.last_heard.get(src, now)
                if interval > 0:
                    est = view.intervals.get(src)
                    if est is None:
                        est = view.intervals[src] = RttEstimator()
                    est.observe(interval)
                    self._gap_pool.observe(interval)
            view.last_heard[src] = now
        for target in gossip_dead:
            if target == dst or target in view.dead:
                continue
            # Adopt gossip only when locally corroborated by silence.
            if now - view.last_heard.get(target, now) > self._grace(view, target):
                self._declare(dst, target, f"gossip from rank {src}")

    def _monitor(self, rank: int):
        cfg = self.config
        try:
            while True:
                yield self.env.timeout(cfg.period)
                if not self._node_alive(rank):
                    return
                view = self.views[rank]
                now = self.env.now
                # Peers come from the view each tick: membership is elastic,
                # and an absorbed joiner must be monitored from then on.
                for peer in list(view.last_heard):
                    if peer in view.dead:
                        continue
                    if now - view.last_heard[peer] > self._grace(view, peer):
                        view.suspicion[peer] += 1
                        if peer not in view.suspected:
                            view.suspected.add(peer)
                            self._emit(
                                "suspect", rank, peer,
                                f"silent for {now - view.last_heard[peer]:.6f}s",
                            )
                        if view.suspicion[peer] >= cfg.threshold:
                            self._declare(
                                rank, peer,
                                f"{view.suspicion[peer]} missed heartbeats",
                            )
                    elif view.suspicion[peer]:
                        view.suspicion[peer] = 0
                        view.suspected.discard(peer)
                        self._emit("clear_suspect", rank, peer, "heartbeat resumed")
        except Interrupt:
            return

    # -- RTT probing (gray-failure / straggler detection) ------------------
    def _prober(self, rank: int):
        """Round-trip an RTT probe to one live peer per window, round-robin.

        One probe per window (not one per peer) keeps the aggregate probe
        load O(n) instead of O(n²): with every observer probing every peer
        each window, the CPU charge on an already-limping node can exceed
        its remaining capacity and the measurement itself wedges the
        cluster.  Starting each rank's rotation at its own index staggers
        the observers so a given target still sees ≈1 probe per window.
        """
        cfg = self.config
        interval = cfg.rtt_probe_every * cfg.period
        offset = rank
        try:
            while True:
                yield self.env.timeout(interval)
                if not self._node_alive(rank):
                    return
                view = self.views[rank]
                peers = [
                    p for p in self.ranks if p != rank and p not in view.dead
                ]
                if not peers:
                    continue
                peer = peers[offset % len(peers)]
                offset += 1
                self.env.process(
                    self._probe(rank, peer),
                    name=f"hb-probe:{rank}->{peer}",
                )
        except Interrupt:
            return

    def _probe(self, src: int, dst: int):
        """One probe round trip: request wire time, target CPU, ack wire time.

        The ack charges ``probe_cpu`` seconds on the target's CPU *through
        its resource queue* — a limping node both stretches the charge
        (1/cpu_factor) and queues it behind its slowed application work.
        The ack carries the benchmark's *self-timed CPU cost* (the standard
        canary technique: a fixed workload of known nominal cost times
        itself rusage-style, so the sample isolates the node's execution
        rate — immune to queueing behind co-mapped threads, yet visible
        even on an otherwise idle limping node), while the full round-trip
        time feeds :meth:`rtt_estimate`.
        """
        sent_at = self.env.now
        arrived = yield from self._oob_send(src, dst)
        if not arrived or not self._node_alive(dst):
            return
        node = self.cluster.node(dst)
        try:
            yield from node.busy(self.config.probe_cpu)
        except (FaultError, Interrupt):
            return  # target crashed/hung mid-ack: no sample
        service = node.cpu_time_of(self.config.probe_cpu)
        arrived = yield from self._oob_send(dst, src)
        if arrived:
            self._receive_probe_ack(
                src, dst, self.env.now - sent_at, service
            )

    def _receive_probe_ack(self, observer: int, target: int,
                           rtt: float, service: float) -> None:
        cfg = self.config
        view = self.views.get(observer)
        if view is None or not self._node_alive(observer):
            return
        if target in view.dead:
            return
        est = view.rtt.get(target)
        if est is None:
            est = view.rtt[target] = RttEstimator()
        est.observe(rtt)
        # Slowness is judged on the benchmark's service time against its
        # known nominal cost, not on the round trip: wire latency cancels
        # out, and a drained (idle but still limping) node stays visibly
        # slow — its 1/cpu_factor stretch alone exceeds the threshold.
        if service > cfg.slow_factor * cfg.probe_cpu:
            self._slow_streak[target] = self._slow_streak.get(target, 0) + 1
            self._normal_streak[target] = 0
            if (self._slow_streak[target] >= cfg.slow_threshold
                    and target not in self._slow):
                self._slow.add(target)
                self._emit(
                    "suspect_slow", observer, target,
                    f"probe served in {service:.3g}s vs nominal "
                    f"{cfg.probe_cpu:.3g}s",
                )
                if target not in self._first_slow:
                    self._first_slow[target] = (self.env.now, observer)
        else:
            self._normal_streak[target] = (
                self._normal_streak.get(target, 0) + 1
            )
            self._slow_streak[target] = 0
            if (target in self._slow
                    and self._normal_streak[target]
                    >= cfg.slow_clear_threshold):
                self._slow.discard(target)
                self._emit(
                    "clear_slow", observer, target,
                    f"probe served in {service:.3g}s, back at nominal",
                )
                self._first_slow.pop(target, None)
