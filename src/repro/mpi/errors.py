"""Error types for the message-passing layer."""

__all__ = ["MpiError", "RankError", "TruncationError"]


class MpiError(RuntimeError):
    """Base class for message-passing failures."""


class RankError(MpiError):
    """A rank index was out of range for the communicator."""


class TruncationError(MpiError):
    """A receive buffer was too small for the matched message."""
