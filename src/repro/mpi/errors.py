"""Error types for the message-passing layer."""

__all__ = [
    "MpiError",
    "RankError",
    "TruncationError",
    "MpiTimeoutError",
    "CorruptionError",
    "DeliveryError",
    "ProcessFailedError",
    "RevokedError",
]


class MpiError(RuntimeError):
    """Base class for message-passing failures."""


class RankError(MpiError):
    """A rank index was out of range for the communicator."""


class TruncationError(MpiError):
    """A receive buffer was too small for the matched message."""


class MpiTimeoutError(MpiError, TimeoutError):
    """A communication call exceeded its configured deadline.

    Raised by ``recv``/``wait`` (and therefore by any collective built on
    them) when a timeout is set, instead of wedging the event loop until the
    simulator's deadlock detector fires.
    """


class CorruptionError(MpiError):
    """A received message failed its integrity check (injected corruption)."""


class DeliveryError(MpiError):
    """A send could not be delivered (lossy/downed link), retries exhausted."""


class ProcessFailedError(MpiError):
    """A peer rank was declared dead by the failure detector (ULFM
    ``MPI_ERR_PROC_FAILED``).

    Raised by communication with a dead rank: a pending or newly posted
    receive whose (only possible) sender has been declared dead fails
    immediately instead of wedging until the global timeout; a receive with
    ``ANY_SOURCE`` fails once *all* possible senders in the communicator are
    marked dead.  Survivors typically respond by ``revoke()``-ing the
    communicator and building a survivor communicator with ``shrink()``.
    """

    def __init__(self, message: str, ranks=()):
        super().__init__(message)
        #: Global ranks known failed when the error was raised.
        self.ranks = tuple(sorted(ranks))


class RevokedError(MpiError):
    """The communicator was revoked (ULFM ``MPI_ERR_REVOKED``).

    After any rank calls ``Communicator.revoke()``, every pending and future
    point-to-point or collective operation on that communicator's context
    raises this error, unblocking ranks stuck in a broken collective so they
    can reach the recovery path (``agree()`` / ``shrink()`` still work).
    """
