"""Error types for the message-passing layer."""

__all__ = [
    "MpiError",
    "RankError",
    "TruncationError",
    "MpiTimeoutError",
    "CorruptionError",
    "DeliveryError",
]


class MpiError(RuntimeError):
    """Base class for message-passing failures."""


class RankError(MpiError):
    """A rank index was out of range for the communicator."""


class TruncationError(MpiError):
    """A receive buffer was too small for the matched message."""


class MpiTimeoutError(MpiError, TimeoutError):
    """A communication call exceeded its configured deadline.

    Raised by ``recv``/``wait`` (and therefore by any collective built on
    them) when a timeout is set, instead of wedging the event loop until the
    simulator's deadlock detector fires.
    """


class CorruptionError(MpiError):
    """A received message failed its integrity check (injected corruption)."""


class DeliveryError(MpiError):
    """A send could not be delivered (lossy/downed link), retries exhausted."""
