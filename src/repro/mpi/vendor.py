"""Vendor-tuned all-to-all algorithms.

§3.1: *"the traditional MPI implementation have a built in function for
performing the corner turn operation, namely the MPI_All_to_All function;
each vendor implemented their own version tailored to their respective
hardware for the most optimal performance."*

Four algorithms are provided, each favouring a different fabric:

``direct``
    Post every send at once, then drain receives.  Maximum concurrency;
    wins on a full crossbar with many simultaneous channels (Mercury
    RACEway).
``pairwise``
    p-1 synchronised exchange steps with partner ``rank XOR step`` (falls
    back to rotation offsets when p is not a power of two).  Disjoint pairs
    per step — the classic choice for switched fabrics like Myrinet (CSPI).
``ring``
    p-1 steps of shifted sendrecv: step s exchanges with ranks ±s.  Gentle,
    ordered load for shared-medium backplanes (SKYchannel).
``recursive_doubling``
    The Bruck algorithm: ceil(log2 p) rounds of bundled messages.  Fewer,
    larger messages — wins when per-message overhead/latency dominates
    (SIGI-class buses), loses bandwidth (each payload moves ~log p / 2
    times).

All return, on every rank, the list where entry ``s`` is the block rank ``s``
sent to this rank.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List

from ..perf.cache import named_cache
from .comm import Communicator
from .errors import MpiError

__all__ = ["get_algorithm", "ALGORITHMS", "alltoall_direct", "alltoall_pairwise",
           "alltoall_ring", "alltoall_bruck", "partner_schedule"]

_TAG = (1 << 20) + 7  # dedicated slice of the collective tag space

#: (algorithm, size, rank) -> per-step partner tuples; pure arithmetic on
#: immutable inputs, recomputed on every collective call otherwise.
_SCHEDULE_CACHE = named_cache("mpi.alltoall_schedule", maxsize=4096)


def _tag(comm: Communicator) -> int:
    seq = getattr(comm, "_a2a_seq", 0)
    comm._a2a_seq = seq + 1
    # 256-wide slices so per-step tag offsets (ring: up to p-1) never collide
    # with the next call's slice.
    return _TAG + (seq % (1 << 10)) * 256


def partner_schedule(algorithm: str, size: int, rank: int):
    """Cached per-step partner schedule for one rank of an all-to-all.

    * ``pairwise``/``ring``: tuple of ``(send_to, recv_from)`` per step.
    * ``bruck``/``recursive_doubling``: tuple of
      ``(k, send_slots, dest, src)`` per round.
    """
    key = (algorithm, size, rank)
    cached = _SCHEDULE_CACHE.lookup(key)
    if cached is not None:
        return cached
    if algorithm == "pairwise":
        if size & (size - 1) == 0:
            sched = tuple((rank ^ s, rank ^ s) for s in range(1, size))
        else:
            sched = tuple(
                ((rank + s) % size, (rank - s) % size) for s in range(1, size)
            )
    elif algorithm == "ring":
        sched = tuple(
            ((rank + s) % size, (rank - s) % size) for s in range(1, size)
        )
    elif algorithm in ("bruck", "recursive_doubling"):
        rounds = []
        k = 1
        while k < size:
            rounds.append((
                k,
                tuple(i for i in range(size) if i & k),
                (rank + k) % size,
                (rank - k) % size,
            ))
            k <<= 1
        sched = tuple(rounds)
    else:
        raise MpiError(f"no partner schedule for algorithm {algorithm!r}")
    _SCHEDULE_CACHE.put(key, sched)
    return sched


def alltoall_direct(comm: Communicator, blocks: List[Any]) -> Generator:
    """Post all sends, then receive p-1 messages in arrival order."""
    tag = _tag(comm)
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    reqs = []
    for dest in range(size):
        if dest == rank:
            continue
        reqs.append(comm.isend(blocks[dest], dest, tag=tag))
    # Tuned vendor code keeps the local block in place: no copy.
    out[rank] = blocks[rank]
    for _ in range(size - 1):
        msg = yield from comm.recv_msg(tag=tag)
        out[msg.source] = msg.data
    for req in reqs:
        yield from req.wait()
    return out


def alltoall_pairwise(comm: Communicator, blocks: List[Any]) -> Generator:
    """p-1 exchange steps; XOR partners when p is a power of two."""
    tag = _tag(comm)
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    out[rank] = blocks[rank]  # local block stays in place (tuned vendor code)
    for send_to, recv_from in partner_schedule("pairwise", size, rank):
        out[recv_from] = yield from comm.sendrecv(
            blocks[send_to], dest=send_to, source=recv_from,
            sendtag=tag, recvtag=tag,
        )
    return out


def alltoall_ring(comm: Communicator, blocks: List[Any]) -> Generator:
    """p-1 rotation steps: step s sends to rank+s and receives from rank-s."""
    tag = _tag(comm)
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    out[rank] = blocks[rank]  # local block stays in place (tuned vendor code)
    for step, (dest, src) in enumerate(partner_schedule("ring", size, rank), 1):
        # Serialise the steps (barrier-like pacing) by matching tags per step:
        out[src] = yield from comm.sendrecv(
            blocks[dest], dest=dest, source=src, sendtag=tag + step, recvtag=tag + step
        )
    return out


def alltoall_bruck(comm: Communicator, blocks: List[Any]) -> Generator:
    """Bruck's algorithm: ceil(log2 p) rounds of bundled blocks."""
    tag = _tag(comm)
    size, rank = comm.size, comm.rank
    # Phase 1: local rotation so that block for rank (rank+i)%p sits at slot i.
    work = [blocks[(rank + i) % size] for i in range(size)]
    yield from comm.copy(sum(_nbytes(b) for b in work))
    # Phase 2: log rounds; in round k send slots whose index has bit k set.
    rounds = partner_schedule("bruck", size, rank)
    for round_no, (_k, send_idx, dest, src) in enumerate(rounds):
        bundle = {i: work[i] for i in send_idx}
        received = yield from comm.sendrecv(
            bundle, dest=dest, source=src,
            sendtag=tag + round_no, recvtag=tag + round_no,
        )
        for i, blk in received.items():
            work[i] = blk
    # Phase 3: inverse rotation: slot i currently holds the block *from*
    # rank (rank - i) % p.
    out: List[Any] = [None] * size
    for i in range(size):
        out[(rank - i) % size] = work[i]
    yield from comm.copy(sum(_nbytes(b) for b in out if b is not None))
    return out


ALGORITHMS: Dict[str, Callable[[Communicator, List[Any]], Generator]] = {
    "direct": alltoall_direct,
    "pairwise": alltoall_pairwise,
    "ring": alltoall_ring,
    "recursive_doubling": alltoall_bruck,
    "bruck": alltoall_bruck,
}


def get_algorithm(name: str) -> Callable[[Communicator, List[Any]], Generator]:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise MpiError(
            f"unknown alltoall algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None


def _nbytes(data: Any) -> int:
    from .datatypes import payload_nbytes

    return payload_nbytes(data)
