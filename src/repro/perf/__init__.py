"""Performance micro-layer: caches, timers/counters, and the bench harness.

Three small pieces keep the simulation hot path fast and honest:

``repro.perf.cache``
    Named, content-keyed caches for derived artifacts that used to be
    recomputed on every run (striping message plans, parsed Alter ASTs,
    generated glue + analysis verdicts, collective partner schedules).
    Every cache is registered centrally so ``clear_all_caches()`` is the
    one-line invalidation hammer and ``cache_stats()`` shows hit rates.

``repro.perf.registry``
    A process-wide timer/counter registry (wall-clock, ``time.perf_counter``)
    used by the bench harness for per-stage breakdowns.

``repro.perf.bench``
    ``python -m repro bench``: runs the Table 1.0 workloads at 1/2/4/8 nodes
    under the shared reduced protocol and writes ``BENCH_simcore.json`` with
    events/sec against the recorded pre-fast-path baseline.

See ``docs/PERFORMANCE.md`` for the full story.
"""

from .cache import (
    KeyedCache,
    cache_scope,
    cache_stats,
    clear_all_caches,
    current_scope,
    forget_scope,
    named_cache,
)
from .registry import PerfRegistry, REGISTRY

__all__ = [
    "KeyedCache",
    "named_cache",
    "clear_all_caches",
    "cache_stats",
    "cache_scope",
    "current_scope",
    "forget_scope",
    "PerfRegistry",
    "REGISTRY",
]
