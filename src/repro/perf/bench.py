"""Wall-clock benchmark harness: ``python -m repro bench``.

Times the *host* cost of the end-to-end SAGE pipeline — glue generation,
runtime setup, and discrete-event simulation — for the two paper benchmarks
(FFT2D and corner turn) across node counts, and writes ``BENCH_simcore.json``
with events/sec figures and per-stage breakdowns.

The workload is :data:`repro.experiments.BENCH_PROTOCOL` (1 run x 5
iterations, jitter disabled) at matrix size 256 — the same workload the
pytest-benchmark suite under ``benchmarks/`` uses, so numbers from both
harnesses are comparable.  Virtual (simulated) times are wholly unaffected
by anything measured here; the golden-trace tests prove that.

Measurement discipline, chosen to survive noisy shared machines:

* GC is disabled around the timed region.
* Each configuration runs ``--warmups`` untimed passes first (these also
  fill the derived-artifact caches — the cached path IS the steady state
  being measured), then ``--repeats`` timed passes.
* The recorded figure is the *best* pass (min total), the standard
  technique for wall-clock microbenchmarks where noise is strictly additive.

The file embeds :data:`BASELINE` — the same harness run on the tree
immediately before the simulator fast path and caching layers landed — so
every report carries its own before/after comparison.  Refresh it by
checking out the baseline commit and running this module's ``--emit-baseline``
mode (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform as _platform
import sys
import time
from typing import Dict, List, Optional, Sequence

from .registry import PerfRegistry

__all__ = [
    "BASELINE",
    "BASELINE_META",
    "run_pass",
    "run_config",
    "run_bench",
    "run_migration_pause",
    "run_service_soak",
    "run_straggler_pause",
    "compute_speedups",
    "compare_to_baseline",
    "write_report",
    "main",
]

#: Benchmark matrix: both paper apps at the paper's node ladder.
DEFAULT_APPS = ("fft2d", "corner_turn")
DEFAULT_NODES = (1, 2, 4, 8)
DEFAULT_SIZE = 256
DEFAULT_REPEATS = 7
DEFAULT_WARMUPS = 2

#: Where the baseline numbers came from.  ``nevents`` per configuration is
#: identical before and after the fast path by design (the optimisations
#: preserve the event count exactly), which is what makes events/sec an
#: apples-to-apples throughput metric.
BASELINE_META = {
    "label": "pre-fastpath tree (commit 35ec246)",
    "size": DEFAULT_SIZE,
    "iterations": 5,
    "repeats": DEFAULT_REPEATS,
    "warmups": DEFAULT_WARMUPS,
    "gc_disabled": True,
    "selection": "best-of-repeats by total",
}

#: Best-of-7 wall-clock figures from the pre-change tree on this class of
#: machine (times in seconds; events/sec derived from them).
BASELINE: Dict[str, Dict[str, float]] = {
    "fft2d@1": {
        "generate": 0.006849321000117925,
        "setup": 0.00014895999993314035,
        "simulate": 0.0021700340003008023,
        "total": 0.009168315000351868,
        "latency": 0.07943646913580252,
        "makespan": 0.3973823456790126,
        "nevents": 266,
        "events_per_sec_simulate": 122578.72455598762,
        "events_per_sec_total": 29012.964758496113,
    },
    "fft2d@2": {
        "generate": 0.007343531000515213,
        "setup": 0.0002604059991426766,
        "simulate": 0.0043404340012784814,
        "total": 0.011944371000936371,
        "latency": 0.0403990163860831,
        "makespan": 0.2021950819304155,
        "nevents": 606,
        "events_per_sec_simulate": 139617.37462693863,
        "events_per_sec_total": 50735.19567941192,
    },
    "fft2d@4": {
        "generate": 0.007477209999706247,
        "setup": 0.00044004799929098226,
        "simulate": 0.009096671999941464,
        "total": 0.017013929998938693,
        "latency": 0.020443453647586964,
        "makespan": 0.10241726823793482,
        "nevents": 1526,
        "events_per_sec_simulate": 167753.65760245282,
        "events_per_sec_total": 89691.21185376865,
    },
    "fft2d@8": {
        "generate": 0.008814526998321526,
        "setup": 0.0009788850002223626,
        "simulate": 0.02417319100095483,
        "total": 0.03396660299949872,
        "latency": 0.010559708641975299,
        "makespan": 0.05299854320987649,
        "nevents": 4326,
        "events_per_sec_simulate": 178958.58266412263,
        "events_per_sec_total": 127360.39574118858,
    },
    "corner_turn@1": {
        "generate": 0.006751168000846519,
        "setup": 0.00013809799929731525,
        "simulate": 0.0013198520009609638,
        "total": 0.008209118001104798,
        "latency": 0.008832133333333332,
        "makespan": 0.04436066666666665,
        "nevents": 171,
        "events_per_sec_simulate": 129559.98087323242,
        "events_per_sec_total": 20830.496038306002,
    },
    "corner_turn@2": {
        "generate": 0.006615427000724594,
        "setup": 0.00017456999921705574,
        "simulate": 0.0029426220007735537,
        "total": 0.009732619000715204,
        "latency": 0.0050708484848484845,
        "makespan": 0.02555424242424242,
        "nevents": 416,
        "events_per_sec_simulate": 141370.51918005178,
        "events_per_sec_total": 42742.86294053329,
    },
    "corner_turn@4": {
        "generate": 0.006880152001031092,
        "setup": 0.00034435799898346886,
        "simulate": 0.006632175000049756,
        "total": 0.013856685000064317,
        "latency": 0.0027533696969696975,
        "makespan": 0.013966848484848488,
        "nevents": 1146,
        "events_per_sec_simulate": 172793.99291957804,
        "events_per_sec_total": 82703.7635621132,
    },
    "corner_turn@8": {
        "generate": 0.007445651001035003,
        "setup": 0.0007742260004306445,
        "simulate": 0.019635360999018303,
        "total": 0.02785523800048395,
        "latency": 0.0016886666666666686,
        "makespan": 0.008643333333333343,
        "nevents": 3566,
        "events_per_sec_simulate": 181611.12495860335,
        "events_per_sec_total": 128019.01028230472,
    },
}


def run_pass(
    app: str,
    nodes: int,
    size: int = DEFAULT_SIZE,
    iterations: Optional[int] = None,
    registry: Optional[PerfRegistry] = None,
) -> Dict[str, float]:
    """One end-to-end pass: generate glue, set up, simulate.

    Returns the per-stage wall-clock breakdown plus the simulated results
    (event count, virtual latency/makespan).  When *registry* is given the
    stage timings are also accumulated there as ``bench.<stage>`` timers.
    """
    # Imported here, not at module level: repro.perf is a leaf dependency of
    # the core packages, so pulling the whole stack in at import time would
    # create a cycle.
    from ..apps import benchmark_mapping
    from ..core.codegen import generate_glue
    from ..core.runtime import DEFAULT_CONFIG, SageRuntime
    from ..experiments import APP_BUILDERS, BENCH_PROTOCOL
    from ..machine import Environment, SimCluster, get_platform

    if iterations is None:
        iterations = BENCH_PROTOCOL.iterations
    builder, _ = APP_BUILDERS[app]

    t0 = time.perf_counter()
    model = builder(size, nodes)
    mapping = benchmark_mapping(model, nodes)
    glue = generate_glue(model, mapping, num_processors=nodes)
    t1 = time.perf_counter()

    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes)
    runtime = SageRuntime(glue, cluster, config=DEFAULT_CONFIG.timing_only())
    t2 = time.perf_counter()

    result = runtime.run(iterations=iterations)
    t3 = time.perf_counter()

    if registry is not None:
        registry.record("bench.generate", t1 - t0)
        registry.record("bench.setup", t2 - t1)
        registry.record("bench.simulate", t3 - t2)
        registry.count("bench.passes")
        registry.count("bench.events", env.events_processed)

    simulate = t3 - t2
    total = t3 - t0
    nevents = env.events_processed
    return {
        "generate": t1 - t0,
        "setup": t2 - t1,
        "simulate": simulate,
        "total": total,
        "latency": result.mean_latency,
        "makespan": result.makespan,
        "nevents": nevents,
        "events_per_sec_simulate": nevents / simulate if simulate > 0 else 0.0,
        "events_per_sec_total": nevents / total if total > 0 else 0.0,
    }


def run_config(
    app: str,
    nodes: int,
    size: int = DEFAULT_SIZE,
    iterations: Optional[int] = None,
    repeats: int = DEFAULT_REPEATS,
    warmups: int = DEFAULT_WARMUPS,
    registry: Optional[PerfRegistry] = None,
) -> Dict[str, float]:
    """Best-of-*repeats* figures for one (app, nodes) configuration."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(warmups):
            run_pass(app, nodes, size, iterations)
        passes = [
            run_pass(app, nodes, size, iterations, registry=registry)
            for _ in range(repeats)
        ]
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(passes, key=lambda p: p["total"])


def run_bench(
    apps: Sequence[str] = DEFAULT_APPS,
    node_counts: Sequence[int] = DEFAULT_NODES,
    size: int = DEFAULT_SIZE,
    iterations: Optional[int] = None,
    repeats: int = DEFAULT_REPEATS,
    warmups: int = DEFAULT_WARMUPS,
    registry: Optional[PerfRegistry] = None,
    verbose: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Run the full benchmark matrix; returns ``{"app@nodes": figures}``."""
    results: Dict[str, Dict[str, float]] = {}
    for app in apps:
        for nodes in node_counts:
            key = f"{app}@{nodes}"
            results[key] = run_config(
                app, nodes, size, iterations, repeats, warmups, registry
            )
            if verbose:
                r = results[key]
                print(
                    f"  {key:<16s} {r['total'] * 1e3:8.2f} ms total "
                    f"({r['nevents']:>5d} events, "
                    f"{r['events_per_sec_total']:>9.0f} ev/s)",
                    file=sys.stderr,
                )
    return results


def run_migration_pause(
    registry: PerfRegistry,
    nodes: int = 8,
    size: int = 32,
    iterations: int = 6,
) -> Optional[Dict[str, float]]:
    """Tracked stat, no gate: the simulated pause of one live migration.

    Runs one crash -> rejoin -> re-grow cycle (FFT2D, ``grow_restripe``)
    and records the migration pause into *registry* as
    ``runtime.migration_pause_s``.  Unlike every other figure here this is
    *virtual* seconds — what the simulated application stalls during the
    re-grow, not host time (see docs/ELASTICITY.md).  Returns the
    ``{pause_s, migrations}`` summary, or None if no migration happened.
    """
    from ..apps import benchmark_mapping
    from ..core.codegen import generate_glue
    from ..core.runtime import DEFAULT_CONFIG, SageRuntime
    from ..experiments import APP_BUILDERS
    from ..faults import FaultPlan, FaultPolicy
    from ..machine import Environment, SimCluster, get_platform
    from .registry import REGISTRY as _GLOBAL

    builder, _ = APP_BUILDERS["fft2d"]
    model = builder(size, nodes)
    glue = generate_glue(model, benchmark_mapping(model, nodes),
                         num_processors=nodes)

    def run_once(plan):
        env = Environment()
        cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes,
                                           fault_plan=plan)
        runtime = SageRuntime(glue, cluster,
                              config=DEFAULT_CONFIG.timing_only(),
                              fault_policy=FaultPolicy.grow_restripe())
        return runtime.run(iterations=iterations)

    base = run_once(None)
    plan = (FaultPlan(seed=71)
            .crash_node(nodes - 1, at=base.makespan * 0.3, permanent=True)
            .join_node(nodes - 1, at=base.makespan * 0.6))
    empty = {"count": 0, "total_s": 0.0}
    before = _GLOBAL.snapshot()["timers"].get(
        "runtime.migration_pause_s", empty)
    run_once(plan)
    after = _GLOBAL.snapshot()["timers"].get(
        "runtime.migration_pause_s", empty)
    migrations = after["count"] - before["count"]
    pause = after["total_s"] - before["total_s"]
    if migrations <= 0:
        return None
    registry.record("runtime.migration_pause_s", pause)
    registry.count("bench.migrations", migrations)
    return {"pause_s": pause, "migrations": migrations}


def run_straggler_pause(
    registry: PerfRegistry,
    nodes: int = 8,
    iterations: int = 12,
) -> Optional[Dict[str, float]]:
    """Tracked stat, no gate: the simulated pause of one straggler drain.

    Runs the slack-striped FFT2D with one node limping at 0.25x under
    ``migrate_stragglers`` and records the drain/restore re-striping pause
    into *registry* as ``runtime.straggler_pause_s`` — virtual seconds,
    like ``runtime.migration_pause_s`` next to it.  Returns the
    ``{pause_s, drains}`` summary, or None if no straggler was migrated.
    """
    from ..apps import benchmark_mapping, fft2d_slack_model
    from ..core.codegen import generate_glue
    from ..core.runtime import DEFAULT_CONFIG, SageRuntime
    from ..faults import FaultPlan, FaultPolicy
    from ..machine import Environment, SimCluster, get_platform
    from .registry import REGISTRY as _GLOBAL

    model = fft2d_slack_model()
    glue = generate_glue(model, benchmark_mapping(model, nodes),
                         num_processors=nodes)
    plan = FaultPlan(seed=72).slow_node(nodes // 2, at=5e-4, factor=0.25)
    env = Environment()
    cluster = SimCluster.from_platform(env, get_platform("cspi"), nodes,
                                       fault_plan=plan)
    runtime = SageRuntime(glue, cluster,
                          config=DEFAULT_CONFIG.timing_only(),
                          fault_policy=FaultPolicy.migrate_stragglers())
    empty = {"count": 0, "total_s": 0.0}
    before = _GLOBAL.snapshot()["timers"].get(
        "runtime.straggler_pause_s", empty)
    runtime.run(iterations=iterations)
    after = _GLOBAL.snapshot()["timers"].get(
        "runtime.straggler_pause_s", empty)
    drains = after["count"] - before["count"]
    pause = after["total_s"] - before["total_s"]
    if drains <= 0:
        return None
    registry.record("runtime.straggler_pause_s", pause)
    registry.count("bench.straggler_drains", drains)
    return {"pause_s": pause, "drains": drains}


def run_service_soak(
    registry: PerfRegistry,
    jobs: int = 150,
    seed: int = 7,
    nodes: int = 8,
) -> Optional[Dict[str, float]]:
    """Tracked stat, no gate: multi-job service throughput under soak.

    Plays a seeded mixed workload through the service scheduler
    (:mod:`repro.service.soak`, invariant checks skipped — the full gate
    lives in ``python -m repro serve --soak``) and records the headline
    designs-compiled-and-simulated per host second into *registry* as
    ``service.jobs`` / ``service.soak_s``.  Returns the
    ``{jobs_per_sec, executed, completed}`` summary.
    """
    from ..service.soak import run_soak

    report = run_soak(jobs=jobs, seed=seed, nodes=nodes,
                      replay=False, isolation=False)
    executed = report.completed + report.failed
    registry.record("service.soak_s", report.wall_seconds)
    registry.count("service.jobs", executed)
    registry.count("service.backfills", report.backfills)
    return {
        "jobs_per_sec": report.jobs_per_sec,
        "executed": executed,
        "completed": report.completed,
    }


def compute_speedups(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
) -> Dict[str, Dict[str, float]]:
    """events/sec ratios (current / baseline) for configurations in both."""
    speedups: Dict[str, Dict[str, float]] = {}
    for key, cur in current.items():
        base = baseline.get(key)
        if not base:
            continue
        entry: Dict[str, float] = {}
        for metric in ("events_per_sec_total", "events_per_sec_simulate"):
            if base.get(metric):
                entry[metric] = cur[metric] / base[metric]
        if base.get("nevents") is not None:
            entry["nevents_match"] = float(cur["nevents"] == base["nevents"])
        speedups[key] = entry
    return speedups


def compare_to_baseline(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    threshold: float = 0.2,
) -> List[Dict[str, object]]:
    """Flag configurations whose throughput regressed more than *threshold*.

    A configuration regresses when its ``events_per_sec_total`` falls below
    ``(1 - threshold)`` times the baseline figure.  An event-count mismatch
    is also reported (as kind ``nevents``): it means the two runs did not
    simulate the same workload, so the throughput comparison is void.
    Pure function over the two result dicts — no measurement happens here.
    """
    regressions: List[Dict[str, object]] = []
    for key in sorted(set(current) & set(baseline)):
        cur, base = current[key], baseline[key]
        if cur.get("nevents") != base.get("nevents"):
            regressions.append({
                "config": key,
                "kind": "nevents",
                "current": cur.get("nevents"),
                "baseline": base.get("nevents"),
            })
            continue
        base_eps = base.get("events_per_sec_total")
        if not base_eps:
            continue
        cur_eps = cur["events_per_sec_total"]
        if cur_eps < (1.0 - threshold) * base_eps:
            regressions.append({
                "config": key,
                "kind": "events_per_sec_total",
                "current": cur_eps,
                "baseline": base_eps,
                "ratio": cur_eps / base_eps,
            })
    return regressions


def write_report(
    path: str,
    results: Dict[str, Dict[str, float]],
    size: int,
    iterations: int,
    repeats: int,
    warmups: int,
    registry: Optional[PerfRegistry] = None,
    threshold: float = 0.2,
) -> Dict[str, object]:
    """Assemble the BENCH_simcore.json document and write it."""
    baseline_comparable = (
        size == BASELINE_META["size"] and iterations == BASELINE_META["iterations"]
    )
    report: Dict[str, object] = {
        "meta": {
            "harness": "python -m repro bench",
            "python": sys.version.split()[0],
            "machine": _platform.machine(),
            "gc_disabled": True,
            "selection": "best-of-repeats by total",
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "protocol": {
            "runs": 1,
            "iterations": iterations,
            "jitter_sigma": 0.0,
            "size": size,
            "repeats": repeats,
            "warmups": warmups,
        },
        "baseline": {"meta": BASELINE_META, "results": BASELINE},
        "results": results,
        "baseline_comparable": baseline_comparable,
    }
    if baseline_comparable:
        report["speedup"] = compute_speedups(results, BASELINE)
        report["regressions"] = compare_to_baseline(results, BASELINE, threshold)
    if registry is not None:
        report["registry"] = registry.snapshot()
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="wall-clock benchmark of the SAGE pipeline (see docs/PERFORMANCE.md)",
    )
    parser.add_argument("--apps", nargs="+", default=list(DEFAULT_APPS),
                        choices=list(DEFAULT_APPS), help="benchmarks to run")
    parser.add_argument("--nodes", nargs="+", type=int, default=list(DEFAULT_NODES),
                        help="node counts (default 1 2 4 8)")
    parser.add_argument("--size", type=int, default=DEFAULT_SIZE,
                        help="matrix size (default 256; baseline comparison "
                             "needs 256)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="iterations per run (default BENCH_PROTOCOL's 5)")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS,
                        help="timed passes per configuration (default 7)")
    parser.add_argument("--warmups", type=int, default=DEFAULT_WARMUPS,
                        help="untimed warm-up passes (default 2)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: 1-2 nodes, 2 repeats, 1 warm-up")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="regression threshold on events/sec (default 0.2)")
    parser.add_argument("-o", "--output", default="BENCH_simcore.json",
                        help="report path (default BENCH_simcore.json)")
    parser.add_argument("--emit-baseline", action="store_true",
                        help="print the results dict as JSON to stdout (for "
                             "refreshing the embedded BASELINE)")
    args = parser.parse_args(argv)

    if args.quick:
        args.nodes = [n for n in args.nodes if n <= 2] or [1]
        args.repeats = min(args.repeats, 2)
        args.warmups = min(args.warmups, 1)

    from ..experiments import BENCH_PROTOCOL

    iterations = args.iterations or BENCH_PROTOCOL.iterations
    registry = PerfRegistry()

    print(f"bench: apps={args.apps} nodes={args.nodes} size={args.size} "
          f"iterations={iterations} repeats={args.repeats}", file=sys.stderr)
    results = run_bench(
        args.apps, args.nodes, args.size, iterations,
        args.repeats, args.warmups, registry, verbose=True,
    )
    pause = run_migration_pause(registry)
    if pause:
        print(
            f"  migration pause: {pause['pause_s'] * 1e6:.1f} virtual us "
            f"over {pause['migrations']} migration(s) (tracked, no gate)",
            file=sys.stderr,
        )
    straggler = run_straggler_pause(registry)
    if straggler:
        print(
            f"  straggler pause: {straggler['pause_s'] * 1e6:.1f} virtual us "
            f"over {straggler['drains']} drain(s) (tracked, no gate)",
            file=sys.stderr,
        )
    service = run_service_soak(registry, jobs=40 if args.quick else 150)
    if service:
        print(
            f"  service soak: {service['jobs_per_sec']:.1f} jobs/sec "
            f"({service['executed']} executed) (tracked, no gate)",
            file=sys.stderr,
        )

    if args.emit_baseline:
        print(json.dumps(results, indent=1))
        return 0

    report = write_report(
        args.output, results, args.size, iterations,
        args.repeats, args.warmups, registry, args.threshold,
    )
    print(f"wrote {args.output}", file=sys.stderr)
    if report.get("baseline_comparable"):
        for key, s in sorted(report["speedup"].items()):
            ratio = s.get("events_per_sec_total")
            if ratio:
                print(f"  {key:<16s} {ratio:5.2f}x events/sec vs baseline",
                      file=sys.stderr)
        regressions = report.get("regressions") or []
        if regressions:
            print(f"REGRESSIONS: {json.dumps(regressions, indent=1)}",
                  file=sys.stderr)
            # --quick is a smoke mode (CI shared runners are too noisy to
            # gate on wall clock); only full runs fail on regressions.
            if not args.quick:
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
