"""Named, content-keyed caches for derived simulation artifacts.

The hot path recomputes a handful of pure derivations on every run: striping
message plans, thread regions, parsed Alter ASTs, generated glue source (and
the analysis verdict that gates it), and collective partner schedules.  All of
them are functions of immutable inputs, so each gets a :class:`KeyedCache`
registered here under a stable name.

Invalidation
------------
Keys are *content fingerprints* (shapes, striping parameters, source text,
model/mapping digests), never object identities — mutating a model and
regenerating produces a different key, so stale hits are impossible by
construction.  Explicit invalidation still exists for long-lived processes and
for tests that must measure cold-path behaviour:

* ``clear_all_caches()`` — drop every registered cache.
* ``named_cache(name).clear()`` — drop one layer.
* ``cache_stats()`` — per-cache ``{hits, misses, size}`` for diagnostics.

Caches are bounded (FIFO eviction) so pathological key churn cannot grow
memory without limit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable

__all__ = [
    "KeyedCache",
    "named_cache",
    "clear_all_caches",
    "cache_stats",
    "MAPPING_SCOPED_CACHES",
    "invalidate_mapping_caches",
]

#: Caches whose values embed a thread->processor placement or are derived
#: from one (striping plans feed placement-dependent remote-traffic tables;
#: glue source/code bake the mapping in).  Keys are content fingerprints, so
#: stale *hits* are impossible even without invalidation — but a membership
#: change (shrink or grow) retires the old placement for good, so the
#: runtime drops these eagerly: entries keyed by the dead mapping would
#: otherwise pin memory for the rest of the process, and a regression in the
#: fingerprinting of any one layer would silently resurrect a stale-mapping
#: artifact.  The elasticity tests assert these are empty after every
#: membership change.
MAPPING_SCOPED_CACHES = (
    "striping.thread_region",
    "striping.message_plan",
    "codegen.glue_source",
    "codegen.glue_code",
)


class KeyedCache:
    """A small keyed memo table with hit/miss stats and FIFO eviction."""

    __slots__ = ("name", "maxsize", "hits", "misses", "_data")

    def __init__(self, name: str, maxsize: int = 1024):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: Dict[Hashable, Any] = {}

    def get(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        data = self._data
        if key in data:
            self.hits += 1
            return data[key]
        self.misses += 1
        value = compute()
        if len(data) >= self.maxsize:
            data.pop(next(iter(data)))
        data[key] = value
        return value

    def lookup(self, key: Hashable, default: Any = None) -> Any:
        """Plain probe (counts as hit/miss) for call sites where the compute
        step doesn't fit in a closure."""
        if key in self._data:
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Store a value computed outside :meth:`get`."""
        data = self._data
        if key not in data and len(data) >= self.maxsize:
            data.pop(next(iter(data)))
        data[key] = value

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self._data)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeyedCache({self.name!r}, size={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_REGISTRY: Dict[str, KeyedCache] = {}


def named_cache(name: str, maxsize: int = 1024) -> KeyedCache:
    """Return the process-wide cache registered under ``name`` (creating it)."""
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = _REGISTRY[name] = KeyedCache(name, maxsize=maxsize)
    return cache


def clear_all_caches() -> int:
    """Drop every registered cache; returns the number of entries evicted."""
    evicted = 0
    for cache in _REGISTRY.values():
        evicted += len(cache)
        cache.clear()
    return evicted


def invalidate_mapping_caches() -> int:
    """Drop every mapping-scoped cache (see :data:`MAPPING_SCOPED_CACHES`).

    Called by the run-time kernel whenever cluster membership changes —
    after a shrink re-stripes onto survivors and after a grow migrates back
    onto replacements.  Returns the number of entries evicted.
    """
    evicted = 0
    for name in MAPPING_SCOPED_CACHES:
        cache = _REGISTRY.get(name)
        if cache is not None:
            evicted += len(cache)
            cache.clear()
    return evicted


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Per-cache ``{hits, misses, size}``, keyed by cache name."""
    return {name: cache.stats() for name, cache in sorted(_REGISTRY.items())}
