"""Named, content-keyed caches for derived simulation artifacts.

The hot path recomputes a handful of pure derivations on every run: striping
message plans, thread regions, parsed Alter ASTs, generated glue source (and
the analysis verdict that gates it), and collective partner schedules.  All of
them are functions of immutable inputs, so each gets a :class:`KeyedCache`
registered here under a stable name.

Invalidation
------------
Keys are *content fingerprints* (shapes, striping parameters, source text,
model/mapping digests), never object identities — mutating a model and
regenerating produces a different key, so stale hits are impossible by
construction.  Explicit invalidation still exists for long-lived processes and
for tests that must measure cold-path behaviour:

* ``clear_all_caches()`` — drop every registered cache.
* ``named_cache(name).clear()`` — drop one layer.
* ``cache_stats()`` — per-cache ``{hits, misses, size}`` for diagnostics.

Caches are bounded (FIFO eviction) so pathological key churn cannot grow
memory without limit.

Job scoping
-----------
The registry is process-wide, which is exactly right for throughput — two
jobs submitting the same design share one generated glue — but wrong for
*invalidation* in a multi-tenant service: one job clearing "its" caches must
not evict artifacts other live jobs are using.  Entries therefore carry an
**owner set**: while a :func:`cache_scope` is active (the service enters one
per job, keyed by job id), every entry the job touches is tagged with that
scope.  A scoped clear (``clear_all_caches(scope=...)``,
``invalidate_mapping_caches(scope=...)``) evicts only entries owned *solely*
by that scope and merely detaches the scope from shared entries; an unscoped
clear keeps its historical drop-everything behaviour.  ``cache_stats(scope)``
reports the per-scope hit/miss split the service bills to each job.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Hashable, List, Optional, Set

__all__ = [
    "KeyedCache",
    "named_cache",
    "clear_all_caches",
    "cache_stats",
    "cache_scope",
    "current_scope",
    "forget_scope",
    "MAPPING_SCOPED_CACHES",
    "invalidate_mapping_caches",
]

#: Caches whose values embed a thread->processor placement or are derived
#: from one (striping plans feed placement-dependent remote-traffic tables;
#: glue source/code bake the mapping in).  Keys are content fingerprints, so
#: stale *hits* are impossible even without invalidation — but a membership
#: change (shrink or grow) retires the old placement for good, so the
#: runtime drops these eagerly: entries keyed by the dead mapping would
#: otherwise pin memory for the rest of the process, and a regression in the
#: fingerprinting of any one layer would silently resurrect a stale-mapping
#: artifact.  The elasticity tests assert these are empty after every
#: membership change.
MAPPING_SCOPED_CACHES = (
    "striping.thread_region",
    "striping.message_plan",
    "codegen.glue_source",
    "codegen.glue_code",
)

#: Active scope stack (innermost last).  Plain module state, not a
#: contextvar: the simulator is single-threaded by design and the service
#: enters exactly one scope per job execution.
_SCOPE_STACK: List[str] = []


def current_scope() -> Optional[str]:
    """The innermost active cache scope (job id), or None outside any."""
    return _SCOPE_STACK[-1] if _SCOPE_STACK else None


@contextmanager
def cache_scope(name: Optional[str]):
    """Tag every cache access inside the block as owned by ``name``.

    ``None`` is a pass-through (standalone runs stay unscoped), so call
    sites can thread an optional job id without branching.
    """
    if name is None:
        yield
        return
    _SCOPE_STACK.append(name)
    try:
        yield
    finally:
        _SCOPE_STACK.pop()


class KeyedCache:
    """A small keyed memo table with hit/miss stats and FIFO eviction."""

    __slots__ = ("name", "maxsize", "hits", "misses", "_data", "_owners",
                 "_scope_stats")

    def __init__(self, name: str, maxsize: int = 1024):
        self.name = name
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: Dict[Hashable, Any] = {}
        # key -> scopes that have touched it; keys touched only by
        # unscoped callers carry no entry (they are global property).
        self._owners: Dict[Hashable, Set[str]] = {}
        # scope -> [hits, misses] while that scope was active.
        self._scope_stats: Dict[str, List[int]] = {}

    # -- scope bookkeeping ----------------------------------------------
    def _tag(self, key: Hashable, hit: bool) -> None:
        scope = current_scope()
        if scope is None:
            return
        stats = self._scope_stats.get(scope)
        if stats is None:
            stats = self._scope_stats[scope] = [0, 0]
        stats[0 if hit else 1] += 1
        owners = self._owners.get(key)
        if owners is None:
            if hit:
                # The entry pre-exists with no owner: it is global property
                # (inserted unscoped, or its inserters all finished).  A
                # scoped hit must not re-privatise it — ownership comes
                # from insertion, never from use.
                return
            owners = self._owners[key] = set()
        owners.add(scope)

    def _count_miss(self) -> None:
        # A miss with no insertion (lookup default) still bills the scope.
        scope = current_scope()
        if scope is None:
            return
        stats = self._scope_stats.get(scope)
        if stats is None:
            stats = self._scope_stats[scope] = [0, 0]
        stats[1] += 1

    def _evict_oldest(self) -> None:
        key = next(iter(self._data))
        del self._data[key]
        self._owners.pop(key, None)

    # -- access ----------------------------------------------------------
    def get(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, computing and storing on miss."""
        data = self._data
        if key in data:
            self.hits += 1
            self._tag(key, hit=True)
            return data[key]
        self.misses += 1
        value = compute()
        if len(data) >= self.maxsize:
            self._evict_oldest()
        data[key] = value
        self._tag(key, hit=False)
        return value

    def lookup(self, key: Hashable, default: Any = None) -> Any:
        """Plain probe (counts as hit/miss) for call sites where the compute
        step doesn't fit in a closure."""
        if key in self._data:
            self.hits += 1
            self._tag(key, hit=True)
            return self._data[key]
        self.misses += 1
        self._count_miss()
        return default

    def put(self, key: Hashable, value: Any) -> None:
        """Store a value computed outside :meth:`get`."""
        data = self._data
        if key not in data and len(data) >= self.maxsize:
            self._evict_oldest()
        existed = key in data
        data[key] = value
        scope = current_scope()
        if scope is not None:
            owners = self._owners.get(key)
            if owners is None:
                if existed:
                    return  # overwrote a global entry: stays global
                owners = self._owners[key] = set()
            owners.add(scope)

    def clear(self, scope: Optional[str] = None) -> int:
        """Drop entries; returns the number evicted.

        Unscoped (``scope=None``): everything goes — the historical
        process-global hammer.  Scoped: only entries owned *solely* by
        ``scope`` are evicted; entries shared with other scopes (or global,
        unscoped entries) survive and merely lose the ``scope`` tag, so one
        tenant's clear can never evict another tenant's glue.
        """
        if scope is None:
            evicted = len(self._data)
            self._data.clear()
            self._owners.clear()
            return evicted
        evicted = 0
        for key in list(self._data):
            owners = self._owners.get(key)
            if owners is None or scope not in owners:
                continue
            owners.discard(scope)
            if not owners:
                del self._data[key]
                del self._owners[key]
                evicted += 1
        return evicted

    def forget_scope(self, scope: str) -> None:
        """Detach ``scope`` from all bookkeeping without evicting anything.

        Called when a job completes: its artifacts become shared property
        (later jobs may still hit them) and the per-scope stats row is
        dropped, so a long-running service's owner sets stay bounded by the
        number of *live* jobs, not of all jobs ever run.
        """
        for key in list(self._owners):
            owners = self._owners[key]
            owners.discard(scope)
            if not owners:
                del self._owners[key]
        self._scope_stats.pop(scope, None)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def stats(self, scope: Optional[str] = None) -> Dict[str, int]:
        if scope is None:
            return {"hits": self.hits, "misses": self.misses,
                    "size": len(self._data)}
        row = self._scope_stats.get(scope, (0, 0))
        owned = sum(1 for owners in self._owners.values() if scope in owners)
        return {"hits": row[0], "misses": row[1], "size": owned}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KeyedCache({self.name!r}, size={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


_REGISTRY: Dict[str, KeyedCache] = {}


def named_cache(name: str, maxsize: int = 1024) -> KeyedCache:
    """Return the process-wide cache registered under ``name`` (creating it)."""
    cache = _REGISTRY.get(name)
    if cache is None:
        cache = _REGISTRY[name] = KeyedCache(name, maxsize=maxsize)
    return cache


def clear_all_caches(scope: Optional[str] = None) -> int:
    """Drop every registered cache; returns the number of entries evicted.

    With ``scope`` given, only that scope's *exclusively owned* entries are
    evicted (see :meth:`KeyedCache.clear`) — the multi-tenant-safe form.
    """
    evicted = 0
    for cache in _REGISTRY.values():
        evicted += cache.clear(scope)
    return evicted


def invalidate_mapping_caches(scope: Optional[str] = None) -> int:
    """Drop every mapping-scoped cache (see :data:`MAPPING_SCOPED_CACHES`).

    Called by the run-time kernel whenever cluster membership changes —
    after a shrink re-stripes onto survivors and after a grow migrates back
    onto replacements.  Returns the number of entries evicted.  A runtime
    executing under a service job scope passes that scope so its membership
    change cannot evict placements other tenants' jobs still share.
    """
    evicted = 0
    for name in MAPPING_SCOPED_CACHES:
        cache = _REGISTRY.get(name)
        if cache is not None:
            evicted += cache.clear(scope)
    return evicted


def forget_scope(scope: str) -> None:
    """Detach a finished job's scope from every cache (no eviction)."""
    for cache in _REGISTRY.values():
        cache.forget_scope(scope)


def cache_stats(scope: Optional[str] = None) -> Dict[str, Dict[str, int]]:
    """Per-cache ``{hits, misses, size}``, keyed by cache name.

    With ``scope`` given, the figures are that scope's own traffic and the
    number of entries it (co-)owns — the per-job view the service reports.
    """
    return {name: cache.stats(scope) for name, cache in sorted(_REGISTRY.items())}
