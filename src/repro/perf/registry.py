"""Wall-clock timer/counter registry used by the bench harness.

All times are host wall-clock (``time.perf_counter``), never simulated virtual
time — this layer measures how fast the simulator itself runs, not what it
simulates.  One deliberate exception: ``runtime.migration_pause_s`` records
the *simulated* stall of a live migration (see docs/ELASTICITY.md); it rides
in the same registry so ``python -m repro bench`` can report it alongside the
host figures as a tracked stat.  A single process-wide :data:`REGISTRY` backs
``python -m repro bench``; tests construct private :class:`PerfRegistry`
instances.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = ["PerfRegistry", "TimerStats", "REGISTRY"]


class TimerStats:
    """Aggregate statistics for one named timer."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed < self.min:
            self.min = elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }


class _Timing:
    """Context manager recording one interval into a registry timer."""

    __slots__ = ("_registry", "_name", "_start", "elapsed")

    def __init__(self, registry: "PerfRegistry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0.0
        self.elapsed: Optional[float] = None

    def __enter__(self) -> "_Timing":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._registry.record(self._name, self.elapsed)


class PerfRegistry:
    """Named wall-clock timers and monotonic counters."""

    def __init__(self) -> None:
        self.timers: Dict[str, TimerStats] = {}
        self.counters: Dict[str, int] = {}

    # -- timers ---------------------------------------------------------
    def timer(self, name: str) -> _Timing:
        """``with registry.timer("stage"):`` times the block."""
        return _Timing(self, name)

    def record(self, name: str, elapsed: float) -> None:
        stats = self.timers.get(name)
        if stats is None:
            stats = self.timers[name] = TimerStats()
        stats.add(elapsed)

    # -- counters -------------------------------------------------------
    def count(self, name: str, delta: int = 1) -> int:
        value = self.counters.get(name, 0) + delta
        self.counters[name] = value
        return value

    # -- reporting ------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly dump of every timer and counter."""
        return {
            "timers": {name: t.as_dict() for name, t in sorted(self.timers.items())},
            "counters": dict(sorted(self.counters.items())),
        }

    def reset(self) -> None:
        self.timers.clear()
        self.counters.clear()


#: Process-wide registry used by ``python -m repro bench``.
REGISTRY = PerfRegistry()
