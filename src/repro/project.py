"""The SAGE project facade: the whole §1.1 lifecycle behind one object.

The paper's tool suite "bring[s] together under a common GUI, a set of
collaborating tools designed specifically for each phase of a system's
development lifecycle".  :class:`SageProject` is that integration point as a
library API: capture (application + hardware), trade/optimise (AToT),
generate (Alter glue), execute (run-time on the simulated machine), and
visualise — each phase one method, with the artefacts of every phase kept
on the object.

>>> from repro import SageProject
>>> from repro.apps import fft2d_model, MatrixProvider
>>> project = SageProject(fft2d_model(256, 4), platform="cspi", nodes=4)
>>> project.optimize()                      # AToT GA mapping
>>> project.generate()                      # Alter glue generation
>>> result = project.execute(iterations=10, input_provider=MatrixProvider(256))
>>> print(project.report())                 # Visualizer
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Union

from .core.atot import AtotResult, GaConfig, optimize_mapping
from .core.codegen import GlueModule, generate_glue
from .core.model import (
    ApplicationModel,
    HardwareModel,
    Mapping,
    ModelError,
    from_platform,
    load_design,
    round_robin_mapping,
    save_design,
    validate_application,
)
from .core.runtime import DEFAULT_CONFIG, RunResult, RuntimeConfig, SageRuntime
from .core.visualizer import run_report, run_summary
from .machine import Environment, PlatformSpec, get_platform

__all__ = ["SageProject"]


class SageProject:
    """One design: application + target hardware + the derived artefacts."""

    def __init__(
        self,
        app: ApplicationModel,
        platform: Union[str, PlatformSpec] = "cspi",
        nodes: Optional[int] = None,
        hardware: Optional[HardwareModel] = None,
    ):
        self.app = app
        if hardware is not None:
            self.hardware = hardware
            self.platform = (
                get_platform(platform) if isinstance(platform, str) else platform
            )
        else:
            self.platform = (
                get_platform(platform) if isinstance(platform, str) else platform
            )
            if nodes is None:
                raise ModelError("pass nodes= or a hardware= model")
            self.hardware = from_platform(self.platform, nodes)
        self.nodes = self.hardware.processor_count
        self.mapping: Optional[Mapping] = None
        self.atot_result: Optional[AtotResult] = None
        self.glue: Optional[GlueModule] = None
        self.last_result: Optional[RunResult] = None

    # -- phase 1: capture / validate -----------------------------------------
    def validate(self) -> List:
        """Designer validation; raises on structural errors."""
        return validate_application(self.app, strict=True)

    # -- phase 2: AToT ----------------------------------------------------------
    def optimize(self, ga_config: GaConfig = GaConfig(), **objective_kwargs) -> AtotResult:
        """Run the AToT GA; stores and returns the optimised mapping."""
        self.atot_result = optimize_mapping(
            self.app, self.platform, self.nodes, config=ga_config, **objective_kwargs
        )
        self.mapping = self.atot_result.mapping
        self.glue = None  # a new mapping invalidates generated glue
        return self.atot_result

    def use_mapping(self, mapping: Mapping) -> None:
        """Install an explicit mapping (e.g. hand-refined in the Designer)."""
        mapping.validate(self.app, processor_count=self.nodes)
        self.mapping = mapping
        self.glue = None

    # -- phase 3: glue generation ---------------------------------------------
    def generate(self, optimize_buffers: bool = False) -> GlueModule:
        """Run the Alter glue-code generator over the mapped model."""
        if self.mapping is None:
            # the Designer default: round-robin data-parallel layout
            self.mapping = round_robin_mapping(self.app, self.nodes)
        self.glue = generate_glue(
            self.app,
            self.mapping,
            num_processors=self.nodes,
            optimize_buffers=optimize_buffers,
        )
        return self.glue

    # -- phase 4: execution ---------------------------------------------------
    def execute(
        self,
        iterations: int = 1,
        input_provider: Optional[Callable[[int], Any]] = None,
        config: RuntimeConfig = DEFAULT_CONFIG,
        source_interval: float = 0.0,
    ) -> RunResult:
        """Build the simulated machine, load the glue, run the application."""
        if self.glue is None:
            self.generate()
        if input_provider is None and config.execute_data:
            config = config.timing_only()
        env = Environment()
        cluster = self.hardware.build_cluster(env)
        runtime = SageRuntime(self.glue, cluster, config=config)
        self.last_result = runtime.run(
            iterations=iterations,
            input_provider=input_provider,
            source_interval=source_interval,
        )
        return self.last_result

    # -- phase 5: visualisation ---------------------------------------------
    def report(self, latency_threshold: Optional[float] = None) -> str:
        """The Visualizer text report for the most recent execution."""
        if self.last_result is None:
            raise ModelError("nothing to report: call execute() first")
        return run_report(
            self.last_result, processors=self.nodes,
            latency_threshold=latency_threshold,
        )

    def summary(self) -> dict:
        """JSON-able summary of the most recent execution."""
        if self.last_result is None:
            raise ModelError("nothing to summarise: call execute() first")
        return run_summary(self.last_result, processors=self.nodes)

    def html_report(self, path: Optional[str] = None) -> str:
        """Standalone HTML report (SVG timeline + tables) of the last run."""
        from .core.visualizer import render_html_report

        if self.last_result is None:
            raise ModelError("nothing to report: call execute() first")
        doc = render_html_report(
            self.last_result, processors=self.nodes,
            title=f"SAGE Visualizer — {self.app.name}",
        )
        if path is not None:
            with open(path, "w") as fh:
                fh.write(doc)
        return doc

    # -- persistence -------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist the design (application + hardware + mapping) as JSON."""
        save_design(path, self.app, hardware=self.hardware, mapping=self.mapping)

    @classmethod
    def load(cls, path: str, platform: Union[str, PlatformSpec] = "cspi") -> "SageProject":
        """Reload a saved design into a fresh project."""
        app, hardware, mapping = load_design(path)
        if hardware is None:
            raise ModelError(f"design {path!r} has no hardware model")
        project = cls(app, platform=platform, hardware=hardware)
        if mapping is not None:
            project.use_mapping(mapping)
        return project
