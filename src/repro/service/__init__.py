"""SAGE-as-a-service: multi-job scheduling over a shared simulated cluster.

The paper's infrastructure generated and ran *one* design at a time.  This
package turns that pipeline into a long-running service front end:

* :mod:`repro.service.jobs` — :class:`JobSpec` submissions, job lifecycle
  records, and the FIFO :class:`JobQueue` with per-tenant depth quotas.
* :mod:`repro.service.scheduler` — :class:`ClusterScheduler`: node-set
  leases on the shared cluster, admission control and per-tenant quotas,
  FIFO order with conservative (reservation-respecting) backfill, and
  seeded deterministic tie-breaks.
* :mod:`repro.service.bus` — the :class:`EventBus` carrying job lifecycle
  messages and re-published probe telemetry on hierarchical topics.
* :mod:`repro.service.service` — :class:`SageService`, the front end tying
  queue + scheduler + bus over one shared :class:`~repro.machine.SimCluster`.
* :mod:`repro.service.soak` — the 1000-job soak harness and its five
  invariants (``python -m repro serve --soak``).

See ``docs/SERVICE.md`` for the architecture and determinism story.
"""

from .bus import EventBus, Subscription
from .errors import (
    AdmissionError,
    InvalidJobSpec,
    JobFailedError,
    QuotaExceededError,
    ServiceError,
    TimeBudgetExceeded,
    UnknownJobError,
)
from .jobs import APPS, JOB_STATES, Job, JobQueue, JobResult, JobSpec
from .messages import (
    BusMessage,
    LIFECYCLE_KINDS,
    TOPIC_LEASES,
    TOPIC_QUEUE,
    canonical_stream,
    job_topic,
    topic_matches,
)
from .scheduler import ClusterScheduler, Lease, TenantQuota
from .service import SageService, ServiceStats, run_standalone

__all__ = [
    "APPS",
    "AdmissionError",
    "BusMessage",
    "ClusterScheduler",
    "EventBus",
    "InvalidJobSpec",
    "JOB_STATES",
    "Job",
    "JobFailedError",
    "JobQueue",
    "JobResult",
    "JobSpec",
    "LIFECYCLE_KINDS",
    "Lease",
    "QuotaExceededError",
    "SageService",
    "ServiceError",
    "ServiceStats",
    "Subscription",
    "TOPIC_LEASES",
    "TOPIC_QUEUE",
    "TenantQuota",
    "TimeBudgetExceeded",
    "UnknownJobError",
    "canonical_stream",
    "job_topic",
    "run_standalone",
    "topic_matches",
]
