"""The service event bus: publish/subscribe over dot-path topics.

Modeled on the runtime-bus pattern (topics / bus / messages as separate
concerns): :mod:`repro.service.messages` defines the records and the topic
grammar, this module owns delivery.  The bus is strictly in-process and
synchronous — ``publish`` appends to every matching subscription before it
returns — because the service's event loop is itself deterministic virtual
time; there is no benefit (and real determinism risk) in a thread hop.

The bus keeps the full published history (bounded by ``history_limit``)
so late consumers — the experiments runner, the soak checker, the
visualizer — can read the whole stream after a run instead of poking
runtimes directly, and so :meth:`EventBus.digest` can pin the entire
service execution to one hash for the determinism invariant.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from .messages import BusMessage, canonical_stream, topic_matches

__all__ = ["EventBus", "Subscription"]


class Subscription:
    """One subscriber's view: a pattern plus its undelivered queue."""

    def __init__(self, bus: "EventBus", pattern: str,
                 handler: Optional[Callable[[BusMessage], None]] = None):
        self.bus = bus
        self.pattern = pattern
        self.handler = handler
        self.active = True
        self._queue: Deque[BusMessage] = deque()

    def deliver(self, message: BusMessage) -> None:
        if not self.active:
            return
        if self.handler is not None:
            self.handler(message)
        else:
            self._queue.append(message)

    def pop(self) -> Optional[BusMessage]:
        """Next undelivered message, or None when drained."""
        return self._queue.popleft() if self._queue else None

    def drain(self) -> List[BusMessage]:
        """All undelivered messages, emptying the queue."""
        out = list(self._queue)
        self._queue.clear()
        return out

    def __len__(self) -> int:
        return len(self._queue)

    def close(self) -> None:
        self.active = False
        self.bus.unsubscribe(self)


class EventBus:
    """Topics, subscriptions, and the deterministic message history."""

    def __init__(self, history_limit: Optional[int] = None):
        self._seq = 0
        self._subs: List[Subscription] = []
        self.history_limit = history_limit
        self._history: Deque[BusMessage] = deque(maxlen=history_limit)
        self.published = 0

    # -- subscriptions ---------------------------------------------------
    def subscribe(self, pattern: str,
                  handler: Optional[Callable[[BusMessage], None]] = None,
                  ) -> Subscription:
        """Register interest in ``pattern`` (see :func:`topic_matches`).

        With a ``handler`` the message is pushed synchronously at publish
        time; without one it queues on the subscription for ``pop``/
        ``drain``.
        """
        sub = Subscription(self, pattern, handler)
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        try:
            self._subs.remove(sub)
        except ValueError:
            pass

    # -- publishing ------------------------------------------------------
    def publish(self, topic: str, kind: str, time: float = 0.0,
                **payload: Any) -> BusMessage:
        """Stamp, record, and deliver one message; returns it."""
        message = BusMessage.make(self._seq, time, topic, kind, payload)
        self._seq += 1
        self.published += 1
        self._history.append(message)
        for sub in self._subs:
            if topic_matches(sub.pattern, topic):
                sub.deliver(message)
        return message

    # -- history & determinism -------------------------------------------
    @property
    def history(self) -> List[BusMessage]:
        return list(self._history)

    def history_for(self, pattern: str) -> List[BusMessage]:
        return [m for m in self._history if topic_matches(pattern, m.topic)]

    def topics(self) -> List[str]:
        return sorted({m.topic for m in self._history})

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self._history:
            out[m.kind] = out.get(m.kind, 0) + 1
        return out

    def digest(self) -> str:
        """SHA-256 over the canonical stream — the determinism fingerprint.

        Only meaningful when the bus was created with an unbounded history
        (the default); a bounded bus hashes its retained window.
        """
        blob = canonical_stream(self._history)
        return hashlib.sha256(blob.encode()).hexdigest()

    def __len__(self) -> int:
        return len(self._history)
