"""``python -m repro serve`` / ``python -m repro submit``.

``submit`` is the batch front door: it validates one :class:`JobSpec` and
appends it to a batch file (creating it on first use).  ``serve --batch``
then stands up a :class:`SageService`, plays the whole batch through the
scheduler, and prints per-job outcomes.  ``serve --soak`` runs the
soak-test harness instead (see :mod:`repro.service.soak`) and merges its
report — headline stat: jobs/sec against the embedded baseline — into
``BENCH_simcore.json``; its exit code is the CI gate (non-zero on any
invariant violation).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from .errors import ServiceError
from .jobs import JobSpec
from .soak import SERVICE_BASELINE, run_soak

__all__ = ["serve_main", "submit_main"]


def _load_batch(path: str) -> List[dict]:
    with open(path) as fh:
        doc = json.load(fh)
    jobs = doc["jobs"] if isinstance(doc, dict) else doc
    if not isinstance(jobs, list):
        raise ValueError(f"{path}: expected a list of job specs")
    return jobs


def _merge_bench_report(path: str, section: dict) -> None:
    """Install the soak report as the ``service`` section of the bench
    document, preserving everything the bench harness wrote there."""
    doc: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            doc = {}
    if not isinstance(doc, dict):
        doc = {}
    doc["service"] = section
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")


def _run_batch(args) -> int:
    from .service import SageService

    entries = _load_batch(args.batch)
    svc = SageService(nodes=args.nodes, seed=args.seed)
    ids = []
    for i, entry in enumerate(entries):
        entry = dict(entry)
        at = entry.pop("at", None)
        try:
            spec = JobSpec.from_dict(entry)
            ids.append((svc.submit(spec, at=at), spec))
        except (ServiceError, ValueError) as exc:
            print(f"  entry {i}: rejected at submit — "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
    stats = svc.run()
    print(f"{'job':<8s}{'tenant':<10s}{'app':<13s}{'state':<11s}"
          f"{'nodes':<14s}{'makespan':>10s}")
    for job_id, spec in ids:
        job = svc.job(job_id)
        makespan = f"{job.result.makespan:.6f}" if job.result else "-"
        print(f"{job_id:<8s}{spec.tenant:<10s}{spec.app:<13s}"
              f"{job.state:<11s}{str(list(job.lease_nodes)):<14s}"
              f"{makespan:>10s}")
    print(f"\n{stats.completed} completed, {stats.failed} failed, "
          f"{stats.rejected} rejected; utilization "
          f"{stats.utilization:.2f}, {stats.jobs_per_sec:.1f} jobs/sec")
    violations = svc.check_clean()
    for v in violations:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if violations else 0


def _run_soak(args) -> int:
    report = run_soak(
        jobs=args.jobs,
        seed=args.seed,
        nodes=args.nodes,
        replay=not args.no_replay,
        isolation=not args.no_isolation,
        progress=lambda line: print(line, file=sys.stderr),
    )
    section = report.to_dict()
    base = SERVICE_BASELINE["jobs_per_sec"]
    if base:
        section["jobs_per_sec_vs_baseline"] = report.jobs_per_sec / base
    _merge_bench_report(args.output, section)
    print(f"wrote service section to {args.output}", file=sys.stderr)
    print(json.dumps(section, indent=1))
    if not report.ok:
        for line in report.violations[:20]:
            print(f"VIOLATION: {line}", file=sys.stderr)
        return 1
    return 0


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="run the multi-job SAGE service over one shared "
                    "simulated cluster (batch mode or soak mode)",
    )
    parser.add_argument("--batch", help="batch file of job specs to play "
                                        "(see `python -m repro submit`)")
    parser.add_argument("--soak", action="store_true",
                        help="run the soak harness + five invariants")
    parser.add_argument("--jobs", type=int, default=1000,
                        help="soak job count (default 1000)")
    parser.add_argument("--seed", type=int, default=7,
                        help="workload + scheduler tie-break seed")
    parser.add_argument("--nodes", type=int, default=8,
                        help="shared cluster size (default 8)")
    parser.add_argument("--no-replay", action="store_true",
                        help="soak: skip the determinism replay invariant")
    parser.add_argument("--no-isolation", action="store_true",
                        help="soak: skip the standalone-isolation invariant")
    parser.add_argument("-o", "--output", default="BENCH_simcore.json",
                        help="bench document to merge the soak report into")
    args = parser.parse_args(argv)
    if args.soak:
        return _run_soak(args)
    if args.batch:
        return _run_batch(args)
    parser.error("nothing to do: pass --batch FILE or --soak")
    return 2


def submit_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="validate one job spec and append it to a batch file "
                    "for `python -m repro serve --batch`",
    )
    parser.add_argument("--batch", default="batch.json",
                        help="batch file to append to (default batch.json)")
    parser.add_argument("--tenant", default="default")
    parser.add_argument("--app", default="fft2d",
                        help="fft2d | corner_turn")
    parser.add_argument("--size", type=int, default=32)
    parser.add_argument("--nodes", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=3)
    parser.add_argument("--policy", default="fail_fast")
    parser.add_argument("--data-seed", type=int, default=1234)
    parser.add_argument("--budget", type=float, default=None,
                        help="virtual-time lease budget (default 5.0)")
    parser.add_argument("--at", type=float, default=None,
                        help="virtual arrival time inside the batch")
    parser.add_argument("--platform", default="cspi",
                        help="platform the admission lint checks against")
    parser.add_argument("--no-lint", action="store_true",
                        help="skip the static admission lint (JOB rules)")
    args = parser.parse_args(argv)

    kw = dict(
        tenant=args.tenant, app=args.app, size=args.size, nodes=args.nodes,
        iterations=args.iterations, policy=args.policy,
        data_seed=args.data_seed,
    )
    if args.budget is not None:
        kw["time_budget"] = args.budget
    try:
        spec = JobSpec(**kw)
        spec.validate()
    except ServiceError as exc:
        print(f"invalid spec: {exc}", file=sys.stderr)
        return 2

    if not args.no_lint:
        from ..analysis.admission import lint_job_spec
        from ..machine import get_platform

        report = lint_job_spec(spec, get_platform(args.platform))
        for f in report.sorted():
            print(f"  {f.render()}", file=sys.stderr)
        if not report.ok:
            print(f"rejected by admission lint: {len(report.errors)} "
                  f"error(s); not queued (--no-lint to override)",
                  file=sys.stderr)
            return 2

    entries = []
    if os.path.exists(args.batch):
        entries = _load_batch(args.batch)
    entry = spec.to_dict()
    if args.at is not None:
        entry["at"] = args.at
    entries.append(entry)
    with open(args.batch, "w") as fh:
        json.dump({"jobs": entries}, fh, indent=1)
        fh.write("\n")
    print(f"queued as entry {len(entries) - 1} in {args.batch} "
          f"({spec.fingerprint()})")
    return 0
