"""Typed service errors.

Every rejection the service can issue has a distinct exception type so
tenants (and tests) dispatch on *type*, never on message text.  All of them
derive from :class:`ServiceError`; the ones a malformed submission can
trigger also derive from :class:`ValueError` so argument-validation idioms
keep working.
"""

from __future__ import annotations

__all__ = [
    "ServiceError",
    "InvalidJobSpec",
    "AdmissionError",
    "AdmissionRejected",
    "QuotaExceededError",
    "TimeBudgetExceeded",
    "UnknownJobError",
    "JobFailedError",
]


class ServiceError(RuntimeError):
    """Base class for every error the SAGE service raises."""


class InvalidJobSpec(ServiceError, ValueError):
    """The submission itself is malformed (unknown app, bad sizes, ...)."""


class AdmissionError(ServiceError):
    """The request can never be admitted on this cluster (e.g. it asks for
    more nodes than the machine has) — resubmit with different options."""


class AdmissionRejected(AdmissionError):
    """The admission-time static lint (Verifier v2 ``JOB0xx`` rules) proved
    the submission can never complete as specified, so it was rejected
    before any scheduler state changed.

    Carries the full :class:`~repro.analysis.report.AnalysisReport` as
    ``report`` and its error findings as ``findings``; the message embeds
    the rendered finding text so batch front-ends can surface *why*.
    """

    def __init__(self, spec_name: str, report):
        self.report = report
        self.findings = list(report.errors)
        detail = "; ".join(f.render() for f in self.findings) or "(no detail)"
        super().__init__(
            f"submission {spec_name} rejected by admission lint: {detail}"
        )


class QuotaExceededError(ServiceError):
    """A tenant limit was hit: queue depth, concurrent nodes, or a single
    request larger than the tenant's node quota.

    ``kind`` says which limit: ``"queued"``, ``"nodes"``, or ``"running"``.
    """

    def __init__(self, tenant: str, kind: str, limit: int, requested: int):
        self.tenant = tenant
        self.kind = kind
        self.limit = limit
        self.requested = requested
        super().__init__(
            f"tenant {tenant!r} over {kind} quota: "
            f"requested {requested}, limit {limit}"
        )


class TimeBudgetExceeded(ServiceError):
    """The job's simulated run overran its declared time budget and its
    lease was terminated at the budget boundary."""

    def __init__(self, job_id: str, budget: float, makespan: float):
        self.job_id = job_id
        self.budget = budget
        self.makespan = makespan
        super().__init__(
            f"job {job_id} exceeded its time budget: needed "
            f"{makespan:.6f}s of a {budget:.6f}s lease"
        )


class UnknownJobError(ServiceError, KeyError):
    """No job with that id was ever submitted to this service."""


class JobFailedError(ServiceError):
    """The job aborted on the simulated machine; carries the cause."""

    def __init__(self, job_id: str, cause: str):
        self.job_id = job_id
        self.cause = cause
        super().__init__(f"job {job_id} failed: {cause}")
