"""Job specifications, job lifecycle state, and the FIFO job queue.

A :class:`JobSpec` names everything needed to generate and run one Alter
application design: the app (from :data:`APPS`), its problem size, the node
count to lease, the iteration count, the fault policy, and a virtual-time
budget the lease is bounded by.  Specs are immutable and content-
fingerprintable — the soak harness uses the fingerprint to memoize
standalone reference runs when checking the isolation invariant.

The :class:`JobQueue` is strict FIFO by submission sequence; the *scheduler*
decides admission order (FIFO with conservative backfill), the queue only
owns ordering and the per-tenant queue-depth quota.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..apps import corner_turn_model, fft2d_model
from ..core.runtime.policy import POLICY_MODES
from .errors import InvalidJobSpec, QuotaExceededError

__all__ = [
    "APPS",
    "JobSpec",
    "JobResult",
    "Job",
    "JobQueue",
    "JOB_STATES",
]

#: Submittable application designs: name -> model builder(size, nodes, seed).
APPS: Dict[str, Callable] = {
    "fft2d": fft2d_model,
    "corner_turn": corner_turn_model,
}

JOB_STATES = ("queued", "running", "completed", "failed", "rejected")

#: Default lease bound, in virtual seconds — generous next to the paper
#: workloads' makespans (milliseconds) so unannotated jobs never get killed,
#: while still giving the backfill planner a finite horizon to reason with.
DEFAULT_TIME_BUDGET = 5.0


@dataclass(frozen=True)
class JobSpec:
    """One submission: a design plus its mapping/platform options."""

    tenant: str = "default"
    app: str = "fft2d"
    size: int = 32
    nodes: int = 2
    iterations: int = 3
    policy: str = "fail_fast"
    data_seed: int = 1234
    time_budget: float = DEFAULT_TIME_BUDGET

    def validate(self) -> None:
        if not self.tenant or not isinstance(self.tenant, str):
            raise InvalidJobSpec("tenant must be a non-empty string")
        if self.app not in APPS:
            raise InvalidJobSpec(
                f"unknown app {self.app!r}; choose from {sorted(APPS)}"
            )
        if self.nodes < 1:
            raise InvalidJobSpec("nodes must be >= 1")
        if self.iterations < 1:
            raise InvalidJobSpec("iterations must be >= 1")
        if self.size <= 0 or self.size & (self.size - 1):
            raise InvalidJobSpec(
                f"size must be a power of two, got {self.size}"
            )
        if self.size % self.nodes:
            raise InvalidJobSpec(
                f"size {self.size} must divide evenly over {self.nodes} nodes"
            )
        if self.policy not in POLICY_MODES:
            raise InvalidJobSpec(
                f"unknown policy {self.policy!r}; choose from {POLICY_MODES}"
            )
        if self.time_budget <= 0:
            raise InvalidJobSpec("time_budget must be positive")

    def build_model(self):
        """Instantiate the application model this spec describes."""
        return APPS[self.app](self.size, self.nodes, seed=self.data_seed)

    def fingerprint(self) -> str:
        """Content key: two specs with equal fingerprints run identically
        (tenant and budget are scheduling concerns, not execution ones)."""
        return (
            f"{self.app}/{self.size}/{self.nodes}/{self.iterations}/"
            f"{self.policy}/{self.data_seed}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenant": self.tenant,
            "app": self.app,
            "size": self.size,
            "nodes": self.nodes,
            "iterations": self.iterations,
            "policy": self.policy,
            "data_seed": self.data_seed,
            "time_budget": self.time_budget,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise InvalidJobSpec(f"unknown job spec fields: {sorted(unknown)}")
        spec = cls(**data)
        spec.validate()
        return spec

    def with_(self, **kw) -> "JobSpec":
        return replace(self, **kw)


@dataclass(frozen=True)
class JobResult:
    """What a completed job hands back: the §3.3 quantities plus digests."""

    makespan: float
    mean_latency: float
    period: float
    probe_events: int
    sim_events: int
    trace_digest: str
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class Job:
    """A submission's full lifecycle record inside one service."""

    id: str
    spec: JobSpec
    state: str = "queued"
    submit_time: float = 0.0
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    lease_nodes: Tuple[int, ...] = ()
    backfilled: bool = False
    error: Optional[Exception] = None
    result: Optional[JobResult] = field(default=None, repr=False)

    @property
    def wait_time(self) -> Optional[float]:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def done(self) -> bool:
        return self.state in ("completed", "failed", "rejected")


class JobQueue:
    """FIFO pending queue with per-tenant depth quotas.

    ``max_queued(tenant)`` is supplied by the owner (the service resolves
    it from the tenant quota table); ``None`` means unlimited.
    """

    def __init__(self,
                 max_queued: Optional[Callable[[str], Optional[int]]] = None):
        self._pending: List[Job] = []
        self._max_queued = max_queued
        self.enqueued = 0
        self.rejected = 0

    def depth(self, tenant: Optional[str] = None) -> int:
        if tenant is None:
            return len(self._pending)
        return sum(1 for j in self._pending if j.spec.tenant == tenant)

    def enqueue(self, job: Job) -> None:
        """Append in FIFO order; raises the typed quota error when the
        tenant's queue-depth limit is already met."""
        limit = self._max_queued(job.spec.tenant) if self._max_queued else None
        if limit is not None and self.depth(job.spec.tenant) >= limit:
            self.rejected += 1
            raise QuotaExceededError(
                job.spec.tenant, "queued", limit,
                self.depth(job.spec.tenant) + 1,
            )
        self._pending.append(job)
        self.enqueued += 1

    @property
    def pending(self) -> List[Job]:
        """The live FIFO list (oldest first).  The scheduler reads this and
        removes admitted jobs via :meth:`remove`."""
        return self._pending

    @property
    def head(self) -> Optional[Job]:
        return self._pending[0] if self._pending else None

    def remove(self, job: Job) -> None:
        self._pending.remove(job)

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)
